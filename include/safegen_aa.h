/*
 * safegen_aa.h — declarations for the affine/interval library that
 * SafeGen-generated C code links against.
 *
 * This reproduction executes programs through the Python backend; the C
 * backend (repro.compiler.codegen_c) emits display code against these
 * declarations so that the generated C matches the paper's Fig. 2 and can
 * be inspected, diffed and (given an implementation of this header)
 * compiled.  The function set below mirrors repro/compiler/runtime.py.
 */

#ifndef SAFEGEN_AA_H
#define SAFEGEN_AA_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

#ifndef SAFEGEN_MAX_SYMBOLS
#define SAFEGEN_MAX_SYMBOLS 48  /* the capacity k, fixed at generation time */
#endif

/* ------------------------------------------------------------------ */
/* types                                                               */
/* ------------------------------------------------------------------ */

/* double-double: unevaluated sum hi + lo, |lo| <= ulp(hi)/2 */
typedef struct { double hi, lo; } dd_t;

/* affine form, double central value (the paper's f64a type) */
typedef struct {
    double  central;
    int64_t ids[SAFEGEN_MAX_SYMBOLS];     /* 0 = empty slot */
    double  coeffs[SAFEGEN_MAX_SYMBOLS];
} f64a;

/* affine form, double-double central value (the paper's dda type) */
typedef struct {
    dd_t    central;
    int64_t ids[SAFEGEN_MAX_SYMBOLS];
    double  coeffs[SAFEGEN_MAX_SYMBOLS];
} dda;

/* sound intervals (IGen-style baselines) */
typedef struct { double lo, hi; } interval_f64;
typedef struct { dd_t lo, hi; } interval_dd;

/* ------------------------------------------------------------------ */
/* constants and conversions                                           */
/* ------------------------------------------------------------------ */

f64a aa_const_f64(double value);            /* inexact literal: 1-ulp symbol */
f64a aa_const_exact_f64(double value);      /* exactly representable literal */
f64a aa_const_range_f64(double lo, double hi); /* folded constant range      */
f64a aa_from_int_f64(long value);

dda aa_const_dd(double value);
dda aa_const_exact_dd(double value);
dda aa_const_range_dd(double lo, double hi);
dda aa_from_int_dd(long value);

interval_f64 aa_const_i64(double value);
interval_f64 aa_const_exact_i64(double value);
interval_f64 aa_const_range_i64(double lo, double hi);
interval_f64 aa_from_int_i64(long value);

interval_dd aa_const_idd(double value);
interval_dd aa_const_exact_idd(double value);
interval_dd aa_const_range_idd(double lo, double hi);
interval_dd aa_from_int_idd(long value);

/* ------------------------------------------------------------------ */
/* arithmetic (one fresh error symbol per operation; fusion per the     */
/* placement/fusion policy fixed at code-generation time)               */
/* ------------------------------------------------------------------ */

f64a aa_add_f64(f64a a, f64a b);
f64a aa_sub_f64(f64a a, f64a b);
f64a aa_mul_f64(f64a a, f64a b);
f64a aa_div_f64(f64a a, f64a b);
f64a aa_neg_f64(f64a a);
f64a aa_sqrt_f64(f64a a);
f64a aa_fabs_f64(f64a a);
f64a aa_exp_f64(f64a a);
f64a aa_log_f64(f64a a);
f64a aa_fmin_f64(f64a a, f64a b);
f64a aa_fmax_f64(f64a a, f64a b);

dda aa_add_dd(dda a, dda b);
dda aa_sub_dd(dda a, dda b);
dda aa_mul_dd(dda a, dda b);
dda aa_div_dd(dda a, dda b);
dda aa_neg_dd(dda a);
dda aa_sqrt_dd(dda a);
dda aa_fabs_dd(dda a);
dda aa_fmin_dd(dda a, dda b);
dda aa_fmax_dd(dda a, dda b);

interval_f64 aa_add_i64(interval_f64 a, interval_f64 b);
interval_f64 aa_sub_i64(interval_f64 a, interval_f64 b);
interval_f64 aa_mul_i64(interval_f64 a, interval_f64 b);
interval_f64 aa_div_i64(interval_f64 a, interval_f64 b);
interval_f64 aa_neg_i64(interval_f64 a);
interval_f64 aa_sqrt_i64(interval_f64 a);
interval_f64 aa_fabs_i64(interval_f64 a);
interval_f64 aa_fmin_i64(interval_f64 a, interval_f64 b);
interval_f64 aa_fmax_i64(interval_f64 a, interval_f64 b);

interval_dd aa_add_idd(interval_dd a, interval_dd b);
interval_dd aa_sub_idd(interval_dd a, interval_dd b);
interval_dd aa_mul_idd(interval_dd a, interval_dd b);
interval_dd aa_div_idd(interval_dd a, interval_dd b);
interval_dd aa_neg_idd(interval_dd a);
interval_dd aa_sqrt_idd(interval_dd a);

/* ------------------------------------------------------------------ */
/* comparisons (definite when ranges are disjoint; otherwise decided    */
/* per the configured decision policy)                                  */
/* ------------------------------------------------------------------ */

int aa_cmp_lt_f64(f64a a, f64a b);
int aa_cmp_le_f64(f64a a, f64a b);
int aa_cmp_gt_f64(f64a a, f64a b);
int aa_cmp_ge_f64(f64a a, f64a b);
int aa_cmp_eq_f64(f64a a, f64a b);
int aa_cmp_ne_f64(f64a a, f64a b);

int aa_cmp_lt_i64(interval_f64 a, interval_f64 b);
int aa_cmp_le_i64(interval_f64 a, interval_f64 b);
int aa_cmp_gt_i64(interval_f64 a, interval_f64 b);
int aa_cmp_ge_i64(interval_f64 a, interval_f64 b);
int aa_cmp_eq_i64(interval_f64 a, interval_f64 b);
int aa_cmp_ne_i64(interval_f64 a, interval_f64 b);

/* ------------------------------------------------------------------ */
/* symbol prioritization (Section VI): gather the ids currently held by  */
/* a variable and shield them from fusion in the following operation.    */
/* ------------------------------------------------------------------ */

void aa_prioritize_f64(const f64a *var);
void aa_prioritize_dd(const dda *var);
/* no-ops in the interval flavors: */
void aa_prioritize_i64(const interval_f64 *var);
void aa_prioritize_idd(const interval_dd *var);

/* ------------------------------------------------------------------ */
/* accuracy metric (paper eqs. (10)-(11))                               */
/* ------------------------------------------------------------------ */

double aa_err_bits_f64(f64a a);   /* log2(#doubles inside the range) */
double aa_acc_bits_f64(f64a a);   /* 53 - err                        */

#ifdef __cplusplus
}
#endif

#endif /* SAFEGEN_AA_H */

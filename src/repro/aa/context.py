"""The affine-arithmetic context: configuration, statistics, constructors.

An :class:`AffineContext` bundles everything an affine computation needs —
the capacity ``k``, the placement and fusion policies, the precision of the
central value, the symbol factory, the RNG used by the RANDOM policy, and
runtime statistics.  It also offers the user-facing constructors
(:meth:`input`, :meth:`constant`, :meth:`from_interval`) that pick the right
affine implementation (scalar or numpy-vectorized) for the configuration.

This is the Python face of the paper's "affine library" input parameters
(Fig. 1: target precisions, max symbols k, placement policy, fusion policy).
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field

from ..common import DecisionPolicy
from ..fp import sub_ru, ulp
from .policies import FusionPolicy, PlacementPolicy
from .symbols import SymbolFactory

__all__ = ["Precision", "AAStats", "AffineContext"]


class Precision(enum.Enum):
    """Precision of the central value (coefficients are always double)."""

    F32 = "f32a"
    F64 = "f64a"
    DD = "dda"


@dataclass
class AAStats:
    """Operation statistics collected during an affine computation."""

    n_add: int = 0
    n_mul: int = 0
    n_div: int = 0
    n_sqrt: int = 0
    n_fused_symbols: int = 0
    n_conflicts: int = 0
    n_condensations: int = 0  # capacity-overflow fusion events
    flops: int = 0  # model floating-point op count (Section V cost analysis)
    ambiguous_branches: int = 0

    def reset(self) -> None:
        for f in self.__dataclass_fields__:
            setattr(self, f, 0)

    def total_ops(self) -> int:
        return self.n_add + self.n_mul + self.n_div + self.n_sqrt


@dataclass
class AffineContext:
    """Configuration + shared state for affine computations.

    Parameters mirror Fig. 1 of the paper:

    * ``k`` — maximal number of error symbols stored per affine variable.
    * ``placement`` / ``fusion`` — the Section V policies.
    * ``precision`` — central-value precision (F64 default, DD for ``dda``).
    * ``vectorized`` — use the numpy direct-mapped kernels (the paper's
      SIMD-optimized output; requires DIRECT_MAPPED placement).
    * ``decision_policy`` — behaviour of comparisons on overlapping ranges.
    * ``seed`` — RNG seed for the RANDOM fusion policy (reproducibility).
    """

    k: int = 16
    placement: PlacementPolicy = PlacementPolicy.DIRECT_MAPPED
    fusion: FusionPolicy = FusionPolicy.SMALLEST
    precision: Precision = Precision.F64
    vectorized: bool = False
    decision_policy: DecisionPolicy = DecisionPolicy.CENTRAL
    seed: int = 0x5AFE
    track_provenance: bool = False
    # Affine implementation: 'auto' (bounded scalar, or the numpy kernels
    # when vectorized) or one of the library baselines of Fig. 9:
    # 'full' (yalaa-aff0), 'fixed' (yalaa-aff1), 'ceres' (ceres-affine).
    impl: str = "auto"

    symbols: SymbolFactory = field(default=None)  # type: ignore[assignment]
    stats: AAStats = field(default_factory=AAStats)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.vectorized and self.placement is not PlacementPolicy.DIRECT_MAPPED:
            raise ValueError(
                "vectorized kernels require the direct-mapped placement policy"
            )
        if self.symbols is None:
            self.symbols = SymbolFactory(track_provenance=self.track_provenance)
        self.rng = random.Random(self.seed)
        self._nprng = None

    @property
    def nprng(self):
        """Lazily created numpy RNG (used by the vectorized RANDOM policy)."""
        if self._nprng is None:
            import numpy as np

            self._nprng = np.random.default_rng(self.seed)
        return self._nprng

    # -- configuration string (paper notation, Section VII-A) ---------------

    @property
    def config_name(self) -> str:
        """Paper-style configuration string, e.g. ``f64a-ds?v`` where the
        prioritization letter is filled in by the compiler driver."""
        return (
            f"{self.precision.value}-{self.placement.code}{self.fusion.code}"
            f"?{'v' if self.vectorized else 'n'}"
        )

    # -- value constructors ---------------------------------------------------

    def _impl(self):
        if self.impl == "full":
            from .full import FullAffine

            return FullAffine
        if self.impl == "fixed":
            from .fixed import FixedAffine

            return FixedAffine
        if self.impl == "ceres":
            from .ceres import CeresAffine

            return CeresAffine
        if self.impl != "auto":
            raise ValueError(f"unknown affine implementation {self.impl!r}")
        if self.vectorized:
            from .vectorized import VecAffine, require_numpy

            require_numpy()
            return VecAffine
        from .form import AffineForm

        return AffineForm

    def _ulp(self, value: float) -> float:
        """Unit in the last place at the context's central precision."""
        if self.precision is Precision.F32:
            import numpy as np

            f32 = np.float32(value)
            if not np.isfinite(f32):
                return math.inf
            return float(np.spacing(np.abs(f32)))
        return ulp(value)

    def input(self, value: float, uncertainty_ulps: float = 1.0,
              name: str | None = None, provenance: str | None = None):
        """An input variable: central ``value`` with one fresh symbol of
        magnitude ``uncertainty_ulps * ulp(value)`` — ulp at the context's
        central precision (the experimental setup of Section VII).

        ``provenance`` overrides the default ``input:<name>`` origin string
        (the compiled runtime passes structured ``file:line:col`` origins).
        """
        mag = uncertainty_ulps * self._ulp(value)
        if provenance is None:
            provenance = name and f"input:{name}"
        return self._impl().from_center_and_symbol(
            self, value, mag, provenance=provenance
        )

    def exact(self, value: float):
        """A value known to be exact: no error symbol.

        With an f32 central value, a double that is not exactly
        representable in float32 gets one symbol covering the conversion
        error (handled by the form constructor).
        """
        if self.precision is Precision.F32:
            return self._impl().from_center_and_symbol(self, value, 0.0,
                                                       provenance="exact")
        return self._impl().from_exact(self, value)

    def constant(self, value: float, exact: bool | None = None,
                 provenance: str | None = None):
        """A source-program constant (Section IV-B): if possibly inexact it
        gets a fresh symbol of one ulp; integral values are taken exact."""
        if exact is None:
            exact = bool(math.isfinite(value) and value == int(value))
        if exact:
            return self.exact(value)
        return self._impl().from_center_and_symbol(
            self, value, self._ulp(value),
            provenance="constant" if provenance is None else provenance
        )

    def from_interval(self, lo: float, hi: float, name: str | None = None,
                      provenance: str | None = None):
        """An input known to lie in ``[lo, hi]``: central midpoint plus one
        fresh symbol covering the half-width (soundly rounded)."""
        if hi < lo:
            raise ValueError("interval endpoints out of order")
        mid = lo + (hi - lo) / 2.0
        if not math.isfinite(mid):
            mid = lo / 2.0 + hi / 2.0
        # The radius must cover both sides, rounded up.
        rad = max(sub_ru(mid, lo), sub_ru(hi, mid))
        if provenance is None:
            provenance = name and f"input:{name}"
        return self._impl().from_center_and_symbol(
            self, mid, rad, provenance=provenance
        )

    # -- priorities ------------------------------------------------------------

    def protect_union(self, *forms) -> frozenset[int]:
        """The set of symbol ids carried by the given forms — used to honour
        a ``prioritize(var)`` pragma for the next operation."""
        out: set[int] = set()
        for f in forms:
            out.update(f.symbol_ids())
        return frozenset(out)

"""Symbol placement and fusion policies (Section V, Table I).

Placement policies decide how the bounded symbol array is organized:

* ``SORTED`` — symbols kept sorted by id; operations merge-sort the arrays.
* ``DIRECT_MAPPED`` — symbol with id ``i`` lives in slot ``i mod k`` (like a
  direct-mapped cache); conflicts are resolved by the fusion policy.

Fusion policies decide *which* symbols are fused (eq. (6)) when an operation
would exceed the capacity ``k``:

* ``RANDOM`` (RP) — baseline, random victims.
* ``OLDEST`` (OP) — least-recently-created symbols (smallest ids) first.
* ``SMALLEST`` (SP) — smallest absolute coefficient first.
* ``MEAN`` (MP) — everything below the mean absolute coefficient; topped up
  with OP when that selects too few.  Identical to SP under direct-mapped
  placement.

All selection helpers honour a ``protected`` set (symbol ids the static
analysis prioritized): protected symbols are only fused when there is no
other way to meet the capacity.
"""

from __future__ import annotations

import enum
import random
from typing import AbstractSet, List, Sequence

__all__ = [
    "PlacementPolicy",
    "FusionPolicy",
    "select_victims",
    "resolve_conflict",
]

_EMPTY: frozenset[int] = frozenset()


class PlacementPolicy(enum.Enum):
    SORTED = "sorted"
    DIRECT_MAPPED = "direct-mapped"

    @property
    def code(self) -> str:
        """One-letter code used in configuration strings (s/d)."""
        return "s" if self is PlacementPolicy.SORTED else "d"


class FusionPolicy(enum.Enum):
    RANDOM = "random"
    OLDEST = "oldest"
    SMALLEST = "smallest"
    MEAN = "mean"

    @property
    def code(self) -> str:
        """One-letter code used in configuration strings (r/o/s/m)."""
        return {"random": "r", "oldest": "o", "smallest": "s", "mean": "m"}[self.value]


def _order_for_policy(
    indices: List[int],
    ids: Sequence[int],
    coeffs: Sequence[float],
    policy: FusionPolicy,
    rng: random.Random,
) -> List[int]:
    """Candidate fusion order: first elements are fused first."""
    if policy is FusionPolicy.RANDOM:
        shuffled = list(indices)
        rng.shuffle(shuffled)
        return shuffled
    if policy is FusionPolicy.OLDEST:
        return sorted(indices, key=lambda i: ids[i])
    # SMALLEST and MEAN both order by magnitude; MEAN's thresholding is
    # handled by the caller via `select_victims`.
    return sorted(indices, key=lambda i: abs(coeffs[i]))


def select_victims(
    ids: Sequence[int],
    coeffs: Sequence[float],
    n_fuse: int,
    policy: FusionPolicy,
    rng: random.Random,
    protected: AbstractSet[int] = _EMPTY,
    stats=None,
) -> List[int]:
    """Choose *at least* ``n_fuse`` positions (indices into ``ids``) to fuse.

    Protected symbols are selected only if the unprotected ones do not
    suffice.  For ``MEAN`` the below-mean symbols are all selected (that is
    the policy's single-pass efficiency trick), topped up by OLDEST when
    fewer than ``n_fuse`` fall below the mean.  ``stats`` (an
    :class:`~repro.aa.context.AAStats`) counts each effective selection as
    one condensation event.
    """
    n = len(ids)
    if n_fuse <= 0:
        return []
    if stats is not None:
        stats.n_condensations += 1
    if n_fuse >= n:
        return list(range(n))
    unprot = [i for i in range(n) if ids[i] not in protected]
    prot = [i for i in range(n) if ids[i] in protected]

    if policy is FusionPolicy.MEAN:
        mean = sum(abs(c) for c in coeffs) / n
        below = [i for i in unprot if abs(coeffs[i]) < mean]
        if len(below) >= n_fuse:
            return below
        victims = list(below)
        rest = [i for i in unprot if i not in set(below)]
        rest = _order_for_policy(rest, ids, coeffs, FusionPolicy.OLDEST, rng)
        victims.extend(rest[: n_fuse - len(victims)])
        if len(victims) < n_fuse:  # must dip into protected symbols
            more = _order_for_policy(prot, ids, coeffs, FusionPolicy.OLDEST, rng)
            victims.extend(more[: n_fuse - len(victims)])
        return victims

    ordered = _order_for_policy(unprot, ids, coeffs, policy, rng)
    victims = ordered[:n_fuse]
    if len(victims) < n_fuse:
        more = _order_for_policy(prot, ids, coeffs, policy, rng)
        victims.extend(more[: n_fuse - len(victims)])
    return victims


def resolve_conflict(
    id_a: int,
    coeff_a: float,
    id_b: int,
    coeff_b: float,
    policy: FusionPolicy,
    rng: random.Random,
    protected: AbstractSet[int] = _EMPTY,
) -> bool:
    """Direct-mapped slot conflict: return True if symbol *a* survives.

    The loser's coefficient magnitude is absorbed into the operation's fresh
    error symbol by the caller.  Protection trumps the policy; ties fall
    back to the policy.
    """
    pa, pb = id_a in protected, id_b in protected
    if pa != pb:
        return pa
    if policy is FusionPolicy.RANDOM:
        return rng.random() < 0.5
    if policy is FusionPolicy.OLDEST:
        # OP fuses the *oldest* symbol: the newer (larger id) survives.
        return id_a > id_b
    # SMALLEST / MEAN: the larger-magnitude coefficient survives.
    if abs(coeff_a) != abs(coeff_b):
        return abs(coeff_a) > abs(coeff_b)
    return id_a > id_b

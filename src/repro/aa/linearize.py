"""Sound linear (min-range) approximations of nonlinear unary functions.

Affine arithmetic handles a nonlinear unary function ``f`` over an affine
form ``x̂`` with range ``X = [a, b]`` by choosing a linear approximation
``f(x) ≈ α·x + ζ`` and a rigorous bound ``δ`` on the approximation error
over ``X``; the result is ``α·x̂ + ζ + δ·ε_new`` (Stolfi & de Figueiredo).

The slope ``α`` only affects *tightness*, never soundness: soundness comes
from ``δ`` being a true bound on ``max |f(x) − αx − ζ|``.  We therefore pick
the textbook min-range slope in ordinary round-to-nearest arithmetic and then
bound the deviation ``d(x) = f(x) − αx`` *soundly* with interval arithmetic:
for the smooth convex/concave functions used here ``d`` has at most one
interior critical point, so its range over ``[a, b]`` is contained in the
hull of sound evaluations at both endpoints and at an enclosure of the
critical point.

Every helper returns ``(alpha, zeta, delta)`` with the guarantee
``|f(x) − (alpha·x + zeta)| <= delta`` for all ``x`` in the interval.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Tuple

from ..errors import SoundnessError
from ..ia import Interval
from ..ia.functions import iexp, ilog
from ..fp import add_ru, div_rd, div_ru, mul_ru, sub_rd, sub_ru, sqrt_ru

__all__ = ["linearize_inv", "linearize_sqrt", "linearize_exp", "linearize_log"]


def _deviation_range(
    d_of: Callable[[Interval], Interval],
    domain: Interval,
    crit: Optional[Interval],
) -> Interval:
    """Sound enclosure of ``d`` over ``domain``.

    ``d_of`` evaluates ``d`` soundly over an interval; ``crit`` is a sound
    enclosure of the unique interior critical point (or None if there is
    none).  The extrema of a function with a single interior critical point
    lie at the endpoints or at the critical point.
    """
    parts = [
        d_of(Interval.point(domain.lo)),
        d_of(Interval.point(domain.hi)),
    ]
    if crit is not None:
        clipped = crit.intersect(domain)
        if clipped is not None:
            parts.append(d_of(clipped))
    out = parts[0]
    for p in parts[1:]:
        out = out.hull(p)
    if not out.is_valid():
        raise SoundnessError("deviation range is invalid")
    return out


def _zeta_delta(dev: Interval) -> Tuple[float, float]:
    """Split the deviation range into its midpoint (zeta) and a sound
    half-width (delta)."""
    zeta = dev.midpoint()
    delta = max(sub_ru(dev.hi, zeta), sub_ru(zeta, dev.lo))
    return zeta, delta


def linearize_inv(a: float, b: float) -> Tuple[float, float, float]:
    """Min-range linearization of ``1/x`` over ``[a, b]`` with ``0 < a`` or
    ``b < 0``."""
    if a <= 0.0 <= b:
        raise SoundnessError("linearize_inv domain must not contain zero")
    if b < 0.0:
        # 1/x is odd: reuse the positive case.
        alpha, zeta, delta = linearize_inv(-b, -a)
        return alpha, -zeta, delta
    # Min-range slope for 1/x on [a,b] is f'(b) = -1/b^2.
    alpha = -1.0 / (b * b)
    if not math.isfinite(alpha) or alpha == 0.0:
        alpha = -(div_ru(div_ru(1.0, b), b))  # avoid a zero slope at huge b
    if alpha == 0.0:
        alpha = -5e-324
    dom = Interval(a, b)

    def d_of(x: Interval) -> Interval:
        return Interval.point(1.0) / x - Interval.point(alpha) * x

    # d'(x) = -1/x^2 - alpha = 0  =>  x* = 1/sqrt(-alpha).
    crit = (Interval.point(1.0) / Interval.point(-alpha)).sqrt()
    dev = _deviation_range(d_of, dom, crit)
    zeta, delta = _zeta_delta(dev)
    return alpha, zeta, delta


def linearize_sqrt(a: float, b: float) -> Tuple[float, float, float]:
    """Min-range linearization of ``sqrt`` over ``[a, b]``, ``0 <= a``."""
    if a < 0.0:
        raise SoundnessError("linearize_sqrt domain must be nonnegative")
    if b == 0.0:
        return 0.0, 0.0, 0.0
    if a == b:
        # Degenerate point interval: constant approximation from the
        # directed-rounding bracket of sqrt(a).
        from ..fp import sqrt_rd

        zeta, delta = _zeta_delta(Interval(sqrt_rd(a), sqrt_ru(a)))
        return 0.0, zeta, delta
    # Min-range slope for sqrt on [a,b] is f'(b) = 1/(2*sqrt(b)).
    alpha = 1.0 / (2.0 * math.sqrt(b))
    if not math.isfinite(alpha) or alpha == 0.0:
        alpha = div_rd(1.0, mul_ru(2.0, sqrt_ru(b)))
    if alpha == 0.0:
        alpha = 5e-324
    dom = Interval(a, b)

    def d_of(x: Interval) -> Interval:
        return x.sqrt() - Interval.point(alpha) * x

    # d'(x) = 1/(2 sqrt x) - alpha = 0  =>  x* = 1/(4 alpha^2).
    denom = Interval.point(4.0) * Interval.point(alpha).square()
    crit = Interval.point(1.0) / denom
    dev = _deviation_range(d_of, dom, crit)
    zeta, delta = _zeta_delta(dev)
    return alpha, zeta, delta


def linearize_exp(a: float, b: float) -> Tuple[float, float, float]:
    """Min-range linearization of ``exp`` over ``[a, b]``."""
    if b > 709.0:
        raise SoundnessError("exp overflows on this range; result unbounded")
    # Min-range slope for exp on [a,b] is f'(a) = exp(a).
    alpha = math.exp(a)
    dom = Interval(a, b)

    def d_of(x: Interval) -> Interval:
        return iexp(x) - Interval.point(alpha) * x

    # d'(x) = exp(x) - alpha = 0  =>  x* = log(alpha).
    crit = ilog(Interval.point(alpha)) if alpha > 0.0 else None
    dev = _deviation_range(d_of, dom, crit)
    zeta, delta = _zeta_delta(dev)
    return alpha, zeta, delta


def linearize_log(a: float, b: float) -> Tuple[float, float, float]:
    """Min-range linearization of ``log`` over ``[a, b]``, ``a > 0``."""
    if a <= 0.0:
        raise SoundnessError("linearize_log domain must be positive")
    # Min-range slope for log on [a,b] is f'(b) = 1/b.
    alpha = 1.0 / b
    if alpha == 0.0:
        alpha = 5e-324
    dom = Interval(a, b)

    def d_of(x: Interval) -> Interval:
        return ilog(x) - Interval.point(alpha) * x

    # d'(x) = 1/x - alpha = 0  =>  x* = 1/alpha.
    crit = Interval.point(1.0) / Interval.point(alpha)
    dev = _deviation_range(d_of, dom, crit)
    zeta, delta = _zeta_delta(dev)
    return alpha, zeta, delta

"""The paper's accuracy metric (Section VII, eqs. (10)-(11)).

``err(â)`` is the base-2 logarithm of the number of doubles inside the range
of ``â``; ``acc(â) = p − err(â)`` is the number of certified mantissa bits
(p = 53 for double precision).  A point range has err = 0 and acc = 53; a
range spanning the whole double line certifies nothing (acc is very
negative and is usually clamped to 0 for reporting).
"""

from __future__ import annotations

import math
from typing import Protocol

from ..fp import floats_between
from ..ia import Interval

__all__ = ["err_bits", "acc_bits", "acc_bits_clamped", "DOUBLE_MANTISSA_BITS"]

DOUBLE_MANTISSA_BITS = 53


class _HasInterval(Protocol):
    def interval(self) -> Interval: ...


def err_bits(value) -> float:
    """``err(â)`` of eq. (10): log2 of the number of doubles enclosed.

    Accepts an :class:`Interval` or anything with an ``interval()`` method
    (affine forms, dd intervals via conversion).  An invalid range has
    infinite error.
    """
    iv = value if isinstance(value, Interval) else value.interval()
    if not iv.is_valid():
        return math.inf
    if not iv.is_finite():
        # An unbounded range certifies nothing: the real result may be any
        # real beyond the largest finite double.
        return math.inf
    n = floats_between(iv.lo, iv.hi)
    if n <= 0:
        raise ValueError("range encloses no floats; not a valid enclosure")
    return math.log2(n)


def acc_bits(value, mantissa_bits: int = DOUBLE_MANTISSA_BITS) -> float:
    """``acc(â)`` of eq. (11): certified bits, may be negative."""
    return mantissa_bits - err_bits(value)


def acc_bits_clamped(value, mantissa_bits: int = DOUBLE_MANTISSA_BITS) -> float:
    """Certified bits clamped at 0 (the paper's plots bottom out at 0)."""
    return max(0.0, acc_bits(value, mantissa_bits))

"""Error-symbol identity management.

Every affine operation creates one fresh error symbol (Section II-B).  The
paper's OP fusion policy relies on symbol *age*, which we encode in the ids:
ids are allocated from a monotone counter, so a smaller id is always an
older symbol.

A :class:`SymbolFactory` also records provenance (which input variable,
constant, or operation created each symbol) — used by the static-analysis
tests and invaluable when debugging accuracy regressions.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["SymbolFactory"]


class SymbolFactory:
    """Allocates error-symbol identifiers.

    Ids start at 1; id 0 is reserved (never allocated) so implementations can
    use 0/-1 as sentinels.
    """

    __slots__ = ("_next", "_provenance", "track_provenance")

    def __init__(self, track_provenance: bool = False) -> None:
        self._next = 1
        self._provenance: Dict[int, str] = {}
        self.track_provenance = track_provenance

    def fresh(self, provenance: Optional[str] = None) -> int:
        """Allocate a new symbol id (monotonically increasing)."""
        sid = self._next
        self._next += 1
        if self.track_provenance and provenance is not None:
            self._provenance[sid] = provenance
        return sid

    def fresh_at(self, slot: int, k: int,
                 provenance: Optional[str] = None) -> int:
        """Allocate a fresh id congruent to ``slot`` modulo ``k``.

        Ids are arbitrary labels, so the direct-mapped placement policy is
        free to pick the fresh symbol's id such that it lands on the slot
        the fusion policy wants to evict; skipped ids are simply never
        used.  Monotonicity (used by the OLDEST policy) is preserved.
        """
        if not 0 <= slot < k:
            raise ValueError(f"slot {slot} out of range for k={k}")
        sid = self._next + ((slot - self._next) % k)
        self._next = sid + 1
        if self.track_provenance and provenance is not None:
            self._provenance[sid] = provenance
        return sid

    def provenance_of(self, sid: int) -> Optional[str]:
        return self._provenance.get(sid)

    @property
    def count(self) -> int:
        """Number of symbols allocated so far."""
        return self._next - 1

    @property
    def peek_next(self) -> int:
        """The id the next plain :meth:`fresh` call would return."""
        return self._next

    def reset(self) -> None:
        self._next = 1
        self._provenance.clear()

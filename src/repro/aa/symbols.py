"""Error-symbol identity management.

Every affine operation creates one fresh error symbol (Section II-B).  The
paper's OP fusion policy relies on symbol *age*, which we encode in the ids:
ids are allocated from a monotone counter, so a smaller id is always an
older symbol.

A :class:`SymbolFactory` also records provenance (which input variable,
constant, or operation created each symbol) — used by the static-analysis
tests and invaluable when debugging accuracy regressions.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..fp import add_ru

__all__ = ["SymbolFactory"]


class SymbolFactory:
    """Allocates error-symbol identifiers.

    Ids start at 1; id 0 is reserved (never allocated) so implementations can
    use 0/-1 as sentinels.

    When ``track_provenance`` is on the factory also keeps condensation-loss
    books: every time a symbol is fused away (direct-mapped eviction, sorted
    capacity overflow, or a slot conflict) the kernels call
    :meth:`record_absorption` with the victim's id and the radius magnitude
    that moved into the absorbing round-off symbol.  The totals — keyed by
    the *victim's origin* and by the *absorbing site* — are what the width
    diagnostics report as "radius lost to condensation, per source line".
    """

    __slots__ = ("_next", "_provenance", "track_provenance",
                 "absorbed", "absorbed_at", "n_absorptions")

    def __init__(self, track_provenance: bool = False) -> None:
        self._next = 1
        self._provenance: Dict[int, str] = {}
        self.track_provenance = track_provenance
        # victim origin -> total |coeff| absorbed (upward-rounded sum)
        self.absorbed: Dict[str, float] = {}
        # absorbing site origin -> total |coeff| it swallowed
        self.absorbed_at: Dict[str, float] = {}
        self.n_absorptions = 0

    def fresh(self, provenance: Optional[str] = None) -> int:
        """Allocate a new symbol id (monotonically increasing)."""
        sid = self._next
        self._next += 1
        if self.track_provenance and provenance is not None:
            self._provenance[sid] = provenance
        return sid

    def fresh_at(self, slot: int, k: int,
                 provenance: Optional[str] = None) -> int:
        """Allocate a fresh id congruent to ``slot`` modulo ``k``.

        Ids are arbitrary labels, so the direct-mapped placement policy is
        free to pick the fresh symbol's id such that it lands on the slot
        the fusion policy wants to evict; skipped ids are simply never
        used.  Monotonicity (used by the OLDEST policy) is preserved.
        """
        if not 0 <= slot < k:
            raise ValueError(f"slot {slot} out of range for k={k}")
        sid = self._next + ((slot - self._next) % k)
        self._next = sid + 1
        if self.track_provenance and provenance is not None:
            self._provenance[sid] = provenance
        return sid

    def provenance_of(self, sid: int) -> Optional[str]:
        return self._provenance.get(sid)

    def record_absorption(self, victim_sid: int, amount: float,
                          site: Optional[str] = None) -> None:
        """Account one condensation event: the symbol ``victim_sid`` was
        fused away and ``amount`` (its |coefficient|) moved into the
        round-off accumulator of the operation at ``site``.

        No-op unless provenance tracking is on.  Totals use upward-rounded
        addition so the books themselves are sound over-estimates.
        """
        if not self.track_provenance or amount == 0.0:
            return
        self.n_absorptions += 1
        origin = self._provenance.get(victim_sid, "<unknown>")
        self.absorbed[origin] = add_ru(self.absorbed.get(origin, 0.0),
                                       abs(amount))
        if site is not None:
            self.absorbed_at[site] = add_ru(self.absorbed_at.get(site, 0.0),
                                            abs(amount))

    @property
    def count(self) -> int:
        """Number of symbols allocated so far."""
        return self._next - 1

    @property
    def peek_next(self) -> int:
        """The id the next plain :meth:`fresh` call would return."""
        return self._next

    def reset(self) -> None:
        self._next = 1
        self._provenance.clear()
        self.absorbed.clear()
        self.absorbed_at.clear()
        self.n_absorptions = 0

"""Fixed-symbol affine arithmetic — the ``yalaa-aff1`` baseline of Fig. 9.

Yalaa's ``aff1`` data type fixes the symbol set to the *input* symbols and
never creates new ones; all new deviations (round-off, nonlinear terms) are
accumulated in a dedicated per-variable slack term.  The slack terms of two
operands are independent, so they combine by adding magnitudes — they can
never cancel.  This is Messine's AF1 model.

Cheap (operations are O(#inputs)) but, as the paper shows, inferior: it
certifies far fewer bits than bounded AA with fresh symbols because round-off
mass can never participate in cancellation.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..common import decide_comparison
from ..errors import SoundnessError
from ..fp import add_ru, mul_ru, sub_rd
from ..ia import Interval
from .context import AffineContext
from .form import _prod_err, _sum_err
from .linearize import linearize_inv, linearize_sqrt

__all__ = ["FixedAffine"]


class FixedAffine:
    """AF1-style affine form: fixed input symbols + one slack accumulator."""

    __slots__ = ("ctx", "central", "terms", "slack")

    def __init__(self, ctx: AffineContext, central: float,
                 terms: Dict[int, float], slack: float) -> None:
        self.ctx = ctx
        self.central = central
        self.terms = terms
        self.slack = slack

    @classmethod
    def from_exact(cls, ctx: AffineContext, value: float) -> "FixedAffine":
        return cls(ctx, float(value), {}, 0.0)

    @classmethod
    def from_center_and_symbol(
        cls, ctx: AffineContext, value: float, magnitude: float,
        provenance: Optional[str] = None,
    ) -> "FixedAffine":
        terms: Dict[int, float] = {}
        if magnitude != 0.0:
            terms[ctx.symbols.fresh(provenance)] = abs(magnitude)
        return cls(ctx, float(value), terms, 0.0)

    # -- views ---------------------------------------------------------------

    def symbol_ids(self):
        return list(self.terms)

    def n_symbols(self) -> int:
        return len(self.terms) + (1 if self.slack != 0.0 else 0)

    def central_float(self) -> float:
        return self.central

    def is_valid(self) -> bool:
        if math.isnan(self.central) or math.isnan(self.slack):
            return False
        return not any(math.isnan(c) for c in self.terms.values())

    def radius_ru(self) -> float:
        acc = self.slack
        for c in self.terms.values():
            acc = add_ru(acc, abs(c))
        return acc

    def interval(self) -> Interval:
        if not self.is_valid():
            return Interval.invalid()
        r = self.radius_ru()
        lo, hi = sub_rd(self.central, r), add_ru(self.central, r)
        if math.isnan(lo) or math.isnan(hi):
            return Interval.invalid()
        return Interval(lo, hi)

    def contains(self, x) -> bool:
        return self.interval().contains(x)

    def __repr__(self) -> str:
        return (f"FixedAffine({self.central:.17g}; {len(self.terms)} symbols, "
                f"slack={self.slack:.3g})")

    # -- arithmetic ------------------------------------------------------------

    def add(self, other, protect=frozenset(),
            provenance: Optional[str] = None) -> "FixedAffine":
        # AF1 never creates fresh symbols per op, so provenance is accepted
        # for interface compatibility and has nothing to attach to.
        other = self._coerce(other)
        x = add_ru(self.slack, other.slack)  # independent buckets: add magnitudes
        central, e = _sum_err(self.central, other.central)
        x = add_ru(x, e)
        terms = dict(self.terms)
        for sid, cb in other.terms.items():
            ca = terms.get(sid)
            if ca is None:
                terms[sid] = cb
            else:
                s, e = _sum_err(ca, cb)
                x = add_ru(x, e)
                if s != 0.0:
                    terms[sid] = s
                else:
                    del terms[sid]
        self.ctx.stats.n_add += 1
        return FixedAffine(self.ctx, central, terms, x)

    def sub(self, other, protect=frozenset(),
            provenance: Optional[str] = None) -> "FixedAffine":
        return self.add(self._coerce(other).neg())

    def mul(self, other, protect=frozenset(),
            provenance: Optional[str] = None) -> "FixedAffine":
        other = self._coerce(other)
        a0, b0 = self.central, other.central
        central, e = _prod_err(a0, b0)
        x = add_ru(0.0, e)
        ra, rb = self.radius_ru(), other.radius_ru()
        if ra != 0.0 and rb != 0.0:
            x = add_ru(x, mul_ru(ra, rb))
        # Slack scales with the central values.
        x = add_ru(x, mul_ru(abs(a0), other.slack))
        x = add_ru(x, mul_ru(abs(b0), self.slack))
        terms: Dict[int, float] = {}
        for sid, ca in self.terms.items():
            cb = other.terms.get(sid)
            if cb is None:
                p, e = _prod_err(b0, ca)
                x = add_ru(x, e)
                if p != 0.0:
                    terms[sid] = p
            else:
                p1, e1 = _prod_err(a0, cb)
                p2, e2 = _prod_err(b0, ca)
                s, e3 = _sum_err(p1, p2)
                x = add_ru(x, add_ru(e1, add_ru(e2, e3)))
                if s != 0.0:
                    terms[sid] = s
        for sid, cb in other.terms.items():
            if sid not in self.terms:
                p, e = _prod_err(a0, cb)
                x = add_ru(x, e)
                if p != 0.0:
                    terms[sid] = p
        self.ctx.stats.n_mul += 1
        return FixedAffine(self.ctx, central, terms, x)

    def _unary_linear(self, alpha: float, zeta: float, delta: float) -> "FixedAffine":
        x = abs(delta)
        x = add_ru(x, mul_ru(abs(alpha), self.slack))
        scaled, e = _prod_err(alpha, self.central)
        x = add_ru(x, e)
        central, e2 = _sum_err(scaled, zeta)
        x = add_ru(x, e2)
        terms: Dict[int, float] = {}
        for sid, c in self.terms.items():
            p, e = _prod_err(alpha, c)
            x = add_ru(x, e)
            if p != 0.0:
                terms[sid] = p
        return FixedAffine(self.ctx, central, terms, x)

    def div(self, other, protect=frozenset(),
            provenance: Optional[str] = None) -> "FixedAffine":
        other = self._coerce(other)
        self.ctx.stats.n_div += 1
        iv = other.interval()
        if not iv.is_valid() or (iv.lo <= 0.0 <= iv.hi):
            return FixedAffine(self.ctx, math.nan, {}, 0.0)
        alpha, zeta, delta = linearize_inv(iv.lo, iv.hi)
        inv = other._unary_linear(alpha, zeta, delta)
        return self.mul(inv)

    def sqrt(self, protect=frozenset(),
             provenance: Optional[str] = None) -> "FixedAffine":
        self.ctx.stats.n_sqrt += 1
        iv = self.interval()
        if not iv.is_valid() or iv.hi < 0.0:
            return FixedAffine(self.ctx, math.nan, {}, 0.0)
        alpha, zeta, delta = linearize_sqrt(max(iv.lo, 0.0), iv.hi)
        return self._unary_linear(alpha, zeta, delta)

    def neg(self) -> "FixedAffine":
        return FixedAffine(self.ctx, -self.central,
                           {sid: -c for sid, c in self.terms.items()}, self.slack)

    def _from_range(self, iv: Interval) -> "FixedAffine":
        mid = iv.midpoint()
        rad = add_ru(iv.radius_ru(), math.ulp(mid))
        return FixedAffine(self.ctx, mid, {}, rad)

    def abs_(self, protect=frozenset()) -> "FixedAffine":
        iv = self.interval()
        if not iv.is_valid():
            return FixedAffine(self.ctx, math.nan, {}, 0.0)
        if iv.lo >= 0.0:
            return self
        if iv.hi <= 0.0:
            return self.neg()
        return self._from_range(abs(iv))

    def min_with(self, other) -> "FixedAffine":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if a.hi <= b.lo:
            return self
        if b.hi <= a.lo:
            return other
        return self._from_range(a.min_with(b))

    def max_with(self, other) -> "FixedAffine":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if a.lo >= b.hi:
            return self
        if b.lo >= a.hi:
            return other
        return self._from_range(a.max_with(b))

    # -- comparisons -----------------------------------------------------------

    def compare_lt(self, other) -> bool:
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        definite: Optional[bool]
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi < b.lo:
            definite = True
        elif a.lo >= b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, self.central < other.central,
                                 self.ctx.decision_policy, "<", self.ctx.stats)

    def compare_le(self, other) -> bool:
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        definite: Optional[bool]
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi <= b.lo:
            definite = True
        elif a.lo > b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, self.central <= other.central,
                                 self.ctx.decision_policy, "<=", self.ctx.stats)

    # -- sugar -------------------------------------------------------------------

    def _coerce(self, x) -> "FixedAffine":
        if isinstance(x, FixedAffine):
            if x.ctx is not self.ctx:
                raise SoundnessError("mixing FixedAffine from different contexts")
            return x
        if isinstance(x, (int, float)):
            return FixedAffine.from_exact(self.ctx, float(x))
        raise TypeError(f"cannot coerce {type(x).__name__} to FixedAffine")

    def __add__(self, other):
        return self.add(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self.sub(other)

    def __rsub__(self, other):
        return self._coerce(other).sub(self)

    def __mul__(self, other):
        return self.mul(other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self.div(other)

    def __rtruediv__(self, other):
        return self._coerce(other).div(self)

    def __neg__(self):
        return self.neg()

    def __lt__(self, other):
        return self.compare_lt(other)

"""A Ceres-style affine baseline (Darulova & Kuncak, "Trustworthy Numerical
Computation in Scala") — the ``ceres-affine`` line in Fig. 9.

Ceres' ``AffineFloat`` keeps an unbounded queue of noise terms but *compacts*
whenever the term count exceeds a threshold: the smallest terms are merged
into one fresh term until the count is back at the threshold.  Compared to
the paper's bounded forms this strategy pays a full sort per compaction and
touches every term on every operation — which is exactly why SafeGen's
direct-mapped placement beats it by 30-70x at equal ``k``.

We reproduce the algorithmic structure faithfully: dict-of-terms storage,
post-operation compaction by magnitude, fresh round-off symbol per op.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..errors import SoundnessError
from ..fp import add_ru, mul_ru, sub_rd
from ..ia import Interval
from .context import AffineContext
from .form import _prod_err, _sum_err
from .linearize import linearize_inv, linearize_sqrt

__all__ = ["CeresAffine"]


class CeresAffine:
    """Affine form with Ceres-style magnitude compaction at threshold k."""

    __slots__ = ("ctx", "central", "terms")

    def __init__(self, ctx: AffineContext, central: float,
                 terms: Dict[int, float]) -> None:
        self.ctx = ctx
        self.central = central
        self.terms = terms

    @classmethod
    def from_exact(cls, ctx: AffineContext, value: float) -> "CeresAffine":
        return cls(ctx, float(value), {})

    @classmethod
    def from_center_and_symbol(
        cls, ctx: AffineContext, value: float, magnitude: float,
        provenance: Optional[str] = None,
    ) -> "CeresAffine":
        terms: Dict[int, float] = {}
        if magnitude != 0.0:
            terms[ctx.symbols.fresh(provenance)] = abs(magnitude)
        return cls(ctx, float(value), terms)

    # -- views ---------------------------------------------------------------

    def symbol_ids(self):
        return list(self.terms)

    def n_symbols(self) -> int:
        return len(self.terms)

    def central_float(self) -> float:
        return self.central

    def is_valid(self) -> bool:
        if math.isnan(self.central):
            return False
        return not any(math.isnan(c) for c in self.terms.values())

    def radius_ru(self) -> float:
        acc = 0.0
        # Ceres sums in magnitude order (one more source of per-op cost).
        for c in sorted(self.terms.values(), key=abs):
            acc = add_ru(acc, abs(c))
        return acc

    def interval(self) -> Interval:
        if not self.is_valid():
            return Interval.invalid()
        r = self.radius_ru()
        lo, hi = sub_rd(self.central, r), add_ru(self.central, r)
        if math.isnan(lo) or math.isnan(hi):
            return Interval.invalid()
        return Interval(lo, hi)

    def contains(self, x) -> bool:
        return self.interval().contains(x)

    # -- compaction -------------------------------------------------------------

    def _compact(self) -> None:
        """Merge the smallest terms into one fresh term when over threshold."""
        k = self.ctx.k
        if len(self.terms) <= k:
            return
        by_magnitude = sorted(self.terms.items(), key=lambda kv: abs(kv[1]))
        n_merge = len(self.terms) - k + 1
        mass = 0.0
        for sid, c in by_magnitude[:n_merge]:
            mass = add_ru(mass, abs(c))
            del self.terms[sid]
        self.ctx.stats.n_fused_symbols += n_merge
        self.ctx.stats.n_condensations += 1
        if mass != 0.0:
            self.terms[self.ctx.symbols.fresh("ceres:compact")] = mass

    def _fresh(self, x: float, provenance: Optional[str] = None) -> None:
        if x != 0.0:
            self.terms[self.ctx.symbols.fresh(provenance or "ceres:round")] = x
        self._compact()

    # -- arithmetic ------------------------------------------------------------

    def add(self, other, protect=frozenset(),
            provenance: Optional[str] = None) -> "CeresAffine":
        other = self._coerce(other)
        x = 0.0
        central, e = _sum_err(self.central, other.central)
        x = add_ru(x, e)
        terms = dict(self.terms)
        for sid, cb in other.terms.items():
            ca = terms.get(sid)
            if ca is None:
                terms[sid] = cb
            else:
                s, e = _sum_err(ca, cb)
                x = add_ru(x, e)
                if s != 0.0:
                    terms[sid] = s
                else:
                    del terms[sid]
        out = CeresAffine(self.ctx, central, terms)
        out._fresh(x, provenance)
        self.ctx.stats.n_add += 1
        return out

    def sub(self, other, protect=frozenset(),
            provenance: Optional[str] = None) -> "CeresAffine":
        return self.add(self._coerce(other).neg(), protect, provenance)

    def mul(self, other, protect=frozenset(),
            provenance: Optional[str] = None) -> "CeresAffine":
        other = self._coerce(other)
        x = 0.0
        a0, b0 = self.central, other.central
        central, e = _prod_err(a0, b0)
        x = add_ru(x, e)
        ra, rb = self.radius_ru(), other.radius_ru()
        if ra != 0.0 and rb != 0.0:
            x = add_ru(x, mul_ru(ra, rb))
        terms: Dict[int, float] = {}
        for sid, ca in self.terms.items():
            cb = other.terms.get(sid)
            if cb is None:
                p, e = _prod_err(b0, ca)
                x = add_ru(x, e)
                if p != 0.0:
                    terms[sid] = p
            else:
                p1, e1 = _prod_err(a0, cb)
                p2, e2 = _prod_err(b0, ca)
                s, e3 = _sum_err(p1, p2)
                x = add_ru(x, add_ru(e1, add_ru(e2, e3)))
                if s != 0.0:
                    terms[sid] = s
        for sid, cb in other.terms.items():
            if sid not in self.terms:
                p, e = _prod_err(a0, cb)
                x = add_ru(x, e)
                if p != 0.0:
                    terms[sid] = p
        out = CeresAffine(self.ctx, central, terms)
        out._fresh(x, provenance)
        self.ctx.stats.n_mul += 1
        return out

    def _unary_linear(self, alpha: float, zeta: float, delta: float,
                      provenance: Optional[str] = None) -> "CeresAffine":
        x = abs(delta)
        scaled, e = _prod_err(alpha, self.central)
        x = add_ru(x, e)
        central, e2 = _sum_err(scaled, zeta)
        x = add_ru(x, e2)
        terms: Dict[int, float] = {}
        for sid, c in self.terms.items():
            p, e = _prod_err(alpha, c)
            x = add_ru(x, e)
            if p != 0.0:
                terms[sid] = p
        out = CeresAffine(self.ctx, central, terms)
        out._fresh(x, provenance)
        return out

    def div(self, other, protect=frozenset(),
            provenance: Optional[str] = None) -> "CeresAffine":
        other = self._coerce(other)
        self.ctx.stats.n_div += 1
        iv = other.interval()
        if not iv.is_valid() or (iv.lo <= 0.0 <= iv.hi):
            return CeresAffine(self.ctx, math.nan, {})
        alpha, zeta, delta = linearize_inv(iv.lo, iv.hi)
        return self.mul(other._unary_linear(
            alpha, zeta, delta, provenance and provenance + ":inv"),
            protect, provenance)

    def sqrt(self, protect=frozenset(),
             provenance: Optional[str] = None) -> "CeresAffine":
        self.ctx.stats.n_sqrt += 1
        iv = self.interval()
        if not iv.is_valid() or iv.hi < 0.0:
            return CeresAffine(self.ctx, math.nan, {})
        alpha, zeta, delta = linearize_sqrt(max(iv.lo, 0.0), iv.hi)
        return self._unary_linear(alpha, zeta, delta, provenance)

    def neg(self) -> "CeresAffine":
        return CeresAffine(self.ctx, -self.central,
                           {sid: -c for sid, c in self.terms.items()})

    def _from_range(self, iv: Interval) -> "CeresAffine":
        mid = iv.midpoint()
        rad = add_ru(iv.radius_ru(), math.ulp(mid))
        return CeresAffine.from_center_and_symbol(self.ctx, mid, rad)

    def abs_(self, protect=frozenset()) -> "CeresAffine":
        iv = self.interval()
        if not iv.is_valid():
            return CeresAffine(self.ctx, math.nan, {})
        if iv.lo >= 0.0:
            return self
        if iv.hi <= 0.0:
            return self.neg()
        return self._from_range(abs(iv))

    def min_with(self, other) -> "CeresAffine":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if a.hi <= b.lo:
            return self
        if b.hi <= a.lo:
            return other
        return self._from_range(a.min_with(b))

    def max_with(self, other) -> "CeresAffine":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if a.lo >= b.hi:
            return self
        if b.lo >= a.hi:
            return other
        return self._from_range(a.max_with(b))

    def compare_lt(self, other) -> bool:
        from ..common import decide_comparison

        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi < b.lo:
            definite = True
        elif a.lo >= b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, self.central < other.central,
                                 self.ctx.decision_policy, "<", self.ctx.stats)

    def compare_le(self, other) -> bool:
        from ..common import decide_comparison

        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi <= b.lo:
            definite = True
        elif a.lo > b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, self.central <= other.central,
                                 self.ctx.decision_policy, "<=", self.ctx.stats)

    # -- sugar -------------------------------------------------------------------

    def _coerce(self, x) -> "CeresAffine":
        if isinstance(x, CeresAffine):
            if x.ctx is not self.ctx:
                raise SoundnessError("mixing CeresAffine from different contexts")
            return x
        if isinstance(x, (int, float)):
            return CeresAffine.from_exact(self.ctx, float(x))
        raise TypeError(f"cannot coerce {type(x).__name__} to CeresAffine")

    def __add__(self, other):
        return self.add(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self.sub(other)

    def __rsub__(self, other):
        return self._coerce(other).sub(self)

    def __mul__(self, other):
        return self.mul(other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self.div(other)

    def __rtruediv__(self, other):
        return self._coerce(other).div(self)

    def __neg__(self):
        return self.neg()

"""Introspection helpers: where does a certificate's width come from?

``explain(form)`` decomposes an affine value's radius by error symbol and —
when the context tracks provenance — by origin (which input, constant or
operation created each symbol).  Indispensable when an accuracy regression
needs to be attributed to a fusion decision or to a genuinely ill-
conditioned operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..fp import add_ru

__all__ = ["SymbolShare", "Explanation", "explain", "merged"]


@dataclass(frozen=True)
class SymbolShare:
    """One error symbol's contribution to a form's radius."""

    symbol_id: int
    coefficient: float
    share: float  # |coefficient| / radius, in [0, 1]
    provenance: Optional[str]

    def __str__(self) -> str:
        origin = f" from {self.provenance}" if self.provenance else ""
        return (f"ε{self.symbol_id}: |{self.coefficient:.3g}| "
                f"({self.share:.1%}){origin}")


@dataclass(frozen=True)
class Explanation:
    """Radius decomposition of an affine value."""

    central: float
    radius: float
    n_symbols: int
    shares: List[SymbolShare]

    def top(self, n: int = 5) -> List[SymbolShare]:
        return self.shares[:n]

    def format(self, n: int = 5) -> str:
        """Human-readable report showing the ``n`` largest shares; the
        remainder is folded into a single "... m more" line."""
        lines = [
            f"central {self.central!r}, radius {self.radius:.6g}, "
            f"{self.n_symbols} symbols",
        ]
        for s in self.top(n):
            lines.append("  " + str(s))
        if len(self.shares) > n:
            rest = sum(s.share for s in self.shares[n:])
            lines.append(f"  ... {len(self.shares) - n} more ({rest:.1%})")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


def explain(form) -> Explanation:
    """Decompose an affine value's radius by symbol, largest first.

    Works with any of the affine implementations (bounded, vectorized,
    full, fixed, Ceres).  Provenance strings appear when the form's context
    was created with ``track_provenance=True``.
    """
    if hasattr(form, "coefficients"):
        coeffs = dict(form.coefficients())
    elif hasattr(form, "terms"):
        coeffs = dict(form.terms)
    else:
        raise TypeError(f"cannot explain {type(form).__name__}")
    slack = getattr(form, "slack", 0.0)
    radius = 0.0
    for c in coeffs.values():
        radius = add_ru(radius, abs(c))
    radius = add_ru(radius, abs(slack))

    factory = getattr(form.ctx, "symbols", None)
    shares = []
    for sid, c in coeffs.items():
        share = abs(c) / radius if radius > 0 else 0.0
        prov = factory.provenance_of(sid) if factory is not None else None
        shares.append(SymbolShare(symbol_id=sid, coefficient=c,
                                  share=share, provenance=prov))
    if slack:
        shares.append(SymbolShare(symbol_id=-1, coefficient=slack,
                                  share=abs(slack) / radius if radius else 0.0,
                                  provenance="slack accumulator"))
    shares.sort(key=lambda s: -abs(s.coefficient))
    return Explanation(
        central=form.central_float(),
        radius=radius,
        n_symbols=len(shares),
        shares=shares,
    )


def merged(explanations: Iterable[Explanation]) -> Explanation:
    """Merge per-row explanations (e.g. the rows of a batch result) into
    one radius decomposition, summing contributions across rows.

    Shares are grouped by provenance when available (so the same source
    operation's symbols from different rows — whose ids diverge — land in
    one bucket) and by symbol id otherwise.  The merged ``share`` of each
    group is its summed |coefficient| over the summed radius, so shares
    still sum to ~1 and the grouping is order-insensitive.
    """
    explanations = list(explanations)
    if not explanations:
        return Explanation(central=0.0, radius=0.0, n_symbols=0, shares=[])

    total_radius = 0.0
    central_sum = 0.0
    groups: dict = {}  # key -> [representative_sid, summed |coeff|, prov]
    for ex in explanations:
        total_radius = add_ru(total_radius, ex.radius)
        central_sum += ex.central
        for s in ex.shares:
            key = s.provenance if s.provenance is not None else (
                "ε", s.symbol_id)
            g = groups.get(key)
            if g is None:
                groups[key] = [s.symbol_id, abs(s.coefficient), s.provenance]
            else:
                g[1] = add_ru(g[1], abs(s.coefficient))

    shares = [
        SymbolShare(
            symbol_id=sid, coefficient=coeff,
            share=coeff / total_radius if total_radius > 0 else 0.0,
            provenance=prov)
        for sid, coeff, prov in groups.values()
    ]
    shares.sort(key=lambda s: -abs(s.coefficient))
    return Explanation(
        central=central_sum / len(explanations),
        radius=total_radius,
        n_symbols=len(shares),
        shares=shares,
    )

"""Introspection helpers: where does a certificate's width come from?

``explain(form)`` decomposes an affine value's radius by error symbol and —
when the context tracks provenance — by origin (which input, constant or
operation created each symbol).  Indispensable when an accuracy regression
needs to be attributed to a fusion decision or to a genuinely ill-
conditioned operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..fp import add_ru

__all__ = ["SymbolShare", "Explanation", "explain"]


@dataclass(frozen=True)
class SymbolShare:
    """One error symbol's contribution to a form's radius."""

    symbol_id: int
    coefficient: float
    share: float  # |coefficient| / radius, in [0, 1]
    provenance: Optional[str]

    def __str__(self) -> str:
        origin = f" from {self.provenance}" if self.provenance else ""
        return (f"ε{self.symbol_id}: |{self.coefficient:.3g}| "
                f"({self.share:.1%}){origin}")


@dataclass(frozen=True)
class Explanation:
    """Radius decomposition of an affine value."""

    central: float
    radius: float
    n_symbols: int
    shares: List[SymbolShare]

    def top(self, n: int = 5) -> List[SymbolShare]:
        return self.shares[:n]

    def __str__(self) -> str:
        lines = [
            f"central {self.central!r}, radius {self.radius:.6g}, "
            f"{self.n_symbols} symbols",
        ]
        for s in self.top():
            lines.append("  " + str(s))
        if self.n_symbols > 5:
            rest = sum(s.share for s in self.shares[5:])
            lines.append(f"  ... {self.n_symbols - 5} more ({rest:.1%})")
        return "\n".join(lines)


def explain(form) -> Explanation:
    """Decompose an affine value's radius by symbol, largest first.

    Works with any of the affine implementations (bounded, vectorized,
    full, fixed, Ceres).  Provenance strings appear when the form's context
    was created with ``track_provenance=True``.
    """
    if hasattr(form, "coefficients"):
        coeffs = dict(form.coefficients())
    elif hasattr(form, "terms"):
        coeffs = dict(form.terms)
    else:
        raise TypeError(f"cannot explain {type(form).__name__}")
    slack = getattr(form, "slack", 0.0)
    radius = 0.0
    for c in coeffs.values():
        radius = add_ru(radius, abs(c))
    radius = add_ru(radius, abs(slack))

    factory = getattr(form.ctx, "symbols", None)
    shares = []
    for sid, c in coeffs.items():
        share = abs(c) / radius if radius > 0 else 0.0
        prov = factory.provenance_of(sid) if factory is not None else None
        shares.append(SymbolShare(symbol_id=sid, coefficient=c,
                                  share=share, provenance=prov))
    if slack:
        shares.append(SymbolShare(symbol_id=-1, coefficient=slack,
                                  share=abs(slack) / radius if radius else 0.0,
                                  provenance="slack accumulator"))
    shares.sort(key=lambda s: -abs(s.coefficient))
    return Explanation(
        central=form.central_float(),
        radius=radius,
        n_symbols=len(shares),
        shares=shares,
    )

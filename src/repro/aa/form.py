"""The bounded-k affine form (the heart of the paper's AA library).

An :class:`AffineForm` is ``â = a₀ + Σ aᵢ·εᵢ`` (eq. (1)) with at most ``k``
error symbols.  Every operation:

1. combines the operands' coefficients (eq. (3)/(5)), tracking *every*
   intermediate round-off exactly (via error-free transformations) into the
   accumulator ``x`` of the operation's fresh symbol (eq. (4));
2. absorbs fused symbols into that fresh symbol (eq. (6)) according to the
   placement policy (sorted / direct-mapped) and fusion policy
   (random / oldest / smallest / mean) from Section V;
3. honours the ``protect`` set produced by the static analysis: protected
   symbols are shielded from fusion (Section VI).

Soundness invariant: the exact real-arithmetic result of the original
operation is always contained in ``[a₀ − r(â), a₀ + r(â)]`` where
``r(â) = Σ|aᵢ|`` is evaluated with upward rounding.

The central value is a double for ``f64a`` and a :class:`repro.fp.DD` for
``dda`` (coefficients are always double, as in the paper).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import AbstractSet, Dict, Iterable, List, Optional, Sequence, Tuple

from ..common import decide_comparison
from ..errors import SoundnessError
from ..fp import (
    DD,
    EPS,
    ETA,
    add_ru,
    div_rd,
    div_ru,
    mul_ru,
    sub_rd,
    sub_ru,
    two_prod,
    two_sum,
)
from ..ia import Interval
from .context import AffineContext, Precision
from .linearize import linearize_exp, linearize_inv, linearize_log, linearize_sqrt
from .policies import FusionPolicy, PlacementPolicy, resolve_conflict, select_victims

__all__ = ["AffineForm"]

_EMPTY: frozenset = frozenset()

# TwoProd residuals are exact only in this window (see repro.fp.rounding).
_PROD_LO_SAFE = 2.0**-968
_PROD_HI_SAFE = 2.0**996


def _sum_err(a: float, b: float) -> Tuple[float, float]:
    """RN sum and a sound bound on its absolute rounding error."""
    s, e = two_sum(a, b)
    if math.isinf(s):
        return s, math.inf
    return s, abs(e)


def _prod_err(a: float, b: float) -> Tuple[float, float]:
    """RN product and a sound bound on its absolute rounding error."""
    p = a * b
    if math.isinf(p):
        return p, math.inf
    if _PROD_LO_SAFE < abs(p) < _PROD_HI_SAFE:
        _, e = two_prod(a, b)
        return p, abs(e)
    # Outside the exact window: half-ulp relative bound plus subnormal slack.
    return p, add_ru(mul_ru(EPS, abs(p)), ETA)


def _round_f32(value: float) -> "Tuple[float, float]":
    """Round a double to the nearest float32 (kept in a Python float) and a
    sound bound on the conversion error (the f32a central-value rounding)."""
    import numpy as np

    c = float(np.float32(value))
    if math.isinf(c):
        return c, (0.0 if math.isinf(value) else math.inf)
    # The difference of two doubles via TwoSum is exact.
    d, r = two_sum(value, -c)
    return c, add_ru(abs(d), abs(r))


def _pick_victim_slot(ids, coeffs, ctx, protect) -> int:
    """Direct-mapped placement: the slot the fresh symbol should claim.

    Preference order: an empty slot (scanning cyclically from the slot the
    next sequential id maps to, so fresh symbols of independent variables
    spread over different slots instead of piling onto slot 0); then an
    unprotected occupant chosen by the fusion policy (smallest coefficient
    for SP/MP, oldest id for OP, random for RP); a protected occupant only
    when every slot is protected.
    """
    k = ctx.k
    start = ctx.symbols.peek_next % k
    for off in range(k):
        slot = (start + off) % k
        if ids[slot] == 0:
            return slot
    candidates = [i for i, sid in enumerate(ids) if sid not in protect]
    if not candidates:
        candidates = list(range(len(ids)))
    if ctx.fusion is FusionPolicy.RANDOM:
        return ctx.rng.choice(candidates)
    if ctx.fusion is FusionPolicy.OLDEST:
        return min(candidates, key=lambda i: ids[i])
    return min(candidates, key=lambda i: (abs(coeffs[i]), ids[i]))


class AffineForm:
    """A bounded affine form tied to an :class:`AffineContext`.

    Use the context constructors (``ctx.input``, ``ctx.constant``,
    ``ctx.exact``, ``ctx.from_interval``) rather than instantiating
    directly.  Arithmetic is available both as operators (``+ - * /``) and
    as methods accepting a ``protect`` set of prioritized symbol ids.
    """

    __slots__ = ("ctx", "central", "ids", "coeffs", "_pcache", "_gcache",
                 "capacity")

    def __init__(
        self,
        ctx: AffineContext,
        central,
        ids: List[int],
        coeffs: List[float],
        capacity: Optional[int] = None,
    ) -> None:
        self.ctx = ctx
        self.central = central
        self.ids = ids
        self.coeffs = coeffs
        # Per-variable symbol capacity (the paper's future-work extension,
        # Section VIII).  Only meaningful under sorted placement; None
        # means the context-wide k.
        self.capacity = capacity

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def _empty_storage(cls, ctx: AffineContext) -> Tuple[List[int], List[float]]:
        if ctx.placement is PlacementPolicy.DIRECT_MAPPED:
            return [0] * ctx.k, [0.0] * ctx.k
        return [], []

    @classmethod
    def from_exact(cls, ctx: AffineContext, value: float) -> "AffineForm":
        ids, coeffs = cls._empty_storage(ctx)
        return cls(ctx, cls._central_from_float(ctx, value), ids, coeffs)

    @classmethod
    def from_center_and_symbol(
        cls,
        ctx: AffineContext,
        value: float,
        magnitude: float,
        provenance: Optional[str] = None,
    ) -> "AffineForm":
        out = cls.from_exact(ctx, value)
        if ctx.precision is Precision.F32 and not isinstance(out.central, DD):
            # The central value was rounded to float32: widen the symbol so
            # the intended range around `value` stays covered.
            d, r = two_sum(value, -out.central)
            conv = add_ru(abs(d), abs(r))
            if conv != 0.0:
                magnitude = add_ru(abs(magnitude), conv)
        if magnitude != 0.0:
            out._place_fresh_symbol(abs(magnitude), provenance, _EMPTY)
        return out

    @staticmethod
    def _central_from_float(ctx: AffineContext, value: float):
        if ctx.precision is Precision.DD:
            return DD(float(value))
        if ctx.precision is Precision.F32:
            # The conversion error of an inexact *input* is accounted for
            # by the constructors (context ulp handling), not here.
            return _round_f32(value)[0]
        return float(value)

    def copy(self) -> "AffineForm":
        return AffineForm(self.ctx, self.central, list(self.ids),
                          list(self.coeffs), self.capacity)

    def with_capacity(self, k: int) -> "AffineForm":
        """This value with a per-variable symbol capacity of ``k``
        (sorted placement only — the paper's Section VIII future-work
        direction).  Binary operations produce results with the larger of
        the operands' capacities; a smaller capacity fuses immediately."""
        if self.ctx.placement is not PlacementPolicy.SORTED:
            raise SoundnessError(
                "per-variable capacities require the sorted placement "
                "policy (direct-mapped slots assume a uniform k)"
            )
        if k < 1:
            raise ValueError("capacity must be >= 1")
        out = self.copy()
        out.capacity = k
        n = len(out.ids)
        if n > k:
            # Fusing produces a fresh symbol, so reserve its slot up front.
            victims = set(select_victims(out.ids, out.coeffs, n - (k - 1),
                                         self.ctx.fusion, self.ctx.rng,
                                         stats=self.ctx.stats))
            x = 0.0
            for i in victims:
                self.ctx.symbols.record_absorption(out.ids[i], out.coeffs[i],
                                                   "shrink")
                x = add_ru(x, abs(out.coeffs[i]))
            self.ctx.stats.n_fused_symbols += len(victims)
            out.ids = [out.ids[i] for i in range(n) if i not in victims]
            out.coeffs = [out.coeffs[i] for i in range(n) if i not in victims]
            out._place_fresh_symbol(x, "shrink", _EMPTY)
        return out

    def _cap(self) -> int:
        return self.capacity if self.capacity is not None else self.ctx.k

    @staticmethod
    def _merge_cap(a: "AffineForm", b: "AffineForm") -> Optional[int]:
        if a.capacity is None and b.capacity is None:
            return None
        return max(a._cap(), b._cap())

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def symbol_ids(self) -> List[int]:
        if self.ctx.placement is PlacementPolicy.DIRECT_MAPPED:
            return [i for i in self.ids if i != 0]
        return list(self.ids)

    def coefficients(self) -> Dict[int, float]:
        """Mapping symbol id -> coefficient (skips empty slots)."""
        out = {}
        for i, c in zip(self.ids, self.coeffs):
            if i != 0:
                out[i] = c
        return out

    def n_symbols(self) -> int:
        return len(self.symbol_ids())

    def central_float(self) -> float:
        return float(self.central) if isinstance(self.central, DD) else self.central

    def is_valid(self) -> bool:
        c = self.central_float()
        if math.isnan(c):
            return False
        return not any(math.isnan(x) for x in self.coeffs)

    def radius_ru(self) -> float:
        """Upper bound on r(â) = Σ|aᵢ| (eq. (2))."""
        acc = 0.0
        for c in self.coeffs:
            if c != 0.0:
                acc = add_ru(acc, abs(c))
        return acc

    def interval(self) -> Interval:
        """Sound enclosing interval (eq. (2))."""
        if not self.is_valid():
            return Interval.invalid()
        r = self.radius_ru()
        if isinstance(self.central, DD):
            lo = DD(self.central.hi, sub_rd(self.central.lo, r)).lower_double()
            hi = DD(self.central.hi, add_ru(self.central.lo, r)).upper_double()
            if math.isnan(lo) or math.isnan(hi):
                return Interval.invalid()
            return Interval(lo, hi)
        lo = sub_rd(self.central, r)
        hi = add_ru(self.central, r)
        if math.isnan(lo) or math.isnan(hi):
            return Interval.invalid()
        return Interval(lo, hi)

    def contains(self, x) -> bool:
        """Whether the exact value ``x`` (float or Fraction) is enclosed."""
        if isinstance(self.central, DD) and isinstance(x, Fraction):
            if not self.is_valid():
                return True
            r = Fraction(self.radius_ru()) if math.isfinite(self.radius_ru()) else None
            if r is None:
                return True
            c = Fraction(self.central.hi) + Fraction(self.central.lo)
            return c - r <= x <= c + r
        return self.interval().contains(x)

    def __repr__(self) -> str:
        terms = ", ".join(f"{c:.3g}·ε{i}" for i, c in self.coefficients().items())
        return f"AffineForm({self.central_float():.17g}{'; ' + terms if terms else ''})"

    # ------------------------------------------------------------------
    # central-value arithmetic (precision-generic)
    # ------------------------------------------------------------------

    def _c_add(self, a, b) -> Tuple[object, float]:
        if isinstance(a, DD) or isinstance(b, DD):
            a = a if isinstance(a, DD) else DD(a)
            b = b if isinstance(b, DD) else DD(b)
            return a.add_with_err(b)
        s, e = _sum_err(a, b)
        if self.ctx.precision is Precision.F32:
            s, e32 = _round_f32(s)
            e = add_ru(e, e32)
        return s, e

    def _c_mul(self, a, b) -> Tuple[object, float]:
        if isinstance(a, DD) or isinstance(b, DD):
            a = a if isinstance(a, DD) else DD(a)
            b = b if isinstance(b, DD) else DD(b)
            return a.mul_with_err(b)
        p, e = _prod_err(a, b)
        if self.ctx.precision is Precision.F32:
            p, e32 = _round_f32(p)
            e = add_ru(e, e32)
        return p, e

    @staticmethod
    def _c_neg(a):
        return -a

    # ------------------------------------------------------------------
    # symbol storage operations
    # ------------------------------------------------------------------

    def _place_fresh_symbol(
        self, coeff: float, provenance: Optional[str], protect: AbstractSet[int]
    ) -> None:
        """Create one fresh symbol with |coeff| and store it, fusing an
        occupant under direct-mapped placement when required."""
        ctx = self.ctx
        if coeff == 0.0:
            return
        if ctx.placement is PlacementPolicy.SORTED:
            sid = ctx.symbols.fresh(provenance)
            self.ids.append(sid)  # fresh ids are the largest: stays sorted
            self.coeffs.append(coeff)
            return
        # Direct-mapped: ids are arbitrary labels, so pick the fresh id such
        # that it lands on the slot the fusion policy wants to sacrifice —
        # an empty slot if there is one, otherwise the policy's victim.
        slot = _pick_victim_slot(self.ids, self.coeffs, ctx, protect)
        sid = ctx.symbols.fresh_at(slot, ctx.k, provenance)
        if self.ids[slot] != 0:
            ctx.symbols.record_absorption(self.ids[slot],
                                          self.coeffs[slot], provenance)
            coeff = add_ru(coeff, abs(self.coeffs[slot]))
            ctx.stats.n_fused_symbols += 1
        self.ids[slot] = sid
        self.coeffs[slot] = coeff

    def _enforce_capacity_sorted(
        self, ids: List[int], coeffs: List[float], x: float,
        protect: AbstractSet[int], site: Optional[str] = None,
    ) -> Tuple[List[int], List[float], float]:
        """Fuse symbols into the fresh-symbol accumulator ``x`` until the
        sorted storage fits ``k`` (reserving a slot for the fresh symbol
        when ``x > 0``)."""
        ctx = self.ctx
        cap = self._cap()
        budget = cap - (1 if x != 0.0 else 0)
        if x == 0.0 and len(ids) > cap:
            # Fusing will itself create the fresh symbol: reserve its slot.
            budget = cap - 1
        overflow = len(ids) - budget
        if overflow <= 0:
            return ids, coeffs, x
        victims = select_victims(
            ids, coeffs, overflow, ctx.fusion, ctx.rng, protect,
            stats=ctx.stats
        )
        vic = set(victims)
        for i in victims:
            ctx.symbols.record_absorption(ids[i], coeffs[i], site)
            x = add_ru(x, abs(coeffs[i]))
        ctx.stats.n_fused_symbols += len(victims)
        new_ids = [ids[i] for i in range(len(ids)) if i not in vic]
        new_coeffs = [coeffs[i] for i in range(len(ids)) if i not in vic]
        return new_ids, new_coeffs, x

    # ------------------------------------------------------------------
    # binary linear combination: self*sa + other*sb  (sa, sb in {+1,-1})
    # ------------------------------------------------------------------

    def _linear_combine(
        self, other: "AffineForm", negate_other: bool,
        protect: AbstractSet[int], provenance: Optional[str],
    ) -> "AffineForm":
        ctx = self.ctx
        x = 0.0  # fresh-symbol accumulator (eq. (4)), maintained with RU

        ob_central = self._c_neg(other.central) if negate_other else other.central
        central, cerr = self._c_add(self.central, ob_central)
        x = add_ru(x, cerr)

        sgn = -1.0 if negate_other else 1.0
        m_shared = 0

        if ctx.placement is PlacementPolicy.SORTED:
            ids: List[int] = []
            coeffs: List[float] = []
            i = j = 0
            a_ids, a_co = self.ids, self.coeffs
            b_ids, b_co = other.ids, other.coeffs
            na, nb = len(a_ids), len(b_ids)
            while i < na or j < nb:
                if j >= nb or (i < na and a_ids[i] < b_ids[j]):
                    ids.append(a_ids[i])
                    coeffs.append(a_co[i])
                    i += 1
                elif i >= na or b_ids[j] < a_ids[i]:
                    ids.append(b_ids[j])
                    coeffs.append(sgn * b_co[j])
                    j += 1
                else:  # shared symbol
                    s, e = _sum_err(a_co[i], sgn * b_co[j])
                    x = add_ru(x, e)
                    if s != 0.0:
                        ids.append(a_ids[i])
                        coeffs.append(s)
                    m_shared += 1
                    i += 1
                    j += 1
            cap = self._merge_cap(self, other)
            tmp = AffineForm(ctx, central, ids, coeffs, cap)
            ids, coeffs, x = tmp._enforce_capacity_sorted(
                ids, coeffs, x, protect, provenance)
            out = AffineForm(ctx, central, ids, coeffs, cap)
            out._place_fresh_symbol(x, provenance, protect)
        else:
            k = ctx.k
            ids = [0] * k
            coeffs = [0.0] * k
            for slot in range(k):
                ia, ib = self.ids[slot], other.ids[slot]
                ca = self.coeffs[slot]
                cb = sgn * other.coeffs[slot]
                if ia == 0 and ib == 0:
                    continue
                if ia == ib:
                    s, e = _sum_err(ca, cb)
                    x = add_ru(x, e)
                    if s != 0.0:
                        ids[slot] = ia
                        coeffs[slot] = s
                    m_shared += 1
                elif ib == 0:
                    ids[slot] = ia
                    coeffs[slot] = ca
                elif ia == 0:
                    ids[slot] = ib
                    coeffs[slot] = cb
                else:  # conflict
                    ctx.stats.n_conflicts += 1
                    if resolve_conflict(ia, ca, ib, cb, ctx.fusion, ctx.rng, protect):
                        ids[slot], coeffs[slot] = ia, ca
                        ctx.symbols.record_absorption(ib, cb, provenance)
                        x = add_ru(x, abs(cb))
                    else:
                        ids[slot], coeffs[slot] = ib, cb
                        ctx.symbols.record_absorption(ia, ca, provenance)
                        x = add_ru(x, abs(ca))
                    ctx.stats.n_fused_symbols += 1
            out = AffineForm(ctx, central, ids, coeffs)
            out._place_fresh_symbol(x, provenance, protect)

        ctx.stats.n_add += 1
        # Paper cost model (Section V): addition with SP/direct-mapped costs
        # 3k + 2m + 3 flops.
        ctx.stats.flops += 3 * ctx.k + 2 * m_shared + 3
        return out

    # ------------------------------------------------------------------
    # public arithmetic
    # ------------------------------------------------------------------

    def add(self, other: "AffineForm", protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "AffineForm":
        other = self._coerce(other)
        return self._linear_combine(other, False, protect, provenance)

    def sub(self, other: "AffineForm", protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "AffineForm":
        other = self._coerce(other)
        return self._linear_combine(other, True, protect, provenance)

    def mul(self, other: "AffineForm", protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "AffineForm":
        other = self._coerce(other)
        ctx = self.ctx
        x = 0.0

        a0f = self.central_float()
        b0f = other.central_float()
        central, cerr = self._c_mul(self.central, other.central)
        x = add_ru(x, cerr)

        # Nonlinear overapproximation term r(â)·r(b̂) (eq. (5)).
        ra, rb = self.radius_ru(), other.radius_ru()
        if ra != 0.0 and rb != 0.0:
            x = add_ru(x, mul_ru(ra, rb))
        # When the central value is dd, the coefficient products below use
        # only the double part; the dropped low part contributes
        # |a0.lo|·r(b̂) + |b0.lo|·r(â).
        if isinstance(self.central, DD):
            x = add_ru(x, mul_ru(abs(self.central.lo), rb))
            x = add_ru(x, mul_ru(abs(other.central.lo), ra))

        def combine(ca: float, cb: float) -> float:
            """fl(a0·cb + b0·ca) with all round-offs fed into x."""
            nonlocal x
            p1, e1 = _prod_err(a0f, cb)
            p2, e2 = _prod_err(b0f, ca)
            s, e3 = _sum_err(p1, p2)
            x = add_ru(x, add_ru(e1, add_ru(e2, e3)))
            return s

        def scale_a(ca: float) -> float:
            nonlocal x
            p, e = _prod_err(b0f, ca)
            x = add_ru(x, e)
            return p

        def scale_b(cb: float) -> float:
            nonlocal x
            p, e = _prod_err(a0f, cb)
            x = add_ru(x, e)
            return p

        m_shared = 0
        if ctx.placement is PlacementPolicy.SORTED:
            ids: List[int] = []
            coeffs: List[float] = []
            i = j = 0
            a_ids, a_co = self.ids, self.coeffs
            b_ids, b_co = other.ids, other.coeffs
            na, nb = len(a_ids), len(b_ids)
            while i < na or j < nb:
                if j >= nb or (i < na and a_ids[i] < b_ids[j]):
                    c = scale_a(a_co[i])
                    if c != 0.0:
                        ids.append(a_ids[i])
                        coeffs.append(c)
                    i += 1
                elif i >= na or b_ids[j] < a_ids[i]:
                    c = scale_b(b_co[j])
                    if c != 0.0:
                        ids.append(b_ids[j])
                        coeffs.append(c)
                    j += 1
                else:
                    c = combine(a_co[i], b_co[j])
                    if c != 0.0:
                        ids.append(a_ids[i])
                        coeffs.append(c)
                    m_shared += 1
                    i += 1
                    j += 1
            cap = self._merge_cap(self, other)
            tmp = AffineForm(ctx, central, ids, coeffs, cap)
            ids, coeffs, x = tmp._enforce_capacity_sorted(
                ids, coeffs, x, protect, provenance)
            out = AffineForm(ctx, central, ids, coeffs, cap)
            out._place_fresh_symbol(x, provenance, protect)
        else:
            k = ctx.k
            ids = [0] * k
            coeffs = [0.0] * k
            for slot in range(k):
                ia, ib = self.ids[slot], other.ids[slot]
                ca, cb = self.coeffs[slot], other.coeffs[slot]
                if ia == 0 and ib == 0:
                    continue
                if ia == ib:
                    c = combine(ca, cb)
                    if c != 0.0:
                        ids[slot] = ia
                        coeffs[slot] = c
                    m_shared += 1
                elif ib == 0:
                    c = scale_a(ca)
                    if c != 0.0:
                        ids[slot] = ia
                        coeffs[slot] = c
                elif ia == 0:
                    c = scale_b(cb)
                    if c != 0.0:
                        ids[slot] = ib
                        coeffs[slot] = c
                else:
                    ctx.stats.n_conflicts += 1
                    va = scale_a(ca)
                    vb = scale_b(cb)
                    if resolve_conflict(ia, va, ib, vb, ctx.fusion, ctx.rng, protect):
                        if va != 0.0:
                            ids[slot], coeffs[slot] = ia, va
                        ctx.symbols.record_absorption(ib, vb, provenance)
                        x = add_ru(x, abs(vb))
                    else:
                        if vb != 0.0:
                            ids[slot], coeffs[slot] = ib, vb
                        ctx.symbols.record_absorption(ia, va, provenance)
                        x = add_ru(x, abs(va))
                    ctx.stats.n_fused_symbols += 1
            out = AffineForm(ctx, central, ids, coeffs)
            out._place_fresh_symbol(x, provenance, protect)

        ctx.stats.n_mul += 1
        # Paper cost model: multiplication SP/direct-mapped 13k + 2m + 3.
        ctx.stats.flops += 13 * ctx.k + 2 * m_shared + 3
        return out

    def _unary_linear(
        self, alpha: float, zeta: float, delta: float,
        protect: AbstractSet[int], provenance: Optional[str],
    ) -> "AffineForm":
        """Return ``alpha·self + zeta + delta·ε_fresh`` (sound nonlinear-op
        plumbing; see :mod:`repro.aa.linearize`)."""
        ctx = self.ctx
        x = abs(delta)

        scaled, cerr = self._c_mul(self.central, alpha)
        x = add_ru(x, cerr)
        central, cerr2 = self._c_add(scaled, self._central_from_float(ctx, zeta))
        x = add_ru(x, cerr2)

        ids: List[int] = list(self.ids)
        coeffs: List[float] = []
        for c in self.coeffs:
            if c == 0.0:
                coeffs.append(0.0)
                continue
            p, e = _prod_err(alpha, c)
            x = add_ru(x, e)
            coeffs.append(p)
        if ctx.placement is PlacementPolicy.SORTED:
            ids, coeffs, x = self._enforce_capacity_sorted(
                ids, coeffs, x, protect, provenance)
        out = AffineForm(ctx, central, ids, coeffs, self.capacity)
        out._place_fresh_symbol(x, provenance, protect)
        return out

    def div(self, other: "AffineForm", protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "AffineForm":
        other = self._coerce(other)
        ctx = self.ctx
        ctx.stats.n_div += 1
        iv = other.interval()
        if not iv.is_valid() or (iv.lo <= 0.0 <= iv.hi):
            return self._invalid_result()
        if iv.is_point() and other.n_symbols() == 0:
            # Exact scalar divisor: scale coefficients directly.
            return self._div_by_exact_scalar(iv.lo, protect, provenance)
        alpha, zeta, delta = linearize_inv(iv.lo, iv.hi)
        inv = other._unary_linear(alpha, zeta, delta, protect,
                                  provenance and provenance + ":inv")
        return self.mul(inv, protect, provenance)

    def _div_by_exact_scalar(
        self, b: float, protect: AbstractSet[int], provenance: Optional[str]
    ) -> "AffineForm":
        x = 0.0
        if isinstance(self.central, DD):
            central, cerr = self.central.div_with_err(DD(b))
            x = add_ru(x, cerr)
        else:
            q = self.central / b
            x = add_ru(x, sub_ru(div_ru(self.central, b), div_rd(self.central, b)))
            if self.ctx.precision is Precision.F32:
                q, e32 = _round_f32(q)
                x = add_ru(x, e32)
            central = q
        coeffs: List[float] = []
        for c in self.coeffs:
            if c == 0.0:
                coeffs.append(0.0)
                continue
            q = c / b
            x = add_ru(x, sub_ru(div_ru(c, b), div_rd(c, b)))
            coeffs.append(q)
        out = AffineForm(self.ctx, central, list(self.ids), coeffs,
                         self.capacity)
        if self.ctx.placement is PlacementPolicy.SORTED:
            out.ids, out.coeffs, x = out._enforce_capacity_sorted(
                out.ids, out.coeffs, x, protect, provenance
            )
        out._place_fresh_symbol(x, provenance, protect)
        return out

    def sqrt(self, protect: AbstractSet[int] = _EMPTY,
             provenance: Optional[str] = None) -> "AffineForm":
        self.ctx.stats.n_sqrt += 1
        iv = self.interval()
        if not iv.is_valid() or iv.hi < 0.0:
            return self._invalid_result()
        lo = max(iv.lo, 0.0)
        alpha, zeta, delta = linearize_sqrt(lo, iv.hi)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def exp(self, protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "AffineForm":
        iv = self.interval()
        if not iv.is_valid() or iv.hi > 709.0:
            return self._invalid_result()
        alpha, zeta, delta = linearize_exp(iv.lo, iv.hi)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def log(self, protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "AffineForm":
        iv = self.interval()
        if not iv.is_valid() or iv.lo <= 0.0:
            return self._invalid_result()
        alpha, zeta, delta = linearize_log(iv.lo, iv.hi)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def neg(self) -> "AffineForm":
        """Exact negation (no fresh symbol)."""
        return AffineForm(
            self.ctx, self._c_neg(self.central), list(self.ids),
            [-c for c in self.coeffs], self.capacity,
        )

    def abs_(self, protect: AbstractSet[int] = _EMPTY) -> "AffineForm":
        iv = self.interval()
        if not iv.is_valid():
            return self._invalid_result()
        if iv.lo >= 0.0:
            return self
        if iv.hi <= 0.0:
            return self.neg()
        # Straddles zero: correlation is lost; rebuild from the range.
        hi = max(-iv.lo, iv.hi)
        return AffineForm.from_center_and_symbol(
            self.ctx, hi / 2.0, add_ru(hi / 2.0, math.ulp(hi)), "abs"
        )

    def min_with(self, other: "AffineForm") -> "AffineForm":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if not (a.is_valid() and b.is_valid()):
            return self._invalid_result()
        if a.hi <= b.lo:
            return self
        if b.hi <= a.lo:
            return other
        m = a.min_with(b)
        return AffineForm.from_center_and_symbol(
            self.ctx, m.midpoint(), add_ru(m.radius_ru(), math.ulp(m.midpoint())),
            "min",
        )

    def max_with(self, other: "AffineForm") -> "AffineForm":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if not (a.is_valid() and b.is_valid()):
            return self._invalid_result()
        if a.lo >= b.hi:
            return self
        if b.lo >= a.hi:
            return other
        m = a.max_with(b)
        return AffineForm.from_center_and_symbol(
            self.ctx, m.midpoint(), add_ru(m.radius_ru(), math.ulp(m.midpoint())),
            "max",
        )

    def _invalid_result(self) -> "AffineForm":
        ids, coeffs = self._empty_storage(self.ctx)
        return AffineForm(self.ctx, self._central_from_float(self.ctx, math.nan),
                          ids, coeffs)

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------

    def compare_lt(self, other, protect: AbstractSet[int] = _EMPTY) -> bool:
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        definite: Optional[bool]
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi < b.lo:
            definite = True
        elif a.lo >= b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(
            definite, self.central_float() < other.central_float(),
            self.ctx.decision_policy, "<", self.ctx.stats,
        )

    def compare_le(self, other, protect: AbstractSet[int] = _EMPTY) -> bool:
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        definite: Optional[bool]
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi <= b.lo:
            definite = True
        elif a.lo > b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(
            definite, self.central_float() <= other.central_float(),
            self.ctx.decision_policy, "<=", self.ctx.stats,
        )

    # ------------------------------------------------------------------
    # operator sugar
    # ------------------------------------------------------------------

    def _coerce(self, x) -> "AffineForm":
        if isinstance(x, AffineForm):
            if x.ctx is not self.ctx:
                raise SoundnessError("mixing AffineForms from different contexts")
            return x
        if isinstance(x, (int, float)):
            return AffineForm.from_exact(self.ctx, float(x))
        raise TypeError(f"cannot coerce {type(x).__name__} to AffineForm")

    def __add__(self, other):
        return self.add(other)

    def __radd__(self, other):
        return self._coerce(other).add(self)

    def __sub__(self, other):
        return self.sub(other)

    def __rsub__(self, other):
        return self._coerce(other).sub(self)

    def __mul__(self, other):
        return self.mul(other)

    def __rmul__(self, other):
        return self._coerce(other).mul(self)

    def __truediv__(self, other):
        return self.div(other)

    def __rtruediv__(self, other):
        return self._coerce(other).div(self)

    def __neg__(self):
        return self.neg()

    def __lt__(self, other):
        return self.compare_lt(other)

    def __le__(self, other):
        return self.compare_le(other)

    def __gt__(self, other):
        return self._coerce(other).compare_lt(self)

    def __ge__(self, other):
        return self._coerce(other).compare_le(self)

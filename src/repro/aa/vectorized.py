"""Vectorized direct-mapped affine kernels — the paper's SIMD path.

The direct-mapped placement policy is what makes SIMD vectorization of AA
effective (Section V, VII-A): the coefficient arrays of the two operands are
*slot-aligned*, so combining them is a lane-parallel operation with a few
blends for conflicts.  Our stand-in for AVX2 is numpy: each operation is a
fixed, branch-light sequence of elementwise kernels over the length-``k``
coefficient arrays.

Round-off accumulation differs from the scalar path: instead of exact
error-free transformations per lane (which would serialize the computation),
we use the standard *a-priori* model bound — for every RN lane operation,

    |fl(x ∘ y) − x ∘ y| <= u·|fl(x ∘ y)| + η/2,

(u = 2⁻⁵³; the η term is only needed for multiplications — RN addition is
exact in the subnormal range).  The lane bounds are summed with numpy and the
sum inflated by ``(1 + 4(n+2)u)`` to cover the summation's own rounding, so
the fresh-symbol coefficient remains a sound upper bound.  This is slightly
looser than the scalar EFT path — mirroring the paper's vectorized/scalar
accuracy relationship — but every bit as sound.
"""

from __future__ import annotations

import math
from typing import AbstractSet, List, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised on scalar-only installs
    np = None

from ..common import decide_comparison
from ..errors import CompileError, SoundnessError
from ..fp import EPS, ETA, add_ru, div_rd, div_ru, mul_ru, sub_rd, sub_ru
from ..ia import Interval
from .context import AffineContext, Precision
from .form import _prod_err, _sum_err
from .linearize import linearize_exp, linearize_inv, linearize_log, linearize_sqrt
from .policies import FusionPolicy

__all__ = ["VecAffine", "require_numpy"]

_EMPTY: frozenset = frozenset()


def require_numpy() -> None:
    """Fail with an actionable message on scalar-only installs.

    The module itself imports cleanly without numpy (so configuration
    parsing, the CLI, and the scalar kernels keep working); only actually
    *using* the vectorized kernels requires the optional dependency.
    """
    if np is None:
        raise CompileError(
            "the vectorized affine kernels require numpy, which is not "
            "installed; install the vector extra (pip install "
            "'repro[vector]') or drop 'v' from the configuration string "
            "to use the scalar kernels")


def _protect_array(protect) -> np.ndarray:
    """A sorted id array for fast membership tests (np.isin is too slow
    for per-op use on length-k arrays)."""
    return np.sort(np.fromiter(protect, dtype=np.int64, count=len(protect)))


def _member(ids: np.ndarray, parr: np.ndarray) -> np.ndarray:
    """Elementwise membership of ids in the sorted array parr."""
    if parr.size == 0:
        return np.zeros(ids.shape, dtype=bool)
    idx = np.searchsorted(parr, ids)
    np.minimum(idx, parr.size - 1, out=idx)
    return parr[idx] == ids


def _sum_bound_ru(values: np.ndarray) -> float:
    """Sound upper bound on the exact sum of nonnegative lane values."""
    s = float(np.sum(values))
    if s == 0.0:
        return 0.0
    if not math.isfinite(s):
        return math.inf
    n = values.size
    return mul_ru(s, 1.0 + 4.0 * (n + 2) * EPS)


class VecAffine:
    """Bounded affine form over numpy arrays (direct-mapped placement only).

    Mirrors the :class:`repro.aa.form.AffineForm` interface; created through
    an :class:`AffineContext` with ``vectorized=True``.
    """

    __slots__ = ("ctx", "central", "ids", "coeffs", "_pcache", "_gcache")

    def __init__(self, ctx: AffineContext, central: float,
                 ids: np.ndarray, coeffs: np.ndarray) -> None:
        self.ctx = ctx
        self.central = central
        self.ids = ids
        self.coeffs = coeffs

    # -- construction -------------------------------------------------------

    @classmethod
    def from_exact(cls, ctx: AffineContext, value: float) -> "VecAffine":
        if ctx.precision is Precision.DD:
            raise SoundnessError("vectorized kernels support f64a only")
        return cls(ctx, float(value),
                   np.zeros(ctx.k, dtype=np.int64),
                   np.zeros(ctx.k, dtype=np.float64))

    @classmethod
    def from_center_and_symbol(
        cls, ctx: AffineContext, value: float, magnitude: float,
        provenance: Optional[str] = None,
    ) -> "VecAffine":
        out = cls.from_exact(ctx, value)
        if magnitude != 0.0:
            out._place_fresh_symbol(abs(magnitude), provenance, _EMPTY)
        return out

    # -- views ---------------------------------------------------------------

    def symbol_ids(self) -> List[int]:
        return [int(i) for i in self.ids if i != 0]

    def coefficients(self):
        return {int(i): float(c) for i, c in zip(self.ids, self.coeffs) if i != 0}

    def n_symbols(self) -> int:
        return int(np.count_nonzero(self.ids))

    def central_float(self) -> float:
        return self.central

    def is_valid(self) -> bool:
        return not (math.isnan(self.central) or bool(np.isnan(self.coeffs).any()))

    def radius_ru(self) -> float:
        return _sum_bound_ru(np.abs(self.coeffs))

    def interval(self) -> Interval:
        if not self.is_valid():
            return Interval.invalid()
        r = self.radius_ru()
        lo, hi = sub_rd(self.central, r), add_ru(self.central, r)
        if math.isnan(lo) or math.isnan(hi):
            return Interval.invalid()
        return Interval(lo, hi)

    def contains(self, x) -> bool:
        return self.interval().contains(x)

    def __repr__(self) -> str:
        return f"VecAffine({self.central:.17g}; {self.n_symbols()} symbols)"

    # -- fresh symbol placement ------------------------------------------------

    def _place_fresh_symbol(
        self, coeff: float, provenance: Optional[str], protect: AbstractSet[int]
    ) -> None:
        if coeff == 0.0:
            return
        ctx = self.ctx
        slot = self._pick_victim_slot(protect)
        sid = ctx.symbols.fresh_at(slot, ctx.k, provenance)
        if self.ids[slot] != 0:
            ctx.symbols.record_absorption(int(self.ids[slot]),
                                          float(self.coeffs[slot]), provenance)
            coeff = add_ru(coeff, abs(float(self.coeffs[slot])))
            ctx.stats.n_fused_symbols += 1
        self.ids[slot] = sid
        self.coeffs[slot] = coeff

    def _pick_victim_slot(self, protect: AbstractSet[int]) -> int:
        """Vectorized victim-slot selection (see form._pick_victim_slot)."""
        ids, coeffs = self.ids, self.coeffs
        empty = np.flatnonzero(ids == 0)
        if empty.size:
            # Cyclic preference from the next sequential id's slot, so
            # fresh symbols of independent variables spread over slots.
            start = self.ctx.symbols.peek_next % self.ctx.k
            at_or_after = empty[empty >= start]
            return int(at_or_after[0]) if at_or_after.size else int(empty[0])
        if protect:
            parr = _protect_array(protect)
            allowed = np.flatnonzero(~_member(ids, parr))
            if allowed.size == 0:
                allowed = np.arange(ids.size)
        else:
            allowed = np.arange(ids.size)
        fusion = self.ctx.fusion
        if fusion is FusionPolicy.RANDOM:
            return int(allowed[int(self.ctx.nprng.integers(allowed.size))])
        if fusion is FusionPolicy.OLDEST:
            return int(allowed[int(np.argmin(ids[allowed]))])
        return int(allowed[int(np.argmin(np.abs(coeffs[allowed])))])

    # -- conflict resolution (vectorized) ---------------------------------------

    def _conflict_winner_mask(
        self, ids_a: np.ndarray, va: np.ndarray, ids_b: np.ndarray,
        vb: np.ndarray, conflict: np.ndarray, protect: AbstractSet[int],
    ) -> np.ndarray:
        """Boolean mask: True where operand *a*'s symbol wins its slot."""
        fusion = self.ctx.fusion
        if fusion is FusionPolicy.OLDEST:
            a_wins = ids_a > ids_b
        elif fusion is FusionPolicy.RANDOM:
            a_wins = self.ctx.nprng.random(ids_a.size) < 0.5
        else:  # SMALLEST / MEAN: larger magnitude survives
            a_wins = np.abs(va) > np.abs(vb)
            ties = np.abs(va) == np.abs(vb)
            a_wins = np.where(ties, ids_a > ids_b, a_wins)
        if protect:
            parr = _protect_array(protect)
            pa = _member(ids_a, parr)
            pb = _member(ids_b, parr)
            a_wins = np.where(pa & ~pb, True, a_wins)
            a_wins = np.where(pb & ~pa, False, a_wins)
        return a_wins & conflict

    # -- arithmetic ---------------------------------------------------------------

    def _linear_combine(self, other: "VecAffine", negate_other: bool,
                        protect: AbstractSet[int],
                        provenance: Optional[str]) -> "VecAffine":
        ctx = self.ctx
        central, cerr = _sum_err(self.central,
                                 -other.central if negate_other else other.central)
        x = cerr

        ca = self.coeffs
        cb = -other.coeffs if negate_other else other.coeffs
        ids_a, ids_b = self.ids, other.ids

        _old_err = np.seterr(over="ignore", invalid="ignore", under="ignore")
        eq = ids_a == ids_b
        both = eq & (ids_a != 0)
        conflict = ~eq & (ids_a != 0) & (ids_b != 0)

        # For every non-conflict slot the result is simply the lane sum
        # (empty lanes hold 0 coefficients) and the surviving id is the
        # larger of the two (one of them is 0 unless shared).
        summed = ca + cb
        out_ids = np.maximum(ids_a, ids_b)
        out_coeffs = summed
        # Lane rounding errors on shared-symbol adds (addition is exact in
        # the subnormal range, so u|result| alone is a valid bound).
        x = add_ru(x, mul_ru(EPS, _sum_bound_ru(np.abs(summed * both))))

        n_conf = int(np.count_nonzero(conflict))
        if n_conf:
            ctx.stats.n_conflicts += n_conf
            ctx.stats.n_fused_symbols += n_conf
            a_wins = self._conflict_winner_mask(ids_a, ca, ids_b, cb,
                                                conflict, protect)
            b_wins = conflict & ~a_wins
            out_ids = np.where(a_wins, ids_a, np.where(b_wins, ids_b, out_ids))
            out_coeffs = np.where(a_wins, ca, np.where(b_wins, cb, out_coeffs))
            lost = np.where(a_wins, np.abs(cb), np.where(b_wins, np.abs(ca), 0.0))
            if ctx.symbols.track_provenance:
                for i in np.flatnonzero(conflict):
                    loser = ids_b[i] if a_wins[i] else ids_a[i]
                    ctx.symbols.record_absorption(int(loser), float(lost[i]),
                                                  provenance)
            x = add_ru(x, _sum_bound_ru(lost))

        np.seterr(**_old_err)
        out = VecAffine(ctx, central, out_ids, out_coeffs)
        out._place_fresh_symbol(x, provenance, protect)
        ctx.stats.n_add += 1
        m_shared = int(np.count_nonzero(both))
        ctx.stats.flops += 3 * ctx.k + 2 * m_shared + 3
        return out

    def add(self, other, protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "VecAffine":
        return self._linear_combine(self._coerce(other), False, protect, provenance)

    def sub(self, other, protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "VecAffine":
        return self._linear_combine(self._coerce(other), True, protect, provenance)

    def mul(self, other, protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "VecAffine":
        other = self._coerce(other)
        ctx = self.ctx
        a0, b0 = self.central, other.central
        central, cerr = _prod_err(a0, b0)
        x = cerr

        ca, cb = self.coeffs, other.coeffs
        ids_a, ids_b = self.ids, other.ids

        _old_err = np.seterr(over="ignore", invalid="ignore", under="ignore")
        abs_ca = np.abs(ca)
        abs_cb = np.abs(cb)
        ra = _sum_bound_ru(abs_ca)
        rb = _sum_bound_ru(abs_cb)
        if ra != 0.0 and rb != 0.0:
            x = add_ru(x, mul_ru(ra, rb))

        conflict = (ids_a != ids_b) & (ids_a != 0) & (ids_b != 0)

        pa = b0 * ca  # contribution of self's coefficients
        pb = a0 * cb  # contribution of other's coefficients
        # Non-conflict slots: `combined` is correct for shared, exclusive
        # and empty lanes alike (the missing side contributes exactly 0).
        combined = pa + pb
        out_ids = np.maximum(ids_a, ids_b)
        out_coeffs = combined
        # Lane error model: u(|pa| + |pb| + |combined|) + 2η per lane
        # (inactive lanes contribute 0 to the magnitude sum; the η term is
        # charged for all k lanes, a sound overcount).
        mag = _sum_bound_ru(np.abs(pa) + np.abs(pb) + np.abs(combined))
        x = add_ru(x, add_ru(mul_ru(EPS, mag), 2.0 * ETA * self.ctx.k))

        n_conf = int(np.count_nonzero(conflict))
        if n_conf:
            ctx.stats.n_conflicts += n_conf
            ctx.stats.n_fused_symbols += n_conf
            a_wins = self._conflict_winner_mask(ids_a, pa, ids_b, pb,
                                                conflict, protect)
            b_wins = conflict & ~a_wins
            out_ids = np.where(a_wins, ids_a, np.where(b_wins, ids_b, out_ids))
            out_coeffs = np.where(a_wins, pa, np.where(b_wins, pb, out_coeffs))
            lost = np.where(a_wins, np.abs(pb), np.where(b_wins, np.abs(pa), 0.0))
            if ctx.symbols.track_provenance:
                for i in np.flatnonzero(conflict):
                    loser = ids_b[i] if a_wins[i] else ids_a[i]
                    ctx.symbols.record_absorption(int(loser), float(lost[i]),
                                                  provenance)
            x = add_ru(x, _sum_bound_ru(lost))

        np.seterr(**_old_err)
        out = VecAffine(ctx, central, out_ids, out_coeffs)
        out._place_fresh_symbol(x, provenance, protect)
        ctx.stats.n_mul += 1
        m_shared = int(np.count_nonzero((ids_a == ids_b) & (ids_a != 0)))
        ctx.stats.flops += 13 * ctx.k + 2 * m_shared + 3
        return out

    def _unary_linear(self, alpha: float, zeta: float, delta: float,
                      protect: AbstractSet[int],
                      provenance: Optional[str]) -> "VecAffine":
        x = abs(delta)
        scaled, e = _prod_err(alpha, self.central)
        x = add_ru(x, e)
        central, e2 = _sum_err(scaled, zeta)
        x = add_ru(x, e2)
        with np.errstate(over="ignore", invalid="ignore", under="ignore"):
            coeffs = alpha * self.coeffs
            active = self.ids != 0
            lane_err = np.where(active, EPS * np.abs(coeffs) + ETA, 0.0)
            x = add_ru(x, _sum_bound_ru(lane_err))
        out = VecAffine(self.ctx, central, self.ids.copy(), coeffs)
        out._place_fresh_symbol(x, provenance, protect)
        return out

    def div(self, other, protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "VecAffine":
        other = self._coerce(other)
        ctx = self.ctx
        ctx.stats.n_div += 1
        iv = other.interval()
        if not iv.is_valid() or (iv.lo <= 0.0 <= iv.hi):
            return self._invalid_result()
        if iv.is_point() and other.n_symbols() == 0:
            b = iv.lo
            x = sub_ru(div_ru(self.central, b), div_rd(self.central, b))
            central = self.central / b
            coeffs = self.coeffs / b
            active = self.ids != 0
            lane_err = np.where(active, EPS * np.abs(coeffs) + ETA, 0.0)
            x = add_ru(x, _sum_bound_ru(lane_err))
            out = VecAffine(ctx, central, self.ids.copy(), coeffs)
            out._place_fresh_symbol(x, provenance, protect)
            return out
        alpha, zeta, delta = linearize_inv(iv.lo, iv.hi)
        inv = other._unary_linear(alpha, zeta, delta, protect,
                                  provenance and provenance + ":inv")
        return self.mul(inv, protect, provenance)

    def sqrt(self, protect: AbstractSet[int] = _EMPTY,
             provenance: Optional[str] = None) -> "VecAffine":
        self.ctx.stats.n_sqrt += 1
        iv = self.interval()
        if not iv.is_valid() or iv.hi < 0.0:
            return self._invalid_result()
        alpha, zeta, delta = linearize_sqrt(max(iv.lo, 0.0), iv.hi)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def exp(self, protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "VecAffine":
        iv = self.interval()
        if not iv.is_valid() or iv.hi > 709.0:
            return self._invalid_result()
        alpha, zeta, delta = linearize_exp(iv.lo, iv.hi)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def log(self, protect: AbstractSet[int] = _EMPTY,
            provenance: Optional[str] = None) -> "VecAffine":
        iv = self.interval()
        if not iv.is_valid() or iv.lo <= 0.0:
            return self._invalid_result()
        alpha, zeta, delta = linearize_log(iv.lo, iv.hi)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def neg(self) -> "VecAffine":
        return VecAffine(self.ctx, -self.central, self.ids.copy(), -self.coeffs)

    def abs_(self, protect: AbstractSet[int] = _EMPTY) -> "VecAffine":
        iv = self.interval()
        if not iv.is_valid():
            return self._invalid_result()
        if iv.lo >= 0.0:
            return self
        if iv.hi <= 0.0:
            return self.neg()
        hi = max(-iv.lo, iv.hi)
        return VecAffine.from_center_and_symbol(
            self.ctx, hi / 2.0, add_ru(hi / 2.0, math.ulp(hi)), "abs"
        )

    def min_with(self, other) -> "VecAffine":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if not (a.is_valid() and b.is_valid()):
            return self._invalid_result()
        if a.hi <= b.lo:
            return self
        if b.hi <= a.lo:
            return other
        m = a.min_with(b)
        return VecAffine.from_center_and_symbol(
            self.ctx, m.midpoint(), add_ru(m.radius_ru(), math.ulp(m.midpoint())),
            "min",
        )

    def max_with(self, other) -> "VecAffine":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if not (a.is_valid() and b.is_valid()):
            return self._invalid_result()
        if a.lo >= b.hi:
            return self
        if b.lo >= a.hi:
            return other
        m = a.max_with(b)
        return VecAffine.from_center_and_symbol(
            self.ctx, m.midpoint(), add_ru(m.radius_ru(), math.ulp(m.midpoint())),
            "max",
        )

    def _invalid_result(self) -> "VecAffine":
        return VecAffine(self.ctx, math.nan,
                         np.zeros(self.ctx.k, dtype=np.int64),
                         np.zeros(self.ctx.k, dtype=np.float64))

    # -- comparisons ----------------------------------------------------------

    def compare_lt(self, other) -> bool:
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        definite: Optional[bool]
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi < b.lo:
            definite = True
        elif a.lo >= b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, self.central < other.central,
                                 self.ctx.decision_policy, "<", self.ctx.stats)

    def compare_le(self, other) -> bool:
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        definite: Optional[bool]
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi <= b.lo:
            definite = True
        elif a.lo > b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, self.central <= other.central,
                                 self.ctx.decision_policy, "<=", self.ctx.stats)

    # -- sugar ------------------------------------------------------------------

    def _coerce(self, x) -> "VecAffine":
        if isinstance(x, VecAffine):
            if x.ctx is not self.ctx:
                raise SoundnessError("mixing VecAffine from different contexts")
            return x
        if isinstance(x, (int, float)):
            return VecAffine.from_exact(self.ctx, float(x))
        raise TypeError(f"cannot coerce {type(x).__name__} to VecAffine")

    def __add__(self, other):
        return self.add(other)

    def __radd__(self, other):
        return self._coerce(other).add(self)

    def __sub__(self, other):
        return self.sub(other)

    def __rsub__(self, other):
        return self._coerce(other).sub(self)

    def __mul__(self, other):
        return self.mul(other)

    def __rmul__(self, other):
        return self._coerce(other).mul(self)

    def __truediv__(self, other):
        return self.div(other)

    def __rtruediv__(self, other):
        return self._coerce(other).div(self)

    def __neg__(self):
        return self.neg()

    def __lt__(self, other):
        return self.compare_lt(other)

    def __le__(self, other):
        return self.compare_le(other)

    def __gt__(self, other):
        return self._coerce(other).compare_lt(self)

    def __ge__(self, other):
        return self._coerce(other).compare_le(self)

"""Affine arithmetic core — the paper's AA library (Sections II-B, IV, V).

* :class:`AffineContext` — configuration (k, policies, precision) and the
  constructors for affine values.
* :class:`AffineForm` — bounded-k scalar affine form (sorted or
  direct-mapped placement; RP/OP/SP/MP fusion; priority support).
* :class:`VecAffine` — numpy-vectorized direct-mapped kernels (SIMD path).
* :class:`FullAffine` — unbounded full AA (yalaa-aff0 baseline).
* :class:`FixedAffine` — AF1-style fixed symbols (yalaa-aff1 baseline).
* :class:`CeresAffine` — Ceres-style compaction baseline.
* Accuracy metric: :func:`err_bits`, :func:`acc_bits` (eqs. (10)-(11)).
"""

from .accuracy import DOUBLE_MANTISSA_BITS, acc_bits, acc_bits_clamped, err_bits
from .ceres import CeresAffine
from .context import AAStats, AffineContext, Precision
from .explain import Explanation, SymbolShare, explain
from .fixed import FixedAffine
from .form import AffineForm
from .full import FullAffine
from .policies import FusionPolicy, PlacementPolicy
from .symbols import SymbolFactory
from .vectorized import VecAffine

__all__ = [
    "AAStats",
    "AffineContext",
    "AffineForm",
    "CeresAffine",
    "DOUBLE_MANTISSA_BITS",
    "FixedAffine",
    "FullAffine",
    "FusionPolicy",
    "PlacementPolicy",
    "Precision",
    "SymbolFactory",
    "VecAffine",
    "Explanation",
    "SymbolShare",
    "explain",
    "acc_bits",
    "acc_bits_clamped",
    "err_bits",
]

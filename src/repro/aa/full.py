"""Full affine arithmetic: unbounded number of error symbols.

This is the textbook AA of Section II-B — every operation creates a fresh
symbol, nothing is ever fused, so the arithmetic complexity of the original
program is squared.  It is the most accurate configuration and serves two
roles in the evaluation:

* the ``yalaa-aff0`` library baseline of Fig. 9, and
* the reference that the ``f64a-dspv-k`` (large-k) configuration matches.

Coefficients live in a dict keyed by symbol id; round-off tracking is the
same exact EFT scheme used by :class:`repro.aa.form.AffineForm`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..common import decide_comparison
from ..errors import SoundnessError
from ..fp import add_ru, div_rd, div_ru, mul_ru, sub_rd, sub_ru
from ..ia import Interval
from .context import AffineContext
from .form import _prod_err, _sum_err
from .linearize import linearize_exp, linearize_inv, linearize_log, linearize_sqrt

__all__ = ["FullAffine"]


class FullAffine:
    """An affine form with an unbounded symbol set (full AA)."""

    __slots__ = ("ctx", "central", "terms")

    def __init__(self, ctx: AffineContext, central: float,
                 terms: Dict[int, float]) -> None:
        self.ctx = ctx
        self.central = central
        self.terms = terms

    # -- construction -------------------------------------------------------

    @classmethod
    def from_exact(cls, ctx: AffineContext, value: float) -> "FullAffine":
        return cls(ctx, float(value), {})

    @classmethod
    def from_center_and_symbol(
        cls, ctx: AffineContext, value: float, magnitude: float,
        provenance: Optional[str] = None,
    ) -> "FullAffine":
        terms: Dict[int, float] = {}
        if magnitude != 0.0:
            terms[ctx.symbols.fresh(provenance)] = abs(magnitude)
        return cls(ctx, float(value), terms)

    # -- views ---------------------------------------------------------------

    def symbol_ids(self):
        return list(self.terms)

    def n_symbols(self) -> int:
        return len(self.terms)

    def central_float(self) -> float:
        return self.central

    def is_valid(self) -> bool:
        if math.isnan(self.central):
            return False
        return not any(math.isnan(c) for c in self.terms.values())

    def radius_ru(self) -> float:
        acc = 0.0
        for c in self.terms.values():
            acc = add_ru(acc, abs(c))
        return acc

    def interval(self) -> Interval:
        if not self.is_valid():
            return Interval.invalid()
        r = self.radius_ru()
        lo, hi = sub_rd(self.central, r), add_ru(self.central, r)
        if math.isnan(lo) or math.isnan(hi):
            return Interval.invalid()
        return Interval(lo, hi)

    def contains(self, x) -> bool:
        return self.interval().contains(x)

    def __repr__(self) -> str:
        return f"FullAffine({self.central:.17g}; {len(self.terms)} symbols)"

    # -- arithmetic ------------------------------------------------------------

    def _fresh(self, x: float, provenance: Optional[str]) -> None:
        if x != 0.0:
            self.terms[self.ctx.symbols.fresh(provenance)] = x

    def add(self, other, protect=frozenset(), provenance: Optional[str] = None) -> "FullAffine":
        other = self._coerce(other)
        x = 0.0
        central, e = _sum_err(self.central, other.central)
        x = add_ru(x, e)
        terms = dict(self.terms)
        for sid, cb in other.terms.items():
            ca = terms.get(sid)
            if ca is None:
                terms[sid] = cb
            else:
                s, e = _sum_err(ca, cb)
                x = add_ru(x, e)
                if s != 0.0:
                    terms[sid] = s
                else:
                    del terms[sid]
        out = FullAffine(self.ctx, central, terms)
        out._fresh(x, provenance)
        self.ctx.stats.n_add += 1
        return out

    def sub(self, other, protect=frozenset(), provenance: Optional[str] = None) -> "FullAffine":
        return self.add(self._coerce(other).neg(), protect, provenance)

    def mul(self, other, protect=frozenset(), provenance: Optional[str] = None) -> "FullAffine":
        other = self._coerce(other)
        x = 0.0
        a0, b0 = self.central, other.central
        central, e = _prod_err(a0, b0)
        x = add_ru(x, e)
        ra, rb = self.radius_ru(), other.radius_ru()
        if ra != 0.0 and rb != 0.0:
            x = add_ru(x, mul_ru(ra, rb))
        terms: Dict[int, float] = {}
        for sid, ca in self.terms.items():
            cb = other.terms.get(sid)
            if cb is None:
                p, e = _prod_err(b0, ca)
                x = add_ru(x, e)
                if p != 0.0:
                    terms[sid] = p
            else:
                p1, e1 = _prod_err(a0, cb)
                p2, e2 = _prod_err(b0, ca)
                s, e3 = _sum_err(p1, p2)
                x = add_ru(x, add_ru(e1, add_ru(e2, e3)))
                if s != 0.0:
                    terms[sid] = s
        for sid, cb in other.terms.items():
            if sid not in self.terms:
                p, e = _prod_err(a0, cb)
                x = add_ru(x, e)
                if p != 0.0:
                    terms[sid] = p
        out = FullAffine(self.ctx, central, terms)
        out._fresh(x, provenance)
        self.ctx.stats.n_mul += 1
        return out

    def _unary_linear(self, alpha: float, zeta: float, delta: float,
                      provenance: Optional[str]) -> "FullAffine":
        x = abs(delta)
        scaled, e = _prod_err(alpha, self.central)
        x = add_ru(x, e)
        central, e2 = _sum_err(scaled, zeta)
        x = add_ru(x, e2)
        terms: Dict[int, float] = {}
        for sid, c in self.terms.items():
            p, e = _prod_err(alpha, c)
            x = add_ru(x, e)
            if p != 0.0:
                terms[sid] = p
        out = FullAffine(self.ctx, central, terms)
        out._fresh(x, provenance)
        return out

    def div(self, other, protect=frozenset(), provenance: Optional[str] = None) -> "FullAffine":
        other = self._coerce(other)
        self.ctx.stats.n_div += 1
        iv = other.interval()
        if not iv.is_valid() or (iv.lo <= 0.0 <= iv.hi):
            return FullAffine(self.ctx, math.nan, {})
        if iv.is_point() and not other.terms:
            x = 0.0
            b = iv.lo
            central = self.central / b
            x = add_ru(x, sub_ru(div_ru(self.central, b), div_rd(self.central, b)))
            terms = {}
            for sid, c in self.terms.items():
                q = c / b
                x = add_ru(x, sub_ru(div_ru(c, b), div_rd(c, b)))
                if q != 0.0:
                    terms[sid] = q
            out = FullAffine(self.ctx, central, terms)
            out._fresh(x, provenance)
            return out
        alpha, zeta, delta = linearize_inv(iv.lo, iv.hi)
        inv = other._unary_linear(alpha, zeta, delta,
                                  provenance and provenance + ":inv")
        return self.mul(inv, protect, provenance)

    def sqrt(self, protect=frozenset(), provenance: Optional[str] = None) -> "FullAffine":
        self.ctx.stats.n_sqrt += 1
        iv = self.interval()
        if not iv.is_valid() or iv.hi < 0.0:
            return FullAffine(self.ctx, math.nan, {})
        alpha, zeta, delta = linearize_sqrt(max(iv.lo, 0.0), iv.hi)
        return self._unary_linear(alpha, zeta, delta, provenance)

    def exp(self, protect=frozenset(), provenance: Optional[str] = None) -> "FullAffine":
        iv = self.interval()
        if not iv.is_valid() or iv.hi > 709.0:
            return FullAffine(self.ctx, math.nan, {})
        alpha, zeta, delta = linearize_exp(iv.lo, iv.hi)
        return self._unary_linear(alpha, zeta, delta, provenance)

    def log(self, protect=frozenset(), provenance: Optional[str] = None) -> "FullAffine":
        iv = self.interval()
        if not iv.is_valid() or iv.lo <= 0.0:
            return FullAffine(self.ctx, math.nan, {})
        alpha, zeta, delta = linearize_log(iv.lo, iv.hi)
        return self._unary_linear(alpha, zeta, delta, provenance)

    def neg(self) -> "FullAffine":
        return FullAffine(self.ctx, -self.central,
                          {sid: -c for sid, c in self.terms.items()})

    def min_with(self, other) -> "FullAffine":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if a.hi <= b.lo:
            return self
        if b.hi <= a.lo:
            return other
        m = a.min_with(b)
        return FullAffine.from_center_and_symbol(
            self.ctx, m.midpoint(), add_ru(m.radius_ru(), math.ulp(m.midpoint())),
            "min",
        )

    def max_with(self, other) -> "FullAffine":
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        if a.lo >= b.hi:
            return self
        if b.lo >= a.hi:
            return other
        m = a.max_with(b)
        return FullAffine.from_center_and_symbol(
            self.ctx, m.midpoint(), add_ru(m.radius_ru(), math.ulp(m.midpoint())),
            "max",
        )

    def abs_(self) -> "FullAffine":
        iv = self.interval()
        if not iv.is_valid():
            return FullAffine(self.ctx, math.nan, {})
        if iv.lo >= 0.0:
            return self
        if iv.hi <= 0.0:
            return self.neg()
        hi = max(-iv.lo, iv.hi)
        return FullAffine.from_center_and_symbol(
            self.ctx, hi / 2.0, add_ru(hi / 2.0, math.ulp(hi)), "abs"
        )

    # -- comparisons -----------------------------------------------------------

    def compare_lt(self, other) -> bool:
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        definite: Optional[bool]
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi < b.lo:
            definite = True
        elif a.lo >= b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, self.central < other.central,
                                 self.ctx.decision_policy, "<", self.ctx.stats)

    def compare_le(self, other) -> bool:
        other = self._coerce(other)
        a, b = self.interval(), other.interval()
        definite: Optional[bool]
        if not (a.is_valid() and b.is_valid()):
            definite = None
        elif a.hi <= b.lo:
            definite = True
        elif a.lo > b.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, self.central <= other.central,
                                 self.ctx.decision_policy, "<=", self.ctx.stats)

    # -- sugar -------------------------------------------------------------------

    def _coerce(self, x) -> "FullAffine":
        if isinstance(x, FullAffine):
            if x.ctx is not self.ctx:
                raise SoundnessError("mixing FullAffine from different contexts")
            return x
        if isinstance(x, (int, float)):
            return FullAffine.from_exact(self.ctx, float(x))
        raise TypeError(f"cannot coerce {type(x).__name__} to FullAffine")

    def __add__(self, other):
        return self.add(other)

    def __radd__(self, other):
        return self._coerce(other).add(self)

    def __sub__(self, other):
        return self.sub(other)

    def __rsub__(self, other):
        return self._coerce(other).sub(self)

    def __mul__(self, other):
        return self.mul(other)

    def __rmul__(self, other):
        return self._coerce(other).mul(self)

    def __truediv__(self, other):
        return self.div(other)

    def __rtruediv__(self, other):
        return self._coerce(other).div(self)

    def __neg__(self):
        return self.neg()

    def __lt__(self, other):
        return self.compare_lt(other)

    def __le__(self, other):
        return self.compare_le(other)

    def __gt__(self, other):
        return self._coerce(other).compare_lt(self)

    def __ge__(self, other):
        return self._coerce(other).compare_le(self)

"""SafeGen reproduction: a compiler for sound floating-point computations
using affine arithmetic (Rivera, Franchetti & Püschel, CGO 2022).

The public API re-exports the pieces most users need:

* :class:`repro.SafeGen` / :class:`repro.CompilerConfig` — the compiler.
* :class:`repro.AffineForm` (bounded, policy-based) and the policies.
* :class:`repro.Interval` — the IA baseline.
* ``compile_c`` — one-call convenience: C source in, runnable sound
  function out.

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from ._version import __version__
from .errors import (
    AnalysisError,
    CompileError,
    ParseError,
    ReproError,
    SoundnessError,
    TypeCheckError,
    UnsupportedFeatureError,
)

__all__ = [
    "__version__",
    "ReproError",
    "ParseError",
    "TypeCheckError",
    "CompileError",
    "AnalysisError",
    "SoundnessError",
    "UnsupportedFeatureError",
]


def __getattr__(name: str):
    # Lazy re-exports so `import repro` stays cheap and avoids import cycles.
    if name in {"SafeGen", "CompilerConfig", "compile_c", "CompiledProgram",
                "BatchCompiler"}:
        from . import compiler

        return getattr(compiler, name)
    if name in {"CompileService", "BatchEngine", "CompileJob", "RunJob",
                "JobResult", "ServiceStats"}:
        from . import service

        return getattr(service, name)
    if name in {
        "AffineForm",
        "AffineContext",
        "FullAffine",
        "PlacementPolicy",
        "FusionPolicy",
    }:
        from . import aa

        return getattr(aa, name)
    if name in {"Interval", "IntervalDD"}:
        from . import ia

        return getattr(ia, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

"""Per-dimension sensitivity ranking for split selection.

One scalar probe evaluation of the program over the whole box, with
symbol provenance tracking on, attributes error-symbol mass back to the
named input parameters via :func:`repro.aa.explain` — the "symbolic over
named inputs" idea from rospoly/paf, realized on the existing substrate.
The probe is *advisory only*: it runs under the CENTRAL policy (so a
branchy program still yields a ranking instead of raising) and its
result never feeds a bound; the driver falls back to widest-relative-
dimension when the probe fails or attributes nothing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..aa import AffineContext
from ..aa.explain import explain
from ..common import DecisionPolicy
from ..errors import ReproError
from .box import Box
from .evaluate import build_row

__all__ = ["rank_dimensions", "split_scores"]


def _input_name(provenance: Optional[str]) -> Optional[str]:
    """The input parameter a symbol's origin names, if any.

    Accepts both the bare-context convention (``"input:<name>"``, what
    ``AffineContext.input`` defaults to) and the compiler's source-anchored
    origins (``"<src>:<line>:<col> input <name>"``).
    """
    if not provenance:
        return None
    if provenance.startswith("input:"):
        return provenance[len("input:"):]
    from ..obs.diag import parse_origin

    parsed = parse_origin(provenance)
    if parsed is not None and parsed[3].startswith("input "):
        return parsed[3][len("input "):]
    return None


def rank_dimensions(program, box: Box, *,
                    fixed: Optional[Dict[str, Any]] = None
                    ) -> Optional[Dict[str, float]]:
    """Normalized |coefficient| mass per box dimension, or ``None`` when
    the probe fails or no input symbol survives to the result."""
    cfg = program.config
    try:
        from ..compiler.runtime import Runtime

        ctx = AffineContext(
            k=cfg.k, placement=cfg.placement, fusion=cfg.fusion,
            precision=cfg.precision, vectorized=False,
            decision_policy=DecisionPolicy.CENTRAL, seed=cfg.seed,
            impl=cfg.impl, track_provenance=True)
        rt = Runtime(mode="aa", ctx=ctx)
        row = build_row(program, box, fixed or {})
        res = program(*row, runtime=rt)
        value = res.value
        if not hasattr(value, "coefficients"):
            return None
        shares = explain(value).shares
    except ReproError:
        return None
    mass: Dict[str, float] = {}
    for share in shares:
        name = _input_name(share.provenance)
        if name is not None and name in box.names:
            mass[name] = mass.get(name, 0.0) + abs(share.coefficient)
    total = sum(mass.values())
    if total <= 0.0:
        return None
    return {name: mass.get(name, 0.0) / total for name in box.names}


def split_scores(box: Box, sensitivity: Optional[Dict[str, float]],
                 root: Box) -> List[Tuple[float, str]]:
    """Splittable dimensions scored high-to-low.

    Score = relative width (vs the root box, so early splits don't starve
    naturally narrow dimensions) times sensitivity mass when available.
    Ties break on name order — the driver must stay deterministic.
    """
    widths = box.widths()
    root_widths = root.widths()
    scored = []
    for name in box.splittable_dims():
        rw = root_widths.get(name, 0.0)
        rel = widths[name] / rw if rw > 0.0 else 0.0
        score = rel
        if sensitivity is not None:
            score *= max(sensitivity.get(name, 0.0), 1e-12)
        scored.append((score, name))
    scored.sort(key=lambda t: (-t[0], t[1]))
    return scored

"""Axis-aligned input boxes: the unit of work for domain analysis.

A :class:`Box` names every range-valued dimension of a query domain, in a
fixed order (the compiled program's double-parameter order), so splitting,
padding and serialization are all deterministic.  Endpoint arithmetic uses
the directed-rounding helpers from :mod:`repro.fp` wherever an outward
error could otherwise creep in: widths round up, padding rounds outward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..common import ValueRange
from ..errors import DomainError
from ..fp import add_ru, sub_rd, sub_ru, ulp

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """An axis-aligned box: an ordered tuple of ``(name, lo, hi)`` dims."""

    dims: Tuple[Tuple[str, float, float], ...]

    def __post_init__(self) -> None:
        seen = set()
        for name, lo, hi in self.dims:
            if math.isnan(lo) or math.isnan(hi) or hi < lo:
                raise DomainError(f"invalid range for {name!r}: [{lo}, {hi}]")
            if not (math.isfinite(lo) and math.isfinite(hi)):
                raise DomainError(f"non-finite range for {name!r}")
            if name in seen:
                raise DomainError(f"duplicate dimension {name!r}")
            seen.add(name)
        if not self.dims:
            raise DomainError("box has no dimensions")

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, float, float]]) -> "Box":
        return cls(tuple((str(n), float(lo), float(hi)) for n, lo, hi in pairs))

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Sequence[float]],
                  order: Sequence[str] | None = None) -> "Box":
        """Build from ``{"x": [lo, hi], ...}``; ``order`` (e.g. the program's
        parameter order) fixes the dimension order, else insertion order."""
        names = list(order) if order is not None else list(mapping)
        pairs = []
        for name in names:
            if name not in mapping:
                raise DomainError(f"box is missing dimension {name!r}")
            rng = mapping[name]
            if isinstance(rng, (int, float)):
                rng = (rng, rng)
            if len(rng) != 2:
                raise DomainError(f"range for {name!r} must be [lo, hi]")
            pairs.append((name, float(rng[0]), float(rng[1])))
        extra = set(mapping) - set(names)
        if extra:
            raise DomainError(f"unknown box dimensions: {sorted(extra)}")
        return cls.from_pairs(pairs)

    def to_dict(self) -> Dict[str, List[float]]:
        return {name: [lo, hi] for name, lo, hi in self.dims}

    # -- geometry ---------------------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _, _ in self.dims)

    def range_of(self, name: str) -> Tuple[float, float]:
        for n, lo, hi in self.dims:
            if n == name:
                return lo, hi
        raise DomainError(f"no dimension {name!r}")

    def widths(self) -> Dict[str, float]:
        """Per-dimension width, rounded up (sound over-approximation)."""
        return {name: sub_ru(hi, lo) for name, lo, hi in self.dims}

    def midpoint(self) -> Dict[str, float]:
        out = {}
        for name, lo, hi in self.dims:
            mid = lo + (hi - lo) / 2.0
            if not math.isfinite(mid):
                mid = lo / 2.0 + hi / 2.0
            out[name] = mid
        return out

    def contains(self, other: "Box") -> bool:
        if other.names != self.names:
            return False
        return all(lo <= olo and ohi <= hi
                   for (_, lo, hi), (_, olo, ohi)
                   in zip(self.dims, other.dims))

    def volume_fraction(self, root: "Box") -> float:
        """This box's share of ``root``'s volume (point dims contribute a
        factor of 1; an ordinary float product — reporting only)."""
        frac = 1.0
        for (name, lo, hi), (rname, rlo, rhi) in zip(self.dims, root.dims):
            rw = rhi - rlo
            if rw > 0.0:
                frac *= (hi - lo) / rw
        return frac

    # -- refinement -------------------------------------------------------------

    def splittable_dims(self) -> List[str]:
        """Dimensions that can still be bisected: the midpoint must be
        strictly interior, so one-ulp-wide ranges are unsplittable."""
        out = []
        for name, lo, hi in self.dims:
            mid = self.midpoint()[name]
            if lo < mid < hi:
                out.append(name)
        return out

    def can_split(self) -> bool:
        return bool(self.splittable_dims())

    def split(self, name: str) -> Tuple["Box", "Box"]:
        """Bisect along ``name`` at the midpoint.  The two halves share the
        midpoint endpoint, so their union covers the parent exactly."""
        lo, hi = self.range_of(name)
        mid = self.midpoint()[name]
        if not (lo < mid < hi):
            raise DomainError(f"dimension {name!r} cannot be split further")
        left = tuple((n, l, mid if n == name else h)
                     for n, l, h in self.dims)
        right = tuple((n, mid if n == name else l, h)
                      for n, l, h in self.dims)
        return Box(left), Box(right)

    def padded(self, ulps: float) -> "Box":
        """Endpoints pushed outward by ``ulps`` units in the last place
        (matching the paper's per-input ulp uncertainty): the evaluated box
        encloses every point input the runtime would model inside it."""
        if ulps <= 0.0:
            return self
        pairs = []
        for name, lo, hi in self.dims:
            pad = ulps * max(ulp(lo), ulp(hi))
            pairs.append((name, sub_rd(lo, pad), add_ru(hi, pad)))
        return Box(tuple(pairs))

    def as_ranges(self) -> Dict[str, ValueRange]:
        return {name: ValueRange(lo, hi, name=name)
                for name, lo, hi in self.dims}

"""Branch-and-bound refinement driver over input boxes.

One compiled program, one root box, three queries:

* :meth:`BnBDriver.max_error` — a sound upper bound on the worst-case
  enclosure width over the domain, tightened by best-first subdivision,
  bracketed from below by sampled point evaluations.
* :meth:`BnBDriver.safe_box` — the largest verified sub-box (grown from a
  seed point by bisection on a scale ladder) whose whole-box evaluation
  certifies error < ε.
* :meth:`BnBDriver.unsafe_regions` — the sub-boxes whose bound exceeds ε,
  with undecided regions reported separately.

Every wave of subboxes goes through ``CompiledProgram.run_batch`` — one
compile per query (the compile cache's job), N subboxes per batch.  The
soundness split is strict: upper bounds come only from *decided*
whole-box evaluations (:mod:`repro.domain.evaluate`); sampled point
widths only ever feed the lower bound / witnesses; the sensitivity probe
(:mod:`repro.domain.sensitivity`) only picks split dimensions.

Upper bounds are inherited: a child leaf's bound is
``min(own decided width, parent bound)`` — sound because the parent's
certificate covers every subregion — which makes the global bound
monotone non-increasing along any split sequence, and therefore the
gap monotone non-increasing in the refinement budget (pops are
deterministic best-first, so a smaller budget's split set is a prefix
of a larger one's).
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, fields
from typing import Any, Dict, List, Optional, Tuple

from ..errors import DomainError
from ..obs.trace import current_tracer
from .box import Box
from .evaluate import BoxOutcome, check_analysis_program, evaluate_boxes, \
    sample_points
from .sensitivity import rank_dimensions, split_scores

__all__ = ["BnBDriver", "MaxErrorResult", "RefinementBudget",
           "SafeBoxResult", "UnsafeRegionsResult"]


@dataclass(frozen=True)
class RefinementBudget:
    """How much refinement a query may spend.

    ``max_boxes`` bounds the number of subbox evaluations (the unit the
    server admits and bills), ``deadline_s`` the wall clock, ``target_gap``
    stops ``max_error`` early once ub − lb is small enough, ``wave_size``
    is the batch width per refinement wave, and ``max_regions`` caps the
    region lists in results (counts are always exact).
    """

    max_boxes: int = 512
    deadline_s: Optional[float] = None
    target_gap: Optional[float] = None
    wave_size: int = 32
    max_regions: int = 64

    def __post_init__(self) -> None:
        if self.max_boxes < 1:
            raise DomainError("max_boxes must be at least 1")
        if self.wave_size < 2:
            raise DomainError("wave_size must be at least 2")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise DomainError("deadline_s must be positive")
        if self.target_gap is not None and self.target_gap < 0:
            raise DomainError("target_gap must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"max_boxes": self.max_boxes,
                               "wave_size": self.wave_size,
                               "max_regions": self.max_regions}
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        if self.target_gap is not None:
            out["target_gap"] = self.target_gap
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RefinementBudget":
        known = {f.name for f in fields(cls)}
        extra = set(d) - known
        if extra:
            raise DomainError(f"unknown budget fields: {sorted(extra)}")
        return cls(**d)


@dataclass
class QueryStats:
    """Refinement accounting, merged into ``analyze_*`` service counters."""

    boxes: int = 0
    waves: int = 0
    splits: int = 0
    undecided: int = 0
    samples: int = 0
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"boxes": self.boxes, "waves": self.waves,
                "splits": self.splits, "undecided": self.undecided,
                "samples": self.samples, "elapsed_s": self.elapsed_s}


def _num(x: float):
    """JSON-safe float: infinities become strings (json.dumps emits bare
    ``Infinity`` otherwise, which is not valid JSON for other parsers)."""
    if math.isinf(x):
        return "inf" if x > 0 else "-inf"
    if math.isnan(x):
        return "nan"
    return x


@dataclass
class MaxErrorResult:
    upper_bound: float
    lower_bound: float
    complete: bool
    undecided: int
    undecided_regions: List[Box]
    stats: QueryStats

    @property
    def gap(self) -> float:
        if math.isinf(self.upper_bound) or math.isinf(self.lower_bound):
            return math.inf
        return self.upper_bound - self.lower_bound

    def to_dict(self) -> Dict[str, Any]:
        return {"query": "max_error",
                "upper_bound": _num(self.upper_bound),
                "lower_bound": _num(self.lower_bound),
                "gap": _num(self.gap),
                "complete": self.complete,
                "undecided": self.undecided,
                "undecided_regions": [b.to_dict()
                                      for b in self.undecided_regions],
                "stats": self.stats.to_dict()}


@dataclass
class SafeBoxResult:
    found: bool
    eps: float
    box: Optional[Box]
    scale: float
    width: float
    undecided: int
    stats: QueryStats

    def to_dict(self) -> Dict[str, Any]:
        return {"query": "safe_box", "found": self.found, "eps": self.eps,
                "box": self.box.to_dict() if self.box is not None else None,
                "scale": self.scale, "width": _num(self.width),
                "undecided": self.undecided,
                "stats": self.stats.to_dict()}


@dataclass
class UnsafeRegionsResult:
    eps: float
    unsafe: List[Tuple[Box, float]]
    undecided_regions: List[Box]
    n_safe: int
    n_unsafe: int
    n_undecided: int
    safe_fraction: float
    witnessed: int
    stats: QueryStats

    @property
    def undecided(self) -> int:
        return self.n_undecided

    def to_dict(self) -> Dict[str, Any]:
        return {"query": "unsafe_regions", "eps": self.eps,
                "unsafe": [{"box": b.to_dict(), "width": _num(w)}
                           for b, w in self.unsafe],
                "undecided_regions": [b.to_dict()
                                      for b in self.undecided_regions],
                "n_safe": self.n_safe, "n_unsafe": self.n_unsafe,
                "n_undecided": self.n_undecided, "undecided": self.n_undecided,
                "safe_fraction": self.safe_fraction,
                "witnessed": self.witnessed,
                "stats": self.stats.to_dict()}


@dataclass
class _Leaf:
    box: Box
    ub: float       # inherited-min sound upper bound (inf when undecided
    decided: bool   # and no decided ancestor exists)
    width: float    # own decided width (inf when undecided)


class BnBDriver:
    """Work-queue subdivision driver for one (program, root box) query."""

    def __init__(self, program, box: Box, *,
                 fixed: Optional[Dict[str, Any]] = None,
                 budget: Optional[RefinementBudget] = None,
                 pad_ulps: float = 1.0) -> None:
        check_analysis_program(program)
        self.program = program
        self.root = box
        self.fixed = dict(fixed or {})
        self.budget = budget or RefinementBudget()
        self.pad_ulps = float(pad_ulps)
        self._sensitivity = None
        self._sensitivity_done = False

    # -- shared plumbing --------------------------------------------------------

    def _deadline(self) -> Optional[float]:
        if self.budget.deadline_s is None:
            return None
        return time.monotonic() + self.budget.deadline_s

    @staticmethod
    def _expired(deadline: Optional[float]) -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def _sense(self) -> Optional[Dict[str, float]]:
        """Sensitivity ranking over the root box, computed once per query
        driver (advisory: never feeds a bound)."""
        if not self._sensitivity_done:
            self._sensitivity = rank_dimensions(
                self.program, self.root, fixed=self.fixed)
            self._sensitivity_done = True
        return self._sensitivity

    def _split_dim(self, box: Box) -> Optional[str]:
        scored = split_scores(box, self._sense(), self.root)
        return scored[0][1] if scored else None

    def _evaluate(self, boxes: List[Box], stats: QueryStats
                  ) -> List[BoxOutcome]:
        outcomes = evaluate_boxes(self.program, boxes, fixed=self.fixed,
                                  pad_ulps=self.pad_ulps)
        stats.boxes += len(boxes)
        stats.undecided += sum(1 for o in outcomes if not o.decided)
        return outcomes

    def _sample(self, points: List[Dict[str, float]], stats: QueryStats
                ) -> List[Optional[float]]:
        widths = sample_points(self.program, points, fixed=self.fixed)
        stats.samples += len(points)
        return widths

    # -- max_error --------------------------------------------------------------

    def max_error(self) -> MaxErrorResult:
        """Sound upper bound on worst-case enclosure width over the root
        box, refined best-first until the budget or target gap is hit."""
        t0 = time.perf_counter()
        stats = QueryStats()
        deadline = self._deadline()
        bud = self.budget

        [root_out] = self._evaluate([self.root], stats)
        root_leaf = _Leaf(box=self.root,
                          ub=root_out.width if root_out.decided else math.inf,
                          decided=root_out.decided, width=root_out.width)
        lower = -math.inf
        for w in self._sample([self.root.midpoint()], stats):
            if w is not None:
                lower = max(lower, w)

        heap: List[Tuple[float, int, _Leaf]] = []
        seq = 0
        final: List[_Leaf] = []

        def push(leaf: _Leaf) -> None:
            nonlocal seq
            if leaf.box.can_split():
                heapq.heappush(heap, (-leaf.ub, seq, leaf))
                seq += 1
            else:
                final.append(leaf)

        push(root_leaf)

        def global_ub() -> float:
            best = max((l.ub for l in final), default=-math.inf)
            if heap:
                best = max(best, -heap[0][0])
            return best if best > -math.inf else root_leaf.ub

        def gap_met() -> bool:
            if bud.target_gap is None:
                return False
            ub, lb = global_ub(), lower
            return (math.isfinite(ub) and math.isfinite(lb)
                    and ub - lb <= bud.target_gap)

        wave = 0
        while (heap and stats.boxes + 2 <= bud.max_boxes
               and not self._expired(deadline) and not gap_met()):
            n_parents = min(bud.wave_size // 2, len(heap),
                            (bud.max_boxes - stats.boxes) // 2)
            parents = [heapq.heappop(heap)[2] for _ in range(n_parents)]
            children: List[Tuple[Box, _Leaf]] = []
            for parent in parents:
                dim = self._split_dim(parent.box)
                if dim is None:
                    final.append(parent)
                    continue
                stats.splits += 1
                for half in parent.box.split(dim):
                    children.append((half, parent))
            if not children:
                break
            boxes = [b for b, _ in children]
            wave += 1
            stats.waves += 1
            with current_tracer().span("domain:wave") as sp:
                outcomes = self._evaluate(boxes, stats)
                samples = self._sample([b.midpoint() for b in boxes], stats)
                for (box, parent), out, sw in zip(children, outcomes,
                                                  samples):
                    ub = min(out.width if out.decided else math.inf,
                             parent.ub)
                    push(_Leaf(box=box, ub=ub, decided=out.decided,
                               width=out.width))
                    if sw is not None:
                        lower = max(lower, sw)
                if sp.recording:
                    sp.set(wave=wave, boxes=len(boxes), ub=global_ub(),
                           lb=lower if math.isfinite(lower) else None)

        leaves = final + [entry[2] for entry in heap]
        undecided_boxes = [l.box for l in leaves if not l.decided]
        stats.elapsed_s = time.perf_counter() - t0
        return MaxErrorResult(
            upper_bound=global_ub(),
            lower_bound=lower,
            complete=not heap or gap_met(),
            undecided=len(undecided_boxes),
            undecided_regions=undecided_boxes[:bud.max_regions],
            stats=stats)

    # -- safe_box ---------------------------------------------------------------

    def _scaled_box(self, seed: Dict[str, float], t: float) -> Box:
        """The root box shrunk toward ``seed`` by factor ``t`` per dim."""
        if t >= 1.0:
            return self.root
        if t <= 0.0:
            return Box(tuple((name, seed[name], seed[name])
                             for name in self.root.names))
        pairs = []
        for name, lo, hi in self.root.dims:
            s = seed[name]
            plo = s + t * (lo - s)
            phi = s + t * (hi - s)
            if plo > phi:  # directed-rounding asymmetry at tiny t
                plo = phi = s
            pairs.append((name, max(lo, plo), min(hi, phi)))
        return Box(tuple(pairs))

    def safe_box(self, eps: float,
                 seed: Optional[Dict[str, float]] = None) -> SafeBoxResult:
        """Largest verified sub-box with error < ``eps``, grown from
        ``seed`` (default: root midpoint) by bisection on the scale
        factor.  The returned box's certificate is one dedicated
        whole-box evaluation — independent of the search that found it.
        """
        if not (eps > 0.0 and math.isfinite(eps)):
            raise DomainError("eps must be positive and finite")
        t0 = time.perf_counter()
        stats = QueryStats()
        deadline = self._deadline()
        bud = self.budget
        seed = dict(seed) if seed is not None else self.root.midpoint()
        missing = set(self.root.names) - set(seed)
        if missing:
            raise DomainError(f"seed is missing dimensions {sorted(missing)}")
        for name in self.root.names:
            lo, hi = self.root.range_of(name)
            if not (lo <= seed[name] <= hi):
                raise DomainError(f"seed is outside the box on {name!r}")

        def safe(out: BoxOutcome) -> bool:
            return out.decided and out.width < eps

        # First wave: the whole box (t=1) and the seed point (t=0).  If the
        # whole box verifies we are done; if even the seed point does not,
        # there is nothing to grow.
        [whole, point] = self._evaluate(
            [self._scaled_box(seed, 1.0), self._scaled_box(seed, 0.0)],
            stats)
        stats.waves += 1
        best_t = None
        if safe(whole):
            best_t = 1.0
        elif safe(point):
            best_t = 0.0
            t_lo, t_hi = 0.0, 1.0
            # Grow by bisection on the scale factor with batched ladders.
            # While no safe positive scale is known, probe geometrically
            # down from t_hi (a chaotic kernel's safe scale can be many
            # orders of magnitude below the box); once a bracket exists,
            # refine it with evenly spaced scales.  Every ladder is one
            # run_batch wave.
            while (stats.boxes + 2 <= bud.max_boxes
                   and not self._expired(deadline)
                   and (t_lo == 0.0 or t_hi - t_lo > 0.02 * t_hi)):
                n = max(2, min(bud.wave_size,
                               bud.max_boxes - stats.boxes - 1))
                if t_lo == 0.0:
                    ts = [t_hi * 0.5 ** (i + 1) for i in range(n)]
                else:
                    ts = [t_lo + (t_hi - t_lo) * (i + 1) / (n + 1)
                          for i in range(n)]
                outs = self._evaluate([self._scaled_box(seed, t)
                                       for t in ts], stats)
                stats.waves += 1
                new_lo, new_hi = t_lo, t_hi
                for t, out in zip(ts, outs):
                    if safe(out):
                        if t > new_lo:
                            new_lo = best_t = t
                    elif t < new_hi:
                        new_hi = t
                if new_lo == t_lo and new_hi == t_hi:
                    break  # no scale in the ladder changed the bracket
                t_lo, t_hi = new_lo, min(new_hi, t_hi)

        if best_t is None:
            stats.elapsed_s = time.perf_counter() - t0
            return SafeBoxResult(found=False, eps=eps, box=None, scale=0.0,
                                 width=math.inf, undecided=stats.undecided,
                                 stats=stats)

        # Independent verification: one dedicated evaluation of exactly the
        # candidate box.  This is the certificate the result stands on.
        candidate = self._scaled_box(seed, best_t)
        [verify] = self._evaluate([candidate], stats)
        stats.elapsed_s = time.perf_counter() - t0
        if not safe(verify):  # pragma: no cover - defense in depth
            return SafeBoxResult(found=False, eps=eps, box=None, scale=0.0,
                                 width=math.inf, undecided=stats.undecided,
                                 stats=stats)
        return SafeBoxResult(found=True, eps=eps, box=candidate,
                             scale=best_t, width=verify.width,
                             undecided=stats.undecided, stats=stats)

    # -- unsafe_regions ---------------------------------------------------------

    def unsafe_regions(self, eps: float) -> UnsafeRegionsResult:
        """Partition the root box into verified-safe, bound-exceeds-ε and
        undecided leaves, refining the non-safe ones first."""
        if not (eps > 0.0 and math.isfinite(eps)):
            raise DomainError("eps must be positive and finite")
        t0 = time.perf_counter()
        stats = QueryStats()
        deadline = self._deadline()
        bud = self.budget

        heap: List[Tuple[float, int, _Leaf]] = []
        seq = 0
        settled: List[_Leaf] = []

        def push(leaf: _Leaf) -> None:
            nonlocal seq
            needs_work = not leaf.decided or leaf.width >= eps
            if needs_work and leaf.box.can_split():
                heapq.heappush(heap, (-leaf.ub, seq, leaf))
                seq += 1
            else:
                settled.append(leaf)

        [root_out] = self._evaluate([self.root], stats)
        push(_Leaf(box=self.root,
                   ub=root_out.width if root_out.decided else math.inf,
                   decided=root_out.decided, width=root_out.width))

        while (heap and stats.boxes + 2 <= bud.max_boxes
               and not self._expired(deadline)):
            n_parents = min(bud.wave_size // 2, len(heap),
                            (bud.max_boxes - stats.boxes) // 2)
            parents = [heapq.heappop(heap)[2] for _ in range(n_parents)]
            children: List[Tuple[Box, _Leaf]] = []
            for parent in parents:
                dim = self._split_dim(parent.box)
                if dim is None:
                    settled.append(parent)
                    continue
                stats.splits += 1
                for half in parent.box.split(dim):
                    children.append((half, parent))
            if not children:
                break
            stats.waves += 1
            with current_tracer().span("domain:wave") as sp:
                outcomes = self._evaluate([b for b, _ in children], stats)
                for (box, parent), out in zip(children, outcomes):
                    ub = min(out.width if out.decided else math.inf,
                             parent.ub)
                    push(_Leaf(box=box, ub=ub, decided=out.decided,
                               width=out.width))
                if sp.recording:
                    sp.set(wave=stats.waves, boxes=len(children),
                           pending=len(heap))

        leaves = settled + [entry[2] for entry in heap]
        safe_leaves = [l for l in leaves if l.decided and l.width < eps]
        unsafe_leaves = [l for l in leaves if l.decided and l.width >= eps]
        undecided_leaves = [l for l in leaves if not l.decided]
        unsafe_leaves.sort(key=lambda l: -l.width)

        # Witness sampling: an unsafe region whose midpoint *point*
        # evaluation already exceeds eps is genuinely bad, not just
        # over-approximated.
        witnessed = 0
        if unsafe_leaves:
            probe = unsafe_leaves[:bud.max_regions]
            widths = self._sample([l.box.midpoint() for l in probe], stats)
            witnessed = sum(1 for w in widths if w is not None and w > eps)

        safe_fraction = sum(l.box.volume_fraction(self.root)
                            for l in safe_leaves)
        stats.elapsed_s = time.perf_counter() - t0
        return UnsafeRegionsResult(
            eps=eps,
            unsafe=[(l.box, l.width)
                    for l in unsafe_leaves[:bud.max_regions]],
            undecided_regions=[l.box for l in
                               undecided_leaves[:bud.max_regions]],
            n_safe=len(safe_leaves), n_unsafe=len(unsafe_leaves),
            n_undecided=len(undecided_leaves),
            safe_fraction=min(safe_fraction, 1.0),
            witnessed=witnessed, stats=stats)

"""Public entry points for domain analysis queries.

``analysis_config`` normalizes a compiler configuration into the *analysis
profile* — STRICT decisions, vectorized AA — rejecting configurations
that cannot yield per-row sound verdicts.  The normalization happens
before the cache key is computed everywhere a query is issued (direct
calls here, ``AnalyzeJob.resolved_config`` in the service, and hence the
dispatcher and router), so one query compiles exactly once and the
router's ring gives it the same shard affinity as the program's other
traffic.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from ..common import DecisionPolicy
from ..errors import DomainError
from .box import Box
from .driver import BnBDriver, MaxErrorResult, RefinementBudget, \
    SafeBoxResult, UnsafeRegionsResult

__all__ = ["analysis_config", "box_for_program", "compile_for_analysis",
           "max_error", "safe_box", "unsafe_regions"]


def analysis_config(config):
    """The analysis profile of ``config``: STRICT + vectorized, same
    numerics otherwise.  Raises :class:`DomainError` for configurations
    the batched engine cannot certify row by row."""
    from ..aa.context import Precision
    from ..aa.policies import FusionPolicy
    from ..batchrt import numpy_available

    if config.mode != "aa":
        raise DomainError(
            f"domain analysis requires mode='aa', got {config.mode!r}")
    if config.impl != "auto":
        raise DomainError(
            f"domain analysis requires impl='auto', got {config.impl!r}")
    if config.precision is not Precision.F64:
        raise DomainError("domain analysis requires f64 precision")
    if config.fusion is FusionPolicy.RANDOM:
        raise DomainError(
            "domain analysis excludes the RANDOM fusion policy (rows "
            "would couple through the shared RNG)")
    if not numpy_available():
        raise DomainError(
            "domain analysis needs numpy (the repro[vector] extra)")
    return replace(config, decision_policy=DecisionPolicy.STRICT,
                   vectorize=True)


def compile_for_analysis(source: str, config=None, k: int = 16, *,
                         entry=None, service=None):
    """Compile ``source`` under the analysis profile — through ``service``
    (and its cache) when given, directly otherwise.  ``config`` may be a
    paper-style string or a :class:`CompilerConfig`, as in ``compile_c``."""
    from ..compiler.config import CompilerConfig

    if config is None:
        config = CompilerConfig(k=k)
    elif isinstance(config, str):
        config = CompilerConfig.from_string(config, k=k)
    cfg = analysis_config(config)
    if service is not None:
        return service.compile(source, cfg, entry=entry)
    from ..compiler.driver import compile_c

    return compile_c(source, config=cfg, entry=entry)


def box_for_program(program, mapping: Dict[str, Any]) -> Box:
    """A :class:`Box` over ``mapping``'s ranged dimensions, ordered by the
    program's double parameters (so rows and splits are deterministic)."""
    from ..compiler import cast as A

    func = program.unit.func(program.entry)
    doubles = [p.name for p in func.params
               if not (isinstance(p.type, A.CType) and p.type.is_integer())]
    ranged = {n: v for n, v in mapping.items() if n in doubles}
    unknown = set(mapping) - {p.name for p in func.params}
    if unknown:
        raise DomainError(f"unknown parameters in box: {sorted(unknown)}")
    ints = sorted(set(mapping) - set(doubles) - unknown)
    if ints:
        raise DomainError(
            f"integer parameters cannot be ranged over: {ints}; "
            f"pin them with 'fixed'")
    if not ranged:
        raise DomainError("box has no ranged double parameter")
    order = [n for n in doubles if n in ranged]
    return Box.from_dict(ranged, order=order)


def _driver(program, box, fixed, budget, pad_ulps) -> BnBDriver:
    if isinstance(box, dict):
        box = box_for_program(program, box)
    if isinstance(budget, dict):
        budget = RefinementBudget.from_dict(budget)
    return BnBDriver(program, box, fixed=fixed, budget=budget,
                     pad_ulps=pad_ulps)


def max_error(program, box, *, fixed: Optional[Dict[str, Any]] = None,
              budget: Optional[RefinementBudget] = None,
              pad_ulps: float = 1.0) -> MaxErrorResult:
    """Sound upper bound on worst-case enclosure width over ``box``."""
    return _driver(program, box, fixed, budget, pad_ulps).max_error()


def safe_box(program, box, eps: float, *,
             seed: Optional[Dict[str, float]] = None,
             fixed: Optional[Dict[str, Any]] = None,
             budget: Optional[RefinementBudget] = None,
             pad_ulps: float = 1.0) -> SafeBoxResult:
    """Largest verified sub-box of ``box`` with error < ``eps``."""
    return _driver(program, box, fixed, budget, pad_ulps).safe_box(
        eps, seed=seed)


def unsafe_regions(program, box, eps: float, *,
                   fixed: Optional[Dict[str, Any]] = None,
                   budget: Optional[RefinementBudget] = None,
                   pad_ulps: float = 1.0) -> UnsafeRegionsResult:
    """Sub-boxes of ``box`` whose bound exceeds ``eps`` (undecided
    regions reported separately)."""
    return _driver(program, box, fixed, budget, pad_ulps).unsafe_regions(eps)

"""Sound cohort evaluation of subboxes through the batch engine.

The bridge between :class:`~repro.domain.box.Box` and
``CompiledProgram.run_batch``: N subboxes become N rows of
:class:`~repro.common.ValueRange` arguments, one batched evaluation
returns N enclosures, and each row is classified *decided* or
*undecided*.

Soundness contract (the satellite-1 fix lives here): a row counts as
decided **only** when the batch engine evaluated it on the vectorized
path (``ok`` and not ``fallback``).  Scalar-fallback rows come from
ambiguous cohort divergence — the control flow could not be certified
over the whole subbox — so even when the scalar run produced an
enclosure it does not cover every point of the box; treating it as
verified-safe would be unsound.  The engine therefore requires the
STRICT decision policy: under CENTRAL, ambiguous rows are silently
decided on central values with no per-row attribution, which would make
every row look decided.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from ..common import DecisionPolicy
from ..errors import DomainError
from ..fp import sub_ru
from .box import Box

__all__ = ["BoxOutcome", "check_analysis_program", "evaluate_boxes",
           "sample_points"]


@dataclass(frozen=True)
class BoxOutcome:
    """One subbox's sound verdict.

    ``decided`` means the vectorized engine certified the enclosure over
    the whole (padded) box; only then are ``lo``/``hi``/``width``
    meaningful as sound bounds.  ``fallback`` rows and failed rows are
    undecided — ``width`` is ``inf`` so they can never verify as safe.
    """

    box: Box
    lo: float
    hi: float
    width: float
    decided: bool
    fallback: bool = False
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"box": self.box.to_dict(),
                               "decided": self.decided}
        if self.decided:
            out.update(lo=self.lo, hi=self.hi, width=self.width)
        if self.fallback:
            out["fallback"] = True
        if self.error is not None:
            out["error"] = self.error
        return out


def _program_params(program):
    from ..compiler import cast as A

    func = program.unit.func(program.entry)
    ints, doubles = [], []
    for p in func.params:
        if isinstance(p.type, A.CType) and p.type.is_integer():
            ints.append(p.name)
        else:
            doubles.append(p.name)
    return func.params, ints, doubles


def check_analysis_program(program) -> None:
    """Reject programs whose configuration cannot yield per-row sound
    verdicts (see module docstring)."""
    from ..batchrt import batchable_config

    cfg = program.config
    if cfg.decision_policy is not DecisionPolicy.STRICT:
        raise DomainError(
            "domain analysis requires decision_policy=STRICT: under "
            "CENTRAL, ambiguous branches are decided unsoundly with no "
            "per-row record")
    if not batchable_config(cfg):
        raise DomainError(
            "domain analysis requires a batchable configuration "
            "(mode=aa, vectorize, impl=auto, f64, non-random fusion, "
            "numpy available)")


def build_row(program, box: Box, fixed: Dict[str, Any]) -> List[Any]:
    """One ``run_batch`` row for ``box``: ranges for box dimensions,
    ``fixed`` values elsewhere, in program parameter order."""
    params, ints, _doubles = _program_params(program)
    ranges = box.as_ranges()
    row: List[Any] = []
    for p in params:
        if p.name in ranges:
            if p.name in ints:
                raise DomainError(
                    f"integer parameter {p.name!r} cannot be a box dimension")
            row.append(ranges[p.name])
        elif p.name in fixed:
            v = fixed[p.name]
            row.append(int(v) if p.name in ints else v)
        else:
            raise DomainError(
                f"parameter {p.name!r} is neither a box dimension nor fixed")
    return row


def evaluate_boxes(program, boxes: Sequence[Box], *,
                   fixed: Optional[Dict[str, Any]] = None,
                   pad_ulps: float = 1.0) -> List[BoxOutcome]:
    """Evaluate every box in one batched run and classify each row.

    Boxes are padded outward by ``pad_ulps`` before evaluation so the
    certificate also covers point inputs carrying the runtime's default
    ulp uncertainty at the box boundary.
    """
    check_analysis_program(program)
    fixed = fixed or {}
    padded = [b.padded(pad_ulps) for b in boxes]
    rows = [build_row(program, b, fixed) for b in padded]
    result = program.run_batch(rows)
    by_index = {r.index: r for r in result.rows}
    outcomes: List[BoxOutcome] = []
    for i, box in enumerate(boxes):
        r = by_index.get(i)
        if r is None or not r.ok or r.fallback:
            outcomes.append(BoxOutcome(
                box=box, lo=math.nan, hi=math.nan, width=math.inf,
                decided=False, fallback=bool(r is not None and r.fallback),
                error=None if r is None else r.error))
            continue
        if r.interval is None:
            raise DomainError(
                "program does not return a float enclosure; domain "
                "queries need a scalar double result")
        lo, hi = r.interval
        if math.isnan(lo) or math.isnan(hi):
            # A decided but invalid enclosure (domain violation absorbed
            # into NaN): sound, but infinitely wide — never safe.
            outcomes.append(BoxOutcome(box=box, lo=lo, hi=hi,
                                       width=math.inf, decided=True))
        else:
            outcomes.append(BoxOutcome(box=box, lo=lo, hi=hi,
                                       width=sub_ru(hi, lo), decided=True))
    return outcomes


def sample_points(program, points: Sequence[Dict[str, float]], *,
                  fixed: Optional[Dict[str, Any]] = None,
                  uncertainty_ulps: float = 1.0) -> List[Optional[float]]:
    """Enclosure widths of point evaluations (the lower-bound witnesses).

    Each point is an ordinary ulp-uncertain input run; any point the true
    semantics can evaluate gives a width that every sound bound over a
    containing box must dominate.  Failed points yield ``None``.
    """
    fixed = fixed or {}
    params, ints, _doubles = _program_params(program)
    rows = []
    for pt in points:
        row: List[Any] = []
        for p in params:
            if p.name in pt:
                row.append(float(pt[p.name]))
            elif p.name in fixed:
                v = fixed[p.name]
                row.append(int(v) if p.name in ints else v)
            else:
                raise DomainError(
                    f"parameter {p.name!r} missing from sample point")
        rows.append(row)
    result = program.run_batch(rows, uncertainty_ulps=uncertainty_ulps)
    widths: List[Optional[float]] = [None] * len(rows)
    for r in result.rows:
        if r.ok and r.interval is not None:
            lo, hi = r.interval
            if not (math.isnan(lo) or math.isnan(hi)):
                widths[r.index] = sub_ru(hi, lo)
    return widths

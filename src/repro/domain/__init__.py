"""Domain analysis: branch-and-bound input-space queries.

The inverse of the usual workload — instead of "how wrong is this
input", this subsystem answers "which inputs are safe": it subdivides an
input :class:`Box`, evaluates cohorts of subboxes through the batched
execution engine (one compile per query via the compile cache), and
maintains sound bounds under a configurable refinement budget.

Entry points: :func:`max_error`, :func:`safe_box`,
:func:`unsafe_regions` (or :class:`BnBDriver` directly); the same
queries are served as the ``analyze`` op by the daemon, the router
fleet, and ``repro analyze`` on the CLI.
"""

from .box import Box
from .driver import (
    BnBDriver,
    MaxErrorResult,
    RefinementBudget,
    SafeBoxResult,
    UnsafeRegionsResult,
)
from .evaluate import BoxOutcome, evaluate_boxes, sample_points
from .queries import (
    analysis_config,
    box_for_program,
    compile_for_analysis,
    max_error,
    safe_box,
    unsafe_regions,
)
from .sensitivity import rank_dimensions

__all__ = [
    "BnBDriver",
    "Box",
    "BoxOutcome",
    "MaxErrorResult",
    "RefinementBudget",
    "SafeBoxResult",
    "UnsafeRegionsResult",
    "analysis_config",
    "box_for_program",
    "compile_for_analysis",
    "evaluate_boxes",
    "max_error",
    "rank_dimensions",
    "safe_box",
    "sample_points",
    "unsafe_regions",
]

"""Sound interval arithmetic with double endpoints (the IGen-f64 baseline).

An :class:`Interval` ``[lo, hi]`` is a sound enclosure: every operation
returns an interval guaranteed to contain the exact real result for any
choice of reals inside the operand intervals (Section II-A, eq. (1) of the
paper).  Directed rounding comes from :mod:`repro.fp.rounding`.

NaN conventions follow Section IV-A: an interval that has seen NaN becomes
*invalid* (``is_valid() == False``) and absorbs everything.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Union

from ..common import DecisionPolicy, decide_comparison
from ..errors import SoundnessError
from ..fp import (
    add_rd,
    add_ru,
    div_rd,
    div_ru,
    mul_rd,
    mul_ru,
    next_down,
    next_up,
    sqrt_rd,
    sqrt_ru,
    sub_rd,
    sub_ru,
    ulp,
)

__all__ = ["Interval"]

Number = Union[int, float]


class Interval:
    """A closed interval over the doubles, ``lo <= hi``.

    Instances are immutable; all arithmetic returns fresh intervals.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float) -> None:
        if math.isnan(lo) or math.isnan(hi):
            lo = hi = math.nan
        elif hi < lo:
            raise SoundnessError(f"interval endpoints out of order: [{lo}, {hi}]")
        object.__setattr__(self, "lo", float(lo))
        object.__setattr__(self, "hi", float(hi))

    def __setattr__(self, name, value):
        raise AttributeError("Interval is immutable")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def point(x: float) -> "Interval":
        """The degenerate interval ``[x, x]`` (x is taken to be exact)."""
        return Interval(x, x)

    @staticmethod
    def from_constant(x: float, exact: bool = False) -> "Interval":
        """Enclosure for a source-program constant.

        Following Section IV-B, a constant that may not be exactly
        representable is widened by one ulp in each direction; constants
        that are exact (integers, and values flagged ``exact``) stay points.
        """
        if exact or not math.isfinite(x) or x == int(x):
            return Interval.point(x)
        u = ulp(x)
        return Interval(sub_rd(x, u), add_ru(x, u))

    @staticmethod
    def with_radius(center: float, radius: float) -> "Interval":
        if radius < 0:
            raise ValueError("radius must be nonnegative")
        return Interval(sub_rd(center, radius), add_ru(center, radius))

    @staticmethod
    def entire() -> "Interval":
        return Interval(-math.inf, math.inf)

    @staticmethod
    def invalid() -> "Interval":
        """The NaN-absorbing invalid interval."""
        return Interval(math.nan, math.nan)

    @staticmethod
    def hull_of(items: Iterable["Interval"]) -> "Interval":
        lo, hi = math.inf, -math.inf
        for it in items:
            if not it.is_valid():
                return Interval.invalid()
            lo = min(lo, it.lo)
            hi = max(hi, it.hi)
        if lo > hi:
            raise ValueError("hull_of needs at least one interval")
        return Interval(lo, hi)

    # -- predicates ----------------------------------------------------------

    def is_valid(self) -> bool:
        return not math.isnan(self.lo)

    def is_point(self) -> bool:
        return self.lo == self.hi

    def is_finite(self) -> bool:
        return math.isfinite(self.lo) and math.isfinite(self.hi)

    def contains(self, x: Union[Number, Fraction]) -> bool:
        """Whether the *exact* value ``x`` lies inside (invalid contains all)."""
        if not self.is_valid():
            return True
        if isinstance(x, Fraction):
            lo = Fraction(self.lo) if math.isfinite(self.lo) else None
            hi = Fraction(self.hi) if math.isfinite(self.hi) else None
            return (lo is None or lo <= x) and (hi is None or x <= hi)
        if math.isnan(x):
            return False
        return self.lo <= x <= self.hi

    def encloses(self, other: "Interval") -> bool:
        if not self.is_valid():
            return True
        if not other.is_valid():
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    # -- measures ------------------------------------------------------------

    def midpoint(self) -> float:
        if not self.is_valid():
            return math.nan
        if self.lo == -math.inf and self.hi == math.inf:
            return 0.0
        m = self.lo + (self.hi - self.lo) / 2.0
        if math.isfinite(m):
            return m
        return self.lo / 2.0 + self.hi / 2.0

    def radius_ru(self) -> float:
        """Upper bound on the half-width around :meth:`midpoint`."""
        if not self.is_valid():
            return math.nan
        m = self.midpoint()
        return max(sub_ru(m, self.lo), sub_ru(self.hi, m))

    def width_ru(self) -> float:
        if not self.is_valid():
            return math.nan
        return sub_ru(self.hi, self.lo)

    def mag(self) -> float:
        """Largest absolute value in the interval."""
        return max(abs(self.lo), abs(self.hi))

    def mig(self) -> float:
        """Smallest absolute value in the interval."""
        if self.lo <= 0.0 <= self.hi:
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    # -- arithmetic ----------------------------------------------------------

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def __abs__(self) -> "Interval":
        if not self.is_valid():
            return self
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def __add__(self, other) -> "Interval":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return Interval.invalid()
        return Interval(add_rd(self.lo, other.lo), add_ru(self.hi, other.hi))

    __radd__ = __add__

    def __sub__(self, other) -> "Interval":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return Interval.invalid()
        return Interval(sub_rd(self.lo, other.hi), sub_ru(self.hi, other.lo))

    def __rsub__(self, other) -> "Interval":
        return _coerce(other) - self

    def __mul__(self, other) -> "Interval":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return Interval.invalid()
        a, b, c, d = self.lo, self.hi, other.lo, other.hi
        # 0 * inf panics in directed rounding only through NaN; guard zeros.
        if (a == 0.0 and b == 0.0) or (c == 0.0 and d == 0.0):
            return Interval.point(0.0)
        los = (mul_rd(a, c), mul_rd(a, d), mul_rd(b, c), mul_rd(b, d))
        his = (mul_ru(a, c), mul_ru(a, d), mul_ru(b, c), mul_ru(b, d))
        lo = min(x for x in los if not math.isnan(x))
        hi = max(x for x in his if not math.isnan(x))
        return Interval(lo, hi)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Interval":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return Interval.invalid()
        c, d = other.lo, other.hi
        if c <= 0.0 <= d:
            if c == 0.0 == d:
                return Interval.invalid()
            # Divisor straddles zero: the quotient is unbounded.
            return Interval.entire()
        a, b = self.lo, self.hi
        los = (div_rd(a, c), div_rd(a, d), div_rd(b, c), div_rd(b, d))
        his = (div_ru(a, c), div_ru(a, d), div_ru(b, c), div_ru(b, d))
        lo = min(x for x in los if not math.isnan(x))
        hi = max(x for x in his if not math.isnan(x))
        return Interval(lo, hi)

    def __rtruediv__(self, other) -> "Interval":
        return _coerce(other) / self

    def sqrt(self) -> "Interval":
        if not self.is_valid() or self.hi < 0.0:
            return Interval.invalid()
        lo = sqrt_rd(self.lo) if self.lo > 0.0 else 0.0
        return Interval(lo, sqrt_ru(self.hi))

    def square(self) -> "Interval":
        """Tighter than ``self * self`` (no dependency problem)."""
        if not self.is_valid():
            return self
        m = abs(self)
        return Interval(mul_rd(m.lo, m.lo), mul_ru(m.hi, m.hi))

    def recip(self) -> "Interval":
        return Interval.point(1.0) / self

    # -- lattice ops ---------------------------------------------------------

    def hull(self, other: "Interval") -> "Interval":
        if not (self.is_valid() and other.is_valid()):
            return Interval.invalid()
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def intersect(self, other: "Interval") -> "Interval | None":
        """Intersection, or None when empty."""
        if not self.is_valid():
            return other
        if not other.is_valid():
            return self
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        if hi < lo:
            return None
        return Interval(lo, hi)

    def min_with(self, other: "Interval") -> "Interval":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return Interval.invalid()
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval") -> "Interval":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return Interval.invalid()
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def interval(self) -> "Interval":
        """Uniform range API: an Interval is its own enclosure."""
        return self

    def widen_outward(self) -> "Interval":
        """One-ulp outward widening (used by sound constant folding)."""
        if not self.is_valid():
            return self
        return Interval(next_down(self.lo), next_up(self.hi))

    # -- comparisons ----------------------------------------------------------

    def compare_lt(self, other, policy: DecisionPolicy = DecisionPolicy.STRICT,
                   stats=None) -> bool:
        other = _coerce(other)
        definite: bool | None
        if not (self.is_valid() and other.is_valid()):
            definite = None
        elif self.hi < other.lo:
            definite = True
        elif self.lo >= other.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(
            definite, self.midpoint() < other.midpoint(), policy, "<", stats
        )

    def compare_le(self, other, policy: DecisionPolicy = DecisionPolicy.STRICT,
                   stats=None) -> bool:
        other = _coerce(other)
        definite: bool | None
        if not (self.is_valid() and other.is_valid()):
            definite = None
        elif self.hi <= other.lo:
            definite = True
        elif self.lo > other.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(
            definite, self.midpoint() <= other.midpoint(), policy, "<=", stats
        )

    def __repr__(self) -> str:
        return f"Interval({self.lo!r}, {self.hi!r})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        if not (self.is_valid() and other.is_valid()):
            return self.is_valid() == other.is_valid()
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))


def _coerce(x) -> Interval:
    if isinstance(x, Interval):
        return x
    if isinstance(x, (int, float)):
        return Interval.point(float(x))
    raise TypeError(f"cannot coerce {type(x).__name__} to Interval")

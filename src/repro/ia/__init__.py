"""Interval arithmetic substrate — the IGen baseline (Section II-A/II-C).

* :class:`Interval` — double endpoints (IGen-f64).
* :class:`IntervalDD` — double-double endpoints (IGen-dd).
* Elementary functions with sound outward widening in
  :mod:`repro.ia.functions`.
"""

from .functions import LIBM_ULP_MARGIN, icos, iexp, ifabs, ilog, isin, isqrt
from .interval import Interval
from .interval_dd import IntervalDD

__all__ = [
    "Interval",
    "IntervalDD",
    "LIBM_ULP_MARGIN",
    "icos",
    "iexp",
    "ifabs",
    "ilog",
    "isin",
    "isqrt",
]

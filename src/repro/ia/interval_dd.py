"""Sound interval arithmetic with double-double endpoints (IGen-dd).

Each endpoint is a :class:`repro.fp.DD` (~106 significand bits).  Operations
compute the round-to-nearest double-double result and then shift the
endpoints *outward* by a rigorous error bound (see
:meth:`repro.fp.DD.add_with_err` and friends).  The outward shift itself is
exact: for a normalized dd value ``hi + lo`` we replace ``lo`` by
``RD(lo - err)`` (resp. ``RU(lo + err)``) — the renormalization in the DD
constructor is an error-free transformation, so the shifted endpoint is a
true lower (upper) bound.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union

from ..common import DecisionPolicy, decide_comparison
from ..errors import SoundnessError
from ..fp import DD, add_ru, dd_from_float, sub_rd

__all__ = ["IntervalDD"]


def _shift_down(v: DD, err: float) -> DD:
    """An exact lower bound on ``value(v) - err``."""
    if not v.is_finite():
        return v
    if math.isinf(err):
        return DD(-math.inf)
    return DD(v.hi, sub_rd(v.lo, err))


def _shift_up(v: DD, err: float) -> DD:
    """An exact upper bound on ``value(v) + err``."""
    if not v.is_finite():
        return v
    if math.isinf(err):
        return DD(math.inf)
    return DD(v.hi, add_ru(v.lo, err))


class IntervalDD:
    """A closed interval with double-double endpoints."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: DD, hi: DD) -> None:
        if lo.is_nan() or hi.is_nan():
            lo = hi = DD.nan()
        elif hi < lo:
            raise SoundnessError(f"IntervalDD endpoints out of order: [{lo}, {hi}]")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    def __setattr__(self, name, value):
        raise AttributeError("IntervalDD is immutable")

    # -- constructors -------------------------------------------------------

    @staticmethod
    def point(x: Union[float, DD]) -> "IntervalDD":
        d = x if isinstance(x, DD) else dd_from_float(float(x))
        return IntervalDD(d, d)

    @staticmethod
    def from_constant(x: float, exact: bool = False) -> "IntervalDD":
        """One-ulp-of-double widening for potentially inexact constants."""
        if exact or not math.isfinite(x) or x == int(x):
            return IntervalDD.point(x)
        u = math.ulp(x)
        d = dd_from_float(x)
        return IntervalDD(_shift_down(d, u), _shift_up(d, u))

    @staticmethod
    def from_interval(lo: float, hi: float) -> "IntervalDD":
        return IntervalDD(dd_from_float(lo), dd_from_float(hi))

    @staticmethod
    def entire() -> "IntervalDD":
        return IntervalDD(DD(-math.inf), DD(math.inf))

    @staticmethod
    def invalid() -> "IntervalDD":
        return IntervalDD(DD.nan(), DD.nan())

    # -- predicates ----------------------------------------------------------

    def is_valid(self) -> bool:
        return not self.lo.is_nan()

    def contains(self, x: Union[float, Fraction]) -> bool:
        if not self.is_valid():
            return True
        xf = x if isinstance(x, Fraction) else Fraction(float(x))
        lo_ok = not self.lo.is_finite() or (Fraction(self.lo.hi) + Fraction(self.lo.lo)) <= xf
        hi_ok = not self.hi.is_finite() or xf <= (Fraction(self.hi.hi) + Fraction(self.hi.lo))
        return lo_ok and hi_ok

    # -- conversions ---------------------------------------------------------

    def to_double_interval(self):
        """Sound conversion to a double-endpoint Interval."""
        from .interval import Interval

        if not self.is_valid():
            return Interval.invalid()
        return Interval(self.lo.lower_double(), self.hi.upper_double())

    def interval(self):
        """Alias for :meth:`to_double_interval` (uniform range API)."""
        return self.to_double_interval()

    def midpoint(self) -> float:
        if not self.is_valid():
            return math.nan
        return (self.lo.to_float() + self.hi.to_float()) / 2.0

    def width_upper(self) -> float:
        if not self.is_valid():
            return math.nan
        d, err = self.hi.add_with_err(-self.lo)
        return add_ru(d.abs_upper(), err)

    # -- arithmetic ----------------------------------------------------------

    def __neg__(self) -> "IntervalDD":
        return IntervalDD(-self.hi, -self.lo)

    def __add__(self, other) -> "IntervalDD":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return IntervalDD.invalid()
        lo, elo = self.lo.add_with_err(other.lo)
        hi, ehi = self.hi.add_with_err(other.hi)
        return IntervalDD(_shift_down(lo, elo), _shift_up(hi, ehi))

    __radd__ = __add__

    def __sub__(self, other) -> "IntervalDD":
        other = _coerce(other)
        return self + (-other)

    def __rsub__(self, other) -> "IntervalDD":
        return _coerce(other) + (-self)

    def __mul__(self, other) -> "IntervalDD":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return IntervalDD.invalid()
        candidates_lo = []
        candidates_hi = []
        for x in (self.lo, self.hi):
            for y in (other.lo, other.hi):
                p, err = x.mul_with_err(y)
                if p.is_nan():
                    # 0 * inf inside dd mul: treat as exact zero only when
                    # one operand is exactly zero.
                    if (x.hi == 0.0 and x.lo == 0.0) or (y.hi == 0.0 and y.lo == 0.0):
                        p, err = DD.zero(), 0.0
                    else:
                        return IntervalDD.invalid()
                candidates_lo.append(_shift_down(p, err))
                candidates_hi.append(_shift_up(p, err))
        return IntervalDD(min(candidates_lo), max(candidates_hi))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "IntervalDD":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return IntervalDD.invalid()
        zero = DD.zero()
        if other.lo <= zero <= other.hi:
            if other.lo == zero and other.hi == zero:
                return IntervalDD.invalid()
            return IntervalDD.entire()
        candidates_lo = []
        candidates_hi = []
        for x in (self.lo, self.hi):
            for y in (other.lo, other.hi):
                q, err = x.div_with_err(y)
                if q.is_nan():
                    return IntervalDD.invalid()
                candidates_lo.append(_shift_down(q, err))
                candidates_hi.append(_shift_up(q, err))
        return IntervalDD(min(candidates_lo), max(candidates_hi))

    def __rtruediv__(self, other) -> "IntervalDD":
        return _coerce(other) / self

    def __abs__(self) -> "IntervalDD":
        if not self.is_valid():
            return self
        zero = DD.zero()
        if self.lo >= zero:
            return self
        if self.hi <= zero:
            return -self
        return IntervalDD(zero, (-self.lo) if -self.lo > self.hi else self.hi)

    def min_with(self, other) -> "IntervalDD":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return IntervalDD.invalid()
        return IntervalDD(self.lo if self.lo < other.lo else other.lo,
                          self.hi if self.hi < other.hi else other.hi)

    def max_with(self, other) -> "IntervalDD":
        other = _coerce(other)
        if not (self.is_valid() and other.is_valid()):
            return IntervalDD.invalid()
        return IntervalDD(self.lo if self.lo > other.lo else other.lo,
                          self.hi if self.hi > other.hi else other.hi)

    def sqrt(self) -> "IntervalDD":
        if not self.is_valid() or self.hi < DD.zero():
            return IntervalDD.invalid()
        if self.lo <= DD.zero():
            lo = DD.zero()
        else:
            s, err = self.lo.sqrt_with_err()
            lo = _shift_down(s, err)
            if lo < DD.zero():
                lo = DD.zero()
        s, err = self.hi.sqrt_with_err()
        return IntervalDD(lo, _shift_up(s, err))

    # -- comparisons ----------------------------------------------------------

    def compare_lt(self, other, policy: DecisionPolicy = DecisionPolicy.STRICT,
                   stats=None) -> bool:
        other = _coerce(other)
        definite: bool | None
        if not (self.is_valid() and other.is_valid()):
            definite = None
        elif self.hi < other.lo:
            definite = True
        elif self.lo >= other.hi:
            definite = False
        else:
            definite = None
        return decide_comparison(
            definite, self.midpoint() < other.midpoint(), policy, "<", stats
        )

    def __repr__(self) -> str:
        return f"IntervalDD({self.lo!r}, {self.hi!r})"


def _coerce(x) -> IntervalDD:
    if isinstance(x, IntervalDD):
        return x
    if isinstance(x, DD):
        return IntervalDD.point(x)
    if isinstance(x, (int, float)):
        return IntervalDD.point(float(x))
    raise TypeError(f"cannot coerce {type(x).__name__} to IntervalDD")

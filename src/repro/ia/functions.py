"""Elementary functions on intervals.

``sqrt`` is exactly rounded (see :mod:`repro.fp.rounding`).  The
transcendentals (exp, log, sin, cos) rely on the platform libm through
:mod:`math`; correctly-rounded behaviour is not guaranteed by the standard,
so every libm result is widened outward by :data:`LIBM_ULP_MARGIN` ulps.
Glibc's documented worst-case errors for these functions are 1-2 ulps; the
default margin of 4 leaves generous slack.  The margin is module-level so a
paranoid user can raise it.
"""

from __future__ import annotations

import math

from ..fp import next_down, next_up
from .interval import Interval

__all__ = ["LIBM_ULP_MARGIN", "iexp", "ilog", "isin", "icos", "ifabs", "isqrt"]

#: Outward widening (in ulps) applied around every libm evaluation.
LIBM_ULP_MARGIN = 4


def _down(x: float) -> float:
    for _ in range(LIBM_ULP_MARGIN):
        x = next_down(x)
    return x


def _up(x: float) -> float:
    for _ in range(LIBM_ULP_MARGIN):
        x = next_up(x)
    return x


def iexp(x: Interval) -> Interval:
    """Sound enclosure of ``exp`` over the interval (monotone increasing)."""
    if not x.is_valid():
        return Interval.invalid()
    lo = 0.0 if x.lo == -math.inf else max(0.0, _down(math.exp(min(x.lo, 709.0))))
    if x.hi > 709.0:  # exp overflows past ~709.78
        hi = math.inf
    else:
        hi = _up(math.exp(x.hi))
    return Interval(lo, hi)


def ilog(x: Interval) -> Interval:
    """Sound enclosure of ``log``; invalid if the interval reaches <= 0."""
    if not x.is_valid() or x.lo <= 0.0:
        return Interval.invalid()
    return Interval(_down(math.log(x.lo)), _up(math.log(x.hi)))


def _trig_range(x: Interval, fn, is_sin: bool) -> Interval:
    """Shared sin/cos enclosure: exact ±1 once the width spans a period's
    worth of extrema, otherwise endpoint evaluation plus extremum tests."""
    if not x.is_valid():
        return Interval.invalid()
    if not x.is_finite() or x.width_ru() >= 2.0 * math.pi:
        return Interval(-1.0, 1.0)
    f_lo, f_hi = fn(x.lo), fn(x.hi)
    lo = min(f_lo, f_hi)
    hi = max(f_lo, f_hi)
    # Check whether an extremum of sin (at pi/2 + k*pi) or cos (at k*pi)
    # falls inside; the pi tests are themselves done conservatively by
    # widening the index range by one on both sides.
    half_pi = math.pi / 2.0
    shift = half_pi if is_sin else 0.0
    k_lo = math.floor((x.lo - shift) / math.pi) - 1
    k_hi = math.ceil((x.hi - shift) / math.pi) + 1
    for k in range(int(k_lo), int(k_hi) + 1):
        extremum_at = shift + k * math.pi
        if x.lo - 1e-9 <= extremum_at <= x.hi + 1e-9:
            if k % 2 == 0:
                hi = 1.0
            else:
                lo = -1.0
    return Interval(max(-1.0, _down(lo)) if lo > -1.0 else -1.0,
                    min(1.0, _up(hi)) if hi < 1.0 else 1.0)


def isin(x: Interval) -> Interval:
    """Sound enclosure of ``sin``."""
    return _trig_range(x, math.sin, is_sin=True)


def icos(x: Interval) -> Interval:
    """Sound enclosure of ``cos``."""
    return _trig_range(x, math.cos, is_sin=False)


def ifabs(x: Interval) -> Interval:
    """Exact ``fabs`` on intervals."""
    return abs(x)


def isqrt(x: Interval) -> Interval:
    """Exactly rounded ``sqrt`` on intervals."""
    return x.sqrt()

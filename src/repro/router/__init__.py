"""Fleet serving: a consistent-hash router over sharded sound-compute daemons.

One :class:`RouterServer` (an :class:`~repro.server.OpCore`, speaking the
same wire protocol as the daemons) places every work request on a shard
by its compile cache key, so each program's traffic sticks to the shard
whose cache is warm with it; control ops aggregate fleet-wide.  See the
README "Fleet serving" section and DESIGN.md for the architecture.

Layers (each its own module):

* :mod:`.ring`   — :class:`HashRing`: consistent hashing w/ virtual nodes
* :mod:`.config` — :class:`RouterConfig` tuning knobs
* :mod:`.link`   — :class:`ShardLink`: one multiplexed connection/shard
* :mod:`.fleet`  — :class:`FleetManager`: spawn/attach, health, respawn
* :mod:`.router` — :class:`RouterServer` + :class:`RouterThread`

Entry points: ``python -m repro serve --fleet N``, ``python -m repro
route``, ``examples/fleet_client.py``,
``benchmarks/bench_fleet_throughput.py``.
"""

from .config import RouterConfig
from .fleet import FleetManager, Shard
from .link import ShardLink
from .ring import HashRing
from .router import PreparedForward, RouterServer, RouterThread

__all__ = [
    "FleetManager",
    "HashRing",
    "PreparedForward",
    "RouterConfig",
    "RouterServer",
    "RouterThread",
    "Shard",
    "ShardLink",
]

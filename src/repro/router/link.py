"""One multiplexed async connection from the router to one shard.

The daemon handles requests on a connection concurrently and replies in
completion order, matched by id — so the router needs exactly one TCP
connection per shard, not one per in-flight request.  A :class:`ShardLink`
keeps that connection, assigns frame ids, and parks each sender on a
future that the single background read loop resolves when the matching
reply arrives.  A dropped connection fails every parked future with
:class:`ConnectionError`; the next request reconnects lazily, so a shard
restart needs no link management from the caller.

All methods must run on the router's event loop (no internal locking
beyond connection setup).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

from ..server.protocol import MAX_FRAME_BYTES, encode_frame

__all__ = ["ShardLink"]


class ShardLink:
    """See the module docstring."""

    def __init__(self, host: str, port: int,
                 connect_timeout_s: float = 5.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.host = host
        self.port = port
        self.connect_timeout_s = connect_timeout_s
        self.max_frame_bytes = max_frame_bytes
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._read_task: Optional[asyncio.Task] = None
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._conn_lock = asyncio.Lock()
        self._closed = False

    @property
    def connected(self) -> bool:
        return self._writer is not None

    # -- connection ------------------------------------------------------------------

    async def connect(self) -> None:
        async with self._conn_lock:
            if self._writer is not None or self._closed:
                return
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port,
                                            limit=self.max_frame_bytes),
                    timeout=self.connect_timeout_s)
            except (asyncio.TimeoutError, OSError) as exc:
                raise ConnectionError(
                    f"cannot connect to shard {self.host}:{self.port}: "
                    f"{exc}") from exc
            self._reader, self._writer = reader, writer
            self._read_task = asyncio.ensure_future(self._read_loop())

    async def close(self) -> None:
        self._closed = True
        self._teardown(ConnectionError("link closed"))
        if self._read_task is not None:
            self._read_task.cancel()
            try:
                await self._read_task
            except (asyncio.CancelledError, Exception):
                pass
            self._read_task = None

    def _teardown(self, exc: Exception) -> None:
        """Drop the connection and fail everything parked on it."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(
                    ConnectionError(f"shard {self.host}:{self.port} "
                                    f"connection lost"))

    async def _read_loop(self) -> None:
        reader = self._reader
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    reply = json.loads(line)
                except ValueError:
                    continue  # a garbled frame cannot be matched; skip
                fut = self._pending.pop(reply.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(reply)
        except (ConnectionError, OSError, ValueError,
                asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            raise
        finally:
            if self._reader is reader:  # not already torn down/reconnected
                self._teardown(ConnectionError("connection lost"))

    # -- requests --------------------------------------------------------------------

    async def request(self, op: str,
                      params: Optional[Dict[str, Any]] = None, *,
                      deadline_s: Optional[float] = None,
                      trace_id: Optional[str] = None,
                      parent_span: Optional[str] = None,
                      timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Send one op frame; return the **raw reply dict** (the caller
        interprets ``ok``/``error`` — the router must see error codes, not
        exceptions).  Raises :class:`ConnectionError` when the shard is
        unreachable or drops mid-request, :class:`asyncio.TimeoutError`
        when ``timeout_s`` lapses (the reply, if it ever comes, is
        discarded by the read loop)."""
        await self.connect()
        self._next_id += 1
        rid = self._next_id
        frame: Dict[str, Any] = {"id": rid, "op": op, **(params or {})}
        if deadline_s is not None:
            frame["deadline_s"] = deadline_s
        if trace_id is not None:
            frame["trace_id"] = trace_id
        if parent_span is not None:
            frame["parent_span"] = parent_span
        fut = asyncio.get_running_loop().create_future()
        self._pending[rid] = fut
        try:
            self._writer.write(encode_frame(frame))
            await self._writer.drain()
        except (ConnectionError, OSError, AttributeError) as exc:
            # AttributeError: writer torn down between connect and write.
            self._pending.pop(rid, None)
            self._teardown(ConnectionError("write failed"))
            raise ConnectionError(
                f"shard {self.host}:{self.port} write failed: "
                f"{exc}") from exc
        try:
            return await asyncio.wait_for(fut, timeout=timeout_s)
        finally:
            self._pending.pop(rid, None)

"""The fleet router: consistent-hash request placement over shard daemons.

A :class:`RouterServer` is an :class:`~repro.server.core.OpCore` — it
speaks the exact same newline-delimited JSON op protocol as the daemons
behind it, so every existing client (:class:`~repro.server.client.
ServerClient`, the CLI, the benchmarks) points at a fleet by changing a
port number and nothing else.

Work ops (``compile`` / ``run`` / ``run_batch``) are **forwarded**: the
router computes the request's compile cache key (the same content
address the daemons and the CLI use), hashes it onto the consistent-hash
ring, and relays the frame to the owning shard over that shard's
multiplexed link — so all traffic for one program lands where its cache
is warm.  A shard that fails mid-forward (connection refused, dropped
link, ``draining`` reply) is marked out of the ring and the request
retries on the next ring successor — exactly where the key remaps to —
which is why killing or draining a shard mid-load loses no accepted
replies.

Control ops aggregate instead of forwarding:

* ``stats``   — per-shard snapshots keyed by shard id, a fleet rollup
  (:meth:`ServiceStats.merged` over the shard snapshots), and the
  router's own service/server sections.
* ``metrics`` — one valid Prometheus exposition with a ``shard`` label
  per sample (:func:`render_prometheus_fleet`).
* ``trace``   — spans for a trace id gathered from the router's own ring
  buffer *and* every shard's, so a client sees the full
  router -> shard -> pool-worker waterfall.  The hop is grafted via the
  frame-level ``parent_span`` field: the router's forwarding span id
  becomes the parent of the shard's root span.
* ``drain``   — drains the router (every accepted forward gets its
  reply), then fans the drain out to every shard.
* ``health``  — fleet membership plus the usual liveness fields.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs.diag import WidthProfile
from ..obs.metrics import render_prometheus_fleet
from ..obs.trace import current_tracer
from ..server.core import CoreThread, OpCore
from ..server.protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_DRAINING,
    E_UNAVAILABLE,
    ProtocolError,
    Request,
)
from ..service.jobs import job_from_dict
from ..service.stats import ServiceStats
from .config import RouterConfig
from .fleet import FleetManager
from .ring import HashRing

__all__ = ["PreparedForward", "RouterServer", "RouterThread"]

#: grace added to the shard-side deadline before the router gives up on a
#: forward itself — lets the shard reply ``deadline_exceeded`` with its
#: own diagnostics instead of racing the router's timer.
_FORWARD_GRACE_S = 2.0


@dataclass
class PreparedForward:
    """A validated work request, placed on the ring and ready to relay."""

    request: Request
    params: Dict[str, Any]
    key: str
    route: str = "forward"


class RouterServer(OpCore):
    """See the module docstring.  Typical use::

        router = RouterServer(RouterConfig(port=0, n_shards=4))
        await router.start()        # spawns + admits the fleet
        print(router.port)
        await router.serve_forever()
    """

    span_prefix = "router"

    def __init__(self, config: Optional[RouterConfig] = None) -> None:
        self.config = config if config is not None else RouterConfig()
        super().__init__(
            host=self.config.host,
            port=self.config.port,
            max_queue=self.config.max_queue,
            class_limits={"forward": self.config.forward_limit},
            default_deadline_s=self.config.default_deadline_s,
            drain_grace_s=self.config.drain_grace_s,
            max_frame_bytes=self.config.max_frame_bytes,
            trace_buffer=self.config.trace_buffer,
            trace_log=self.config.trace_log,
            stats=ServiceStats())
        self.ring = HashRing(replicas=self.config.replicas)
        self.fleet = FleetManager(self.config, self.ring)
        self.register_work("compile", "run", "run_batch", "analyze", "tune")
        self.register_control("diag", self.op_diag)

    # -- op-core hooks ---------------------------------------------------------------

    async def on_start(self) -> None:
        await self.fleet.start()

    async def on_stop(self) -> None:
        await self.fleet.stop()

    async def on_drained(self) -> Optional[Dict[str, Any]]:
        return {"shards": await self.fleet.drain_all()}

    def prepare_work(self, request: Request) -> PreparedForward:
        """Validate enough to place the request: the compile cache key is
        the ring key, computed exactly as the shard will compute it."""
        params = dict(request.params)
        if "file" in params:
            raise ProtocolError(E_BAD_REQUEST,
                                "server requests must inline 'source'; "
                                "'file' is client-side only")
        try:
            job = job_from_dict({**params, "kind": request.op})
            key = job.resolved_config().cache_key(job.source,
                                                  entry=job.entry)
        except ProtocolError:
            raise
        except (ReproError, TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(E_BAD_REQUEST, f"invalid request: {exc}")
        return PreparedForward(request=request, params=params, key=key)

    async def execute_work(self, prepared: PreparedForward,
                           remaining_s: Optional[float]) -> Dict[str, Any]:
        """Relay to the key's shard; fail over along the ring successor
        order when the shard is gone or draining."""
        cfg = self.config
        candidates = self.ring.nodes_for(prepared.key,
                                         1 + cfg.forward_retries)
        tracer = current_tracer()
        fwd_trace = tracer.trace_id if tracer.enabled else None
        last_failure = "no healthy shard in the ring"
        for attempt, shard_id in enumerate(candidates):
            shard = self.fleet.shards.get(shard_id)
            if shard is None or not shard.healthy:
                continue
            if attempt > 0:
                self.counters["forward_failovers"] += 1
            timeout_s = None if remaining_s is None \
                else remaining_s + _FORWARD_GRACE_S
            with tracer.span(f"forward:{shard_id}", shard=shard_id,
                             address=shard.address,
                             key=prepared.key[:16]) as sp:
                try:
                    reply = await shard.link.request(
                        prepared.request.op, prepared.params,
                        deadline_s=remaining_s, trace_id=fwd_trace,
                        parent_span=sp.span_id, timeout_s=timeout_s)
                except (ConnectionError, OSError) as exc:
                    self.counters["forward_conn_errors"] += 1
                    self.fleet.note_failure(shard_id)
                    last_failure = f"shard {shard_id}: {exc}"
                    sp.set(failed="connection")
                    continue
                except asyncio.TimeoutError:
                    raise ProtocolError(
                        E_DEADLINE,
                        f"shard {shard_id} did not reply within "
                        f"{timeout_s:.3f}s")
            if reply.get("ok"):
                self.counters["forwards_ok"] += 1
                result = dict(reply["result"])
                result["shard"] = shard_id
                return result
            error = reply.get("error") or {}
            code = error.get("code", "internal")
            if code in (E_DRAINING, E_UNAVAILABLE):
                # The shard is on its way out; its keys are remapping to
                # the ring successor we will try next.
                self.counters["forward_failovers"] += 1
                last_failure = f"shard {shard_id}: {code}"
                continue
            # Real answer from the owning shard (bad_request,
            # compile_error, deadline_exceeded, overloaded, internal):
            # surface it — retrying elsewhere cannot change it, except
            # overloaded, which the *client's* backoff handles.
            raise ProtocolError(code,
                                error.get("message", "shard error"))
        raise ProtocolError(E_UNAVAILABLE,
                            f"no shard could serve the request "
                            f"({last_failure}); "
                            f"{len(self.ring)} shard(s) in the ring")

    # -- aggregating control ops -----------------------------------------------------

    def server_section(self) -> Dict[str, Any]:
        out = super().server_section()
        out["fleet"] = self.fleet.snapshot()
        return out

    async def _gather_shards(self, op: str,
                             params: Optional[Dict[str, Any]] = None
                             ) -> Dict[str, Dict[str, Any]]:
        """One ``op`` request to every healthy shard, concurrently;
        returns shard id -> result for the shards that answered ok."""
        shards = self.fleet.healthy_shards

        async def _one(shard) -> Tuple[str, Optional[Dict[str, Any]]]:
            try:
                reply = await shard.link.request(
                    op, params,
                    timeout_s=self.config.health_timeout_s)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                return shard.shard_id, None
            if not reply.get("ok"):
                return shard.shard_id, None
            return shard.shard_id, reply["result"]

        out: Dict[str, Dict[str, Any]] = {}
        for shard_id, result in await asyncio.gather(
                *(_one(s) for s in shards)):
            if result is not None:
                out[shard_id] = result
        return out

    async def op_stats(self, request: Request) -> Dict[str, Any]:
        """Fleet stats: per-shard snapshots, the rollup, the router."""
        shards = await self._gather_shards("stats")
        rollup = ServiceStats.merged(
            [r["service"] for r in shards.values() if "service" in r])
        return {
            "router": {"service": self.stats.to_dict(),
                       "server": self.server_section()},
            "fleet": {**self.fleet.snapshot(),
                      "service": rollup.to_dict()},
            "shards": shards,
        }

    async def op_diag(self, request: Request) -> Dict[str, Any]:
        """Fleet width diagnostics: every shard's ``diag`` snapshot plus
        the :meth:`WidthProfile.merged` rollup — the same wire form a
        single daemon serves, so clients and the CLI need no fleet case."""
        shards = await self._gather_shards("diag")
        rollup = WidthProfile.merged(
            [r["width"] for r in shards.values() if "width" in r])
        return {"width": rollup.to_dict(), "shards": shards}

    async def op_metrics(self, request: Request) -> Dict[str, Any]:
        """One Prometheus exposition over the whole fleet: every family
        once, a ``shard`` label per sample, fleet membership gauges."""
        shards = await self._gather_shards("stats")
        text = render_prometheus_fleet(
            {sid: (r.get("service", {}), r.get("server"))
             for sid, r in shards.items()},
            router=(self.stats, self.server_section()),
            fleet=self.fleet.snapshot())
        return {"text": text,
                "content_type": "text/plain; version=0.0.4"}

    async def op_trace(self, request: Request) -> Dict[str, Any]:
        """Spans from the router's buffer plus every shard's — the whole
        router -> shard -> pool-worker tree for a trace id."""
        local = OpCore.op_trace(self, request)
        params: Dict[str, Any] = {}
        trace_id = request.params.get("filter_trace_id") or request.trace_id
        if trace_id is not None:
            params["filter_trace_id"] = trace_id
        if request.params.get("limit") is not None:
            params["limit"] = request.params["limit"]
        spans: List[Dict[str, Any]] = list(local["spans"])
        total, dropped = local["total"], local["dropped"]
        for result in (await self._gather_shards("trace",
                                                 params)).values():
            spans.extend(result.get("spans", []))
            total += result.get("total", 0)
            dropped += result.get("dropped", 0)
        return {"spans": spans, "total": total, "dropped": dropped}

    def op_health(self, request: Request) -> Dict[str, Any]:
        out = OpCore.op_health(self, request)
        snap = self.fleet.snapshot()
        out["role"] = "router"
        out["healthy_shards"] = snap["healthy_shards"]
        out["out_shards"] = snap["out_shards"]
        if snap["healthy_shards"] == 0 and not self._draining:
            out["status"] = "unavailable"
        return out


class RouterThread(CoreThread):
    """A :class:`RouterServer` on a daemon thread — the blocking-world
    embedding (tests, benchmarks, examples), mirroring
    :class:`~repro.server.daemon.ServerThread`::

        with RouterThread(RouterConfig(n_shards=2)) as fleet:
            client = ServerClient(port=fleet.port)
            ...
    """

    def __init__(self, config: Optional[RouterConfig] = None) -> None:
        super().__init__(RouterServer(config))

"""Fleet membership: shard lifecycle, health probing, ring admission.

A :class:`FleetManager` owns the set of :class:`Shard` records behind one
router and is the only thing that mutates the consistent-hash ring:

* **attached** shards are pre-existing daemons (``host:port``); the
  manager probes and routes to them but never touches their processes.
* **spawned** shards are launched by the manager itself (``python -m
  repro serve --port 0 --port-file ...``), supervised, and — when
  ``respawn`` is on — restarted with a fresh process if they die.  The
  replacement keeps the shard id, so the ring placement (and therefore
  every key's affinity) is exactly what it was before the crash.

Health model: the prober sends each shard a ``health`` op every
``health_interval_s``.  ``unhealthy_after`` consecutive failures (or a
single forward-time connection error, via :meth:`note_failure` — a
stronger signal than a missed probe) takes the shard out of the ring;
one healthy probe puts it back.  A shard reporting ``draining`` is
treated as out — its keys remap while it finishes, which is what makes
draining one shard mid-load lose nothing.
"""

from __future__ import annotations

import asyncio
import os
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

from .config import RouterConfig
from .link import ShardLink
from .ring import HashRing

__all__ = ["FleetManager", "Shard"]


class Shard:
    """One backend daemon as the router sees it."""

    def __init__(self, shard_id: str, host: str, port: int,
                 link: ShardLink, spawned: bool = False,
                 proc: Optional[subprocess.Popen] = None) -> None:
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.link = link
        self.spawned = spawned
        self.proc = proc
        self.healthy = True
        self.fail_streak = 0
        self.marked_out_at: Optional[float] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "address": self.address,
            "healthy": self.healthy,
            "fail_streak": self.fail_streak,
            "spawned": self.spawned,
        }
        if self.proc is not None:
            out["pid"] = self.proc.pid
        return out


class FleetManager:
    """See the module docstring.  Runs on the router's event loop."""

    def __init__(self, config: RouterConfig, ring: HashRing) -> None:
        self.config = config
        self.ring = ring
        self.shards: Dict[str, Shard] = {}
        self._dir: Optional[str] = None
        self._probe_task: Optional[asyncio.Task] = None
        self.marked_out_total = 0
        self.readmitted_total = 0
        self.respawns_total = 0

    @property
    def healthy_shards(self) -> List[Shard]:
        return [s for s in self.shards.values() if s.healthy]

    # -- lifecycle -------------------------------------------------------------------

    async def start(self) -> None:
        cfg = self.config
        if cfg.shards:
            for i, (host, port) in enumerate(cfg.shards):
                self._adopt(Shard(str(i), host, port,
                                  self._link(host, port)))
        else:
            self._dir = tempfile.mkdtemp(prefix="repro-fleet-")
            for i in range(cfg.n_shards):
                await self._spawn(str(i))
        if cfg.health_interval_s > 0:
            self._probe_task = asyncio.ensure_future(self._probe_loop())

    async def stop(self) -> None:
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except (asyncio.CancelledError, Exception):
                pass
            self._probe_task = None
        for shard in self.shards.values():
            await shard.link.close()
            if shard.spawned and shard.proc is not None \
                    and shard.proc.poll() is None:
                shard.proc.terminate()
        for shard in self.shards.values():
            if shard.spawned and shard.proc is not None:
                try:
                    shard.proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    shard.proc.kill()
                    shard.proc.wait(timeout=5.0)
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None

    def _link(self, host: str, port: int) -> ShardLink:
        return ShardLink(host, port,
                         connect_timeout_s=self.config.connect_timeout_s,
                         max_frame_bytes=self.config.max_frame_bytes)

    def _adopt(self, shard: Shard) -> None:
        self.shards[shard.shard_id] = shard
        self.ring.add(shard.shard_id)

    # -- spawned shards --------------------------------------------------------------

    def _shard_cmd(self, port_file: str) -> List[str]:
        cfg = self.config
        cmd = [sys.executable, "-m", "repro", "serve",
               "--host", "127.0.0.1", "--port", "0",
               "--port-file", port_file,
               "--workers", str(cfg.shard_workers),
               "--max-queue", str(cfg.shard_max_queue),
               "--inline-limit", str(cfg.shard_inline_limit),
               "--maxsize", str(cfg.shard_cache_maxsize),
               "--diag-sample", str(cfg.shard_diag_sample_every)]
        if cfg.cache_dir:
            cmd += ["--cache-dir", cfg.cache_dir]
        return cmd

    async def _spawn(self, shard_id: str,
                     replacing: Optional[Shard] = None) -> Shard:
        assert self._dir is not None
        port_file = os.path.join(self._dir, f"shard-{shard_id}.port")
        try:
            os.unlink(port_file)
        except FileNotFoundError:
            pass
        log = open(os.path.join(self._dir, f"shard-{shard_id}.log"), "ab")
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        try:
            proc = subprocess.Popen(self._shard_cmd(port_file),
                                    stdout=log, stderr=log, env=env)
        finally:
            log.close()
        port = await self._await_port(port_file, proc)
        shard = Shard(shard_id, "127.0.0.1", port,
                      self._link("127.0.0.1", port),
                      spawned=True, proc=proc)
        if replacing is not None:
            await replacing.link.close()
        self._adopt(shard)
        return shard

    async def _await_port(self, port_file: str,
                          proc: subprocess.Popen) -> int:
        deadline = time.monotonic() + self.config.spawn_grace_s
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"spawned shard exited with {proc.returncode} before "
                    f"reporting its port (see {self._dir})")
            try:
                with open(port_file) as fh:
                    text = fh.read().strip()
                if text:
                    return int(text)
            except (FileNotFoundError, ValueError):
                pass
            await asyncio.sleep(0.02)
        proc.terminate()
        raise RuntimeError(
            f"spawned shard did not report a port within "
            f"{self.config.spawn_grace_s}s")

    # -- health ----------------------------------------------------------------------

    def note_failure(self, shard_id: str) -> None:
        """A forward hit a connection error on this shard: take it out of
        the ring immediately (the prober re-admits it when it recovers)."""
        shard = self.shards.get(shard_id)
        if shard is not None:
            shard.fail_streak = max(shard.fail_streak,
                                    self.config.unhealthy_after)
            self._mark_out(shard)

    def _mark_out(self, shard: Shard) -> None:
        if not shard.healthy:
            return
        shard.healthy = False
        shard.marked_out_at = time.monotonic()
        self.marked_out_total += 1
        self.ring.remove(shard.shard_id)

    def _readmit(self, shard: Shard) -> None:
        if shard.healthy:
            return
        shard.healthy = True
        shard.fail_streak = 0
        shard.marked_out_at = None
        self.readmitted_total += 1
        self.ring.add(shard.shard_id)

    async def _probe_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            await self.probe_once()

    async def probe_once(self) -> None:
        """One health sweep over every shard (concurrently)."""
        await asyncio.gather(
            *(self._probe(s) for s in list(self.shards.values())),
            return_exceptions=True)

    async def _probe(self, shard: Shard) -> None:
        cfg = self.config
        try:
            reply = await shard.link.request(
                "health", timeout_s=cfg.health_timeout_s)
            ok = bool(reply.get("ok")) \
                and reply["result"].get("status") == "ok"
        except (ConnectionError, OSError, asyncio.TimeoutError):
            ok = False
        if ok:
            shard.fail_streak = 0
            if not shard.healthy:
                self._readmit(shard)
            return
        shard.fail_streak += 1
        if shard.healthy and shard.fail_streak >= cfg.unhealthy_after:
            self._mark_out(shard)
        if (not shard.healthy and shard.spawned and cfg.respawn
                and shard.proc is not None
                and shard.proc.poll() is not None):
            # The process is gone (not merely slow or draining):
            # replace it.  Same shard id -> same ring placement.
            self.respawns_total += 1
            try:
                await self._spawn(shard.shard_id, replacing=shard)
            except RuntimeError:
                pass  # next sweep retries

    # -- fleet ops -------------------------------------------------------------------

    async def drain_all(self) -> Dict[str, Any]:
        """Drain every shard (spawned ones then exit); per-shard reports."""
        out: Dict[str, Any] = {}

        async def _drain(shard: Shard) -> None:
            try:
                reply = await shard.link.request(
                    "drain", timeout_s=self.config.drain_grace_s)
                out[shard.shard_id] = reply.get("result") \
                    if reply.get("ok") else {"error": reply.get("error")}
            except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
                out[shard.shard_id] = {"error": str(exc)}
            self._mark_out(shard)

        await asyncio.gather(*(_drain(s) for s in self.shards.values()
                               if s.healthy),
                             return_exceptions=True)
        return out

    def snapshot(self) -> Dict[str, Any]:
        healthy = sum(1 for s in self.shards.values() if s.healthy)
        return {
            "shards": {sid: s.snapshot()
                       for sid, s in sorted(self.shards.items())},
            "healthy_shards": healthy,
            "out_shards": len(self.shards) - healthy,
            "ring_nodes": len(self.ring),
            "marked_out_total": self.marked_out_total,
            "readmitted_total": self.readmitted_total,
            "respawns_total": self.respawns_total,
        }

"""Consistent hashing: stable key -> shard placement with minimal churn.

The router places every work request on a shard by its **compile cache
key** (the content address of source + config + entry), so all traffic
for one program lands on the shard whose in-memory cache is already warm
with it — cache affinity is what makes a fleet of per-process LRU caches
behave like one big cache.

A :class:`HashRing` hashes each shard onto the unit ring at ``replicas``
pseudo-random points (virtual nodes) and routes a key to the first shard
point at or clockwise of the key's own hash.  Properties that matter
here:

* **stability** — the mapping depends only on the member set, never on
  join order or lookup history; every router replica computes the same
  placement.
* **minimal churn** — removing a shard reassigns *only* the keys it
  owned (to their next-clockwise shard); unrelated keys keep their warm
  shard.  Adding it back restores the exact prior placement, so a shard
  that blips out and returns finds its cache still relevant.
* **spread** — virtual nodes keep the per-shard key share near 1/N even
  for small fleets (64 points per shard holds the imbalance to a few
  percent).

:meth:`HashRing.nodes_for` yields the failover order: distinct shards in
clockwise succession.  The router walks it when the primary is out — the
first healthy successor is exactly where the key remaps after the ring
drops the dead shard, so retry-and-remap agree.

Hashing is SHA-256 (first 8 bytes, big-endian): already imported for the
cache's content addressing, uniform, and platform-independent — ring
placement must not depend on the host's ``hash()`` seed.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right, insort
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["HashRing"]


def _point(data: str) -> int:
    return int.from_bytes(
        hashlib.sha256(data.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """See the module docstring.

    Not thread-safe; the router mutates it only from its event loop.
    """

    def __init__(self, nodes: Iterable[str] = (),
                 replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        #: sorted (point, node) pairs — the ring itself.
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, List[Tuple[int, str]]] = {}
        for node in nodes:
            self.add(node)

    # -- membership ------------------------------------------------------------------

    def add(self, node: str) -> None:
        """Add ``node`` (idempotent)."""
        if node in self._nodes:
            return
        pairs = [(_point(f"{node}#{i}"), node)
                 for i in range(self.replicas)]
        self._nodes[node] = pairs
        for pair in pairs:
            insort(self._points, pair)

    def remove(self, node: str) -> None:
        """Remove ``node`` (idempotent); its keys remap to successors."""
        pairs = self._nodes.pop(node, None)
        if pairs is None:
            return
        dead = set(pairs)
        self._points = [p for p in self._points if p not in dead]

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # -- placement -------------------------------------------------------------------

    def node_for(self, key: str) -> Optional[str]:
        """The shard owning ``key`` (None on an empty ring)."""
        if not self._points:
            return None
        i = bisect_right(self._points, (_point(key), ""))
        if i == len(self._points):
            i = 0  # wrap: the ring is circular
        return self._points[i][1]

    def nodes_for(self, key: str, n: int) -> List[str]:
        """Up to ``n`` distinct shards in clockwise (failover) order.

        The first element is :meth:`node_for`; each further element is
        where the key would land if every earlier one left the ring —
        the retry order that agrees with post-failure remapping.
        """
        if not self._points or n < 1:
            return []
        out: List[str] = []
        start = bisect_right(self._points, (_point(key), ""))
        for off in range(len(self._points)):
            node = self._points[(start + off) % len(self._points)][1]
            if node not in out:
                out.append(node)
                if len(out) >= n:
                    break
        return out

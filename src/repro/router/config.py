"""Router tuning knobs, all in one picklable dataclass."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..server.protocol import MAX_FRAME_BYTES

__all__ = ["RouterConfig"]


def _parse_shard(spec: Union[str, Tuple[str, int]]) -> Tuple[str, int]:
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"shard spec must be 'host:port', got {spec!r}")
    return host, int(port)


@dataclass
class RouterConfig:
    """Configuration of one :class:`repro.router.RouterServer`.

    Two fleet modes:

    * **attached** — ``shards`` lists ``host:port`` of daemons some other
      supervisor owns; the router health-checks and routes to them but
      never starts or stops their processes (``drain`` still fans out).
    * **spawned** — ``shards`` is empty and the router launches
      ``n_shards`` daemons itself (``python -m repro serve --port 0``),
      supervises them, and respawns any that die (``respawn``).

    Health: a shard is marked out of the ring after ``unhealthy_after``
    consecutive failed/timed-out ``health`` probes (or instantly when a
    forward hits a connection error) and re-admitted after one healthy
    probe.  Keys remap to ring successors while it is out and remap back
    on re-admission — cache affinity survives the blip.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: attached-mode shard addresses ("host:port" strings or tuples).
    shards: List[Union[str, Tuple[str, int]]] = field(default_factory=list)
    #: spawned-mode fleet size (used only when ``shards`` is empty).
    n_shards: int = 2
    #: virtual nodes per shard on the consistent-hash ring.
    replicas: int = 64
    #: bound on admitted (queued + in-flight) forwards.
    max_queue: int = 256
    #: concurrent in-flight forwards (the "forward" admission class).
    forward_limit: int = 128
    #: extra ring successors tried when a shard fails mid-forward.
    forward_retries: int = 2
    connect_timeout_s: float = 5.0
    #: seconds between fleet health sweeps (0 disables the prober —
    #: forwards still mark shards out on connection errors).
    health_interval_s: float = 0.5
    health_timeout_s: float = 2.0
    #: consecutive failed probes before a shard is marked out.
    unhealthy_after: int = 2
    #: restart spawned shards whose process died.
    respawn: bool = True
    #: how long a spawned shard may take to report its port.
    spawn_grace_s: float = 30.0
    #: default per-request deadline when the client sends none.
    default_deadline_s: Optional[float] = None
    drain_grace_s: float = 60.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    trace_log: Optional[str] = None
    trace_buffer: int = 4096
    # -- spawned-shard settings (ignored in attached mode) ----------------------------
    #: compile cache directory shared by every spawned shard (None keeps
    #: caches per-shard; affinity makes per-shard caches effective).
    cache_dir: Optional[str] = None
    shard_workers: int = 2
    shard_max_queue: int = 64
    shard_inline_limit: int = 1
    shard_cache_maxsize: int = 256
    #: width-provenance sampling stride passed to every spawned shard
    #: (see :attr:`repro.server.ServerConfig.diag_sample_every`).
    shard_diag_sample_every: int = 16

    def __post_init__(self) -> None:
        self.shards = [_parse_shard(s) for s in self.shards]
        if not self.shards and self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.forward_limit < 1:
            raise ValueError("forward_limit must be >= 1")
        if self.forward_retries < 0:
            raise ValueError("forward_retries must be >= 0")
        if self.unhealthy_after < 1:
            raise ValueError("unhealthy_after must be >= 1")
        if self.health_interval_s < 0:
            raise ValueError("health_interval_s must be >= 0")
        if self.shard_diag_sample_every < 0:
            raise ValueError("shard_diag_sample_every must be >= 0")

"""Exception hierarchy for the SafeGen reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "TypeCheckError",
    "CompileError",
    "AnalysisError",
    "SoundnessError",
    "UnsupportedFeatureError",
    "AmbiguousComparisonError",
    "DomainError",
    "format_cli_error",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParseError(ReproError):
    """Raised by the C frontend on malformed input.

    Carries the source location when available.
    """

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        self.raw_message = message
        if line is not None:
            message = f"line {line}" + (f", col {col}" if col is not None else "") + f": {message}"
        super().__init__(message)


class TypeCheckError(ReproError):
    """Raised when the input program fails semantic analysis."""


class CompileError(ReproError):
    """Raised when a well-formed program cannot be transformed."""


class UnsupportedFeatureError(CompileError):
    """The input uses a C feature outside the supported subset."""


class AnalysisError(ReproError):
    """Raised by the static analysis (DAG construction / max-reuse ILP)."""


class SoundnessError(ReproError):
    """An internal invariant protecting soundness was violated.

    This should never escape to users; it exists so tests and the runtime
    can fail loudly rather than return an unsound range.
    """


class AmbiguousComparisonError(ReproError):
    """A comparison between overlapping ranges could not be decided and the
    active policy forbids guessing."""


class DomainError(ReproError):
    """Raised by the domain analysis engine (:mod:`repro.domain`) when a
    query is ill-posed: a degenerate or unsplittable input box, a program
    whose configuration cannot produce sound per-row verdicts (non-AA mode,
    central decision policy, unbatchable config), or a query parameter out
    of range."""


def format_cli_error(exc: ReproError, path: str) -> str:
    """Compiler-style ``file:line:col: message`` rendering of an error.

    Location components are dropped when the exception does not carry them
    (only :class:`ParseError` does today).
    """
    line = getattr(exc, "line", None)
    col = getattr(exc, "col", None)
    message = getattr(exc, "raw_message", None) or str(exc)
    loc = path
    if line is not None:
        loc += f":{line}"
        if col is not None:
            loc += f":{col}"
    return f"{loc}: {message}"

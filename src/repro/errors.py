"""Exception hierarchy for the SafeGen reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ParseError",
    "TypeCheckError",
    "CompileError",
    "AnalysisError",
    "SoundnessError",
    "UnsupportedFeatureError",
    "AmbiguousComparisonError",
]


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ParseError(ReproError):
    """Raised by the C frontend on malformed input.

    Carries the source location when available.
    """

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"line {line}" + (f", col {col}" if col is not None else "") + f": {message}"
        super().__init__(message)


class TypeCheckError(ReproError):
    """Raised when the input program fails semantic analysis."""


class CompileError(ReproError):
    """Raised when a well-formed program cannot be transformed."""


class UnsupportedFeatureError(CompileError):
    """The input uses a C feature outside the supported subset."""


class AnalysisError(ReproError):
    """Raised by the static analysis (DAG construction / max-reuse ILP)."""


class SoundnessError(ReproError):
    """An internal invariant protecting soundness was violated.

    This should never escape to users; it exists so tests and the runtime
    can fail loudly rather than return an unsound range.
    """


class AmbiguousComparisonError(ReproError):
    """A comparison between overlapping ranges could not be decided and the
    active policy forbids guessing."""

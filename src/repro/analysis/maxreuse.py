"""The max-reuse problem: priority assignments, feasibility, total profit
(Section VI-A, Defs. 2-4 and eq. (9))."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .dag import ComputationDag
from .reuse import ReuseCandidate

__all__ = ["PriorityAssignment", "MaxReuseProblem"]


@dataclass
class PriorityAssignment:
    """A priority assignment π (Def. 2) plus the selected reuses Q_π.

    ``pi[s]`` is the set of nodes where symbol ``ε_s`` is prioritized;
    ``selected`` is the set of (s, t) pairs whose reuse connection is fully
    covered (eq. (8)).
    """

    pi: Dict[int, Set[int]] = field(default_factory=dict)
    selected: List[ReuseCandidate] = field(default_factory=list)

    @property
    def total_profit(self) -> int:
        """ρ_tot(π), eq. (7)."""
        return sum(c.profit for c in self.selected)

    def load(self) -> Dict[int, int]:
        """Per-node priority load |P_v| (eq. (9) left-hand side)."""
        out: Dict[int, int] = defaultdict(int)
        for s, nodes in self.pi.items():
            for v in nodes:
                out[v] += 1
        return dict(out)

    def is_feasible(self, k: int) -> bool:
        """eq. (9): every node prioritizes at most k-1 symbols."""
        return all(v <= k - 1 for v in self.load().values())

    def is_empty(self) -> bool:
        return not self.selected

    def prioritized_sources_at(self, v: int) -> List[int]:
        """P_v: the symbols prioritized at node v."""
        return [s for s, nodes in self.pi.items() if v in nodes]


@dataclass
class MaxReuseProblem:
    """Problem instance: a DAG, candidate reuses, and the capacity k.

    ``capacities`` optionally overrides the uniform ``k - 1`` priority
    budget per node — the first extension the paper's Section VI-B lists
    ("assigning to each node a different capacity of symbols").
    """

    dag: ComputationDag
    candidates: List[ReuseCandidate]
    k: int
    capacities: Dict[int, int] = field(default_factory=dict)

    def capacity_of(self, node: int) -> int:
        """Priority budget of a node (|P_v| bound, eq. (9))."""
        return self.capacities.get(node, self.k - 1)

    def verify(self, assignment: PriorityAssignment) -> None:
        """Sanity-check an assignment against this instance; raises on
        violations (used by tests and after solver runs)."""
        for v, load in assignment.load().items():
            if load > self.capacity_of(v):
                raise ValueError(
                    f"assignment violates the capacity constraint at {v}"
                )
        cand_index: Dict[Tuple[int, int], List[ReuseCandidate]] = {}
        for c in self.candidates:
            cand_index.setdefault((c.s, c.t), []).append(c)
        for c in assignment.selected:
            refs = cand_index.get((c.s, c.t))
            if not refs:
                raise ValueError(f"selected reuse {(c.s, c.t)} is not a candidate")
            if not any(ref.connection <= assignment.pi.get(c.s, set())
                       for ref in refs):
                raise ValueError(
                    f"reuse {(c.s, c.t)} selected but its connection is not "
                    "covered by pi"
                )

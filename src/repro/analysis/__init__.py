"""Static analysis to prioritize symbols (Section VI).

Pipeline: TAC AST → (optional unroll) → computation DAG → reuse candidates →
max-reuse problem → ILP (or greedy) solution → per-operation pragmas.
"""

from .annotate import apply_pragmas, priority_pragmas
from .dag import ComputationDag, DagNode, build_dag
from .greedy import solve_greedy
from .ilp import solve_ilp
from .maxreuse import MaxReuseProblem, PriorityAssignment
from .reuse import ReuseCandidate, find_reuse_candidates
from .unroll import UNROLL_BUDGET_DEFAULT, unroll_for_analysis

__all__ = [
    "ComputationDag",
    "DagNode",
    "MaxReuseProblem",
    "PriorityAssignment",
    "ReuseCandidate",
    "UNROLL_BUDGET_DEFAULT",
    "apply_pragmas",
    "build_dag",
    "find_reuse_candidates",
    "priority_pragmas",
    "solve_greedy",
    "solve_ilp",
    "unroll_for_analysis",
]

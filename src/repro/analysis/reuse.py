"""Reuse connections and the max-reuse problem data model (Section VI-A).

Definitions (paper):

* **Reuse connection** (Def. 1): node ``s`` is *reused* at node ``t`` when
  two paths lead from ``s`` to two distinct parents of ``t``; the connection
  is the union of the two paths minus ``{s}`` — the nodes in which ``ε_s``
  must be prioritized for the cancellation at ``t`` to be possible.
* **Reuse profit** (Def. 3): ``ρ(s)`` = number of ancestors of ``s``
  including ``s`` — high-profit symbols sit atop deep subcomputations and
  carry correspondingly large accumulated coefficients.

We enumerate one (shortest) reuse connection per ``(s, t)`` pair, matching
the paper's base ILP formulation (the multi-connection variant is listed as
an extension there).  Candidate sources are restricted to nodes with
out-degree >= 2 — a node with a single consumer can only reach two parents
through that consumer, and then the consumer itself is the better (cheaper,
same cancellation) candidate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from .dag import ComputationDag

__all__ = ["ReuseCandidate", "find_reuse_candidates"]


@dataclass(frozen=True)
class ReuseCandidate:
    """One column of the paper's R_s matrix: a reuse of ``s`` at ``t``
    through the given connection."""

    s: int
    t: int
    connection: FrozenSet[int]
    profit: int

    def __repr__(self) -> str:
        return (f"ReuseCandidate(s={self.s}, t={self.t}, "
                f"conn={sorted(self.connection)}, profit={self.profit})")


def _bfs_tree(dag: ComputationDag, source: int) -> Dict[int, Optional[int]]:
    """Shortest-path tree (by edge count) from ``source`` along forward
    edges; maps reachable node -> its BFS predecessor."""
    parent: Dict[int, Optional[int]] = {source: None}
    q = deque([source])
    while q:
        cur = q.popleft()
        for nxt in dag.children(cur):
            if nxt not in parent:
                parent[nxt] = cur
                q.append(nxt)
    return parent


def _path_from(parent: Dict[int, Optional[int]], target: int) -> List[int]:
    """Path source..target (inclusive) using the BFS tree."""
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def _enumerate_paths(dag: ComputationDag, s: int, t: int,
                     limit: int, max_len: int = 64) -> List[List[int]]:
    """Up to ``limit`` simple paths s -> t (DFS; used by the
    multi-connection extension)."""
    out: List[List[int]] = []
    path = [s]

    def dfs(cur: int) -> None:
        if len(out) >= limit or len(path) > max_len:
            return
        if cur == t:
            out.append(list(path))
            return
        for nxt in dag.children(cur):
            if nxt <= t:  # node ids are topological: no point going past t
                path.append(nxt)
                dfs(nxt)
                path.pop()
            if len(out) >= limit:
                return

    dfs(s)
    return out


def find_reuse_candidates(dag: ComputationDag,
                          max_candidates: int = 20000,
                          connections_per_pair: int = 1,
                          ) -> List[ReuseCandidate]:
    """Reuse candidates: (s, t) pairs with reuse connections.

    Only ``t`` nodes whose two parents are distinct can host a reuse, and
    only branching sources (out-degree >= 2) are considered (see module
    docstring).  By default one shortest connection per pair is produced
    (the paper's base formulation); ``connections_per_pair > 1`` enables
    the multi-connection extension of Section VI-B — the ILP then chooses
    among alternative connections per pair.  Candidates are returned in
    deterministic order.
    """
    profits = dag.all_profits()
    sources = [n.id for n in dag.nodes if len(dag.children(n.id)) >= 2]
    # Targets: op nodes with two distinct parents.
    targets: List[Tuple[int, int, int]] = []
    for n in dag.nodes:
        if n.kind != "op":
            continue
        distinct = sorted(set(n.preds))
        if len(distinct) >= 2:
            # Binary ops have exactly two; take every parent pair.
            for i in range(len(distinct)):
                for j in range(i + 1, len(distinct)):
                    targets.append((n.id, distinct[i], distinct[j]))

    out: List[ReuseCandidate] = []
    for s in sources:
        tree = _bfs_tree(dag, s)
        for (t, u, v) in targets:
            if u not in tree or v not in tree:
                continue
            if s == t:
                continue
            if connections_per_pair <= 1:
                path_u = _path_from(tree, u)
                path_v = _path_from(tree, v)
                conns = [frozenset((set(path_u) | set(path_v)) - {s})]
            else:
                paths_u = _enumerate_paths(dag, s, u, connections_per_pair)
                paths_v = _enumerate_paths(dag, s, v, connections_per_pair)
                seen = set()
                conns = []
                for pu in paths_u:
                    for pv in paths_v:
                        conn = frozenset((set(pu) | set(pv)) - {s})
                        if conn not in seen:
                            seen.add(conn)
                            conns.append(conn)
                conns.sort(key=lambda c: (len(c), sorted(c)))
                conns = conns[:connections_per_pair]
            for conn in conns:
                out.append(ReuseCandidate(
                    s=s, t=t, connection=conn, profit=profits[s]
                ))
                if len(out) >= max_candidates:
                    return out
    return out

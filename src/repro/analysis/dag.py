"""Computation-DAG construction from the TAC'd AST (Section VI-C).

Each node is a floating-point operation (anchored to its TAC ``stmt_id``)
or a source (an input parameter / the first read of an array).  Edges are
data dependencies.  As in the paper:

* loop-carried dependencies are dropped (the body is traversed once, so a
  read before a redefinition sees the pre-loop definition);
* optionally, counting loops with constant bounds can be fully unrolled
  first (:mod:`repro.analysis.unroll`) to expose cross-iteration reuse.

Array state is tracked per concrete element when the subscripts are
compile-time constants (which they are after full unrolling) and collapses
to whole-array granularity otherwise — a sound coarsening for an analysis
whose output only ever *improves* accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import AnalysisError
from ..compiler import cast as A
from ..compiler.typecheck import MATH_FUNCS

__all__ = ["DagNode", "ComputationDag", "build_dag"]


@dataclass
class DagNode:
    id: int
    kind: str  # 'input' | 'op'
    var: str  # variable (or array) name holding the node's value
    stmt_id: Optional[int] = None  # TAC anchor for op nodes
    op: Optional[str] = None  # '+', '*', 'sqrt', ...
    preds: List[int] = field(default_factory=list)

    def __repr__(self) -> str:
        return f"DagNode({self.id}, {self.kind}:{self.var}, op={self.op})"


class ComputationDag:
    """A DAG of floating-point operations.

    Besides the graph itself, the builder records the *definition event
    stream*: every time a variable (or concrete array element) starts
    holding a node's value — through an op, an input read, or a plain copy
    — an event is appended.  The annotator uses it to pick, for each
    prioritized symbol, a variable that still holds that symbol's value when
    the protected operation runs (Section VI-C's runtime gathering).
    """

    def __init__(self) -> None:
        self.nodes: List[DagNode] = []
        self.succs: Dict[int, List[int]] = {}
        # var/element key -> [(event order, node id)]; node id -1 = unknown
        self.def_events: Dict[str, List[Tuple[int, int]]] = {}
        # node id -> event order at creation
        self.node_order: Dict[int, int] = {}
        self._event = 0

    def record_def(self, var: str, node_id: int) -> None:
        """Record that ``var`` now holds the value of ``node_id``."""
        self._event += 1
        self.def_events.setdefault(var, []).append((self._event, node_id))

    def record_node_creation(self, node_id: int) -> None:
        self._event += 1
        self.node_order[node_id] = self._event

    def holders_of(self, node_id: int) -> List[Tuple[str, int]]:
        """All (var, event order) pairs where var was bound to the node."""
        out = []
        for var, events in self.def_events.items():
            for order, nid in events:
                if nid == node_id:
                    out.append((var, order))
        return out

    def add_node(self, kind: str, var: str, stmt_id: Optional[int] = None,
                 op: Optional[str] = None,
                 preds: Optional[List[int]] = None) -> int:
        nid = len(self.nodes)
        node = DagNode(id=nid, kind=kind, var=var, stmt_id=stmt_id, op=op,
                       preds=list(preds or []))
        self.nodes.append(node)
        self.succs[nid] = []
        for p in node.preds:
            self.succs[p].append(nid)
        self.record_node_creation(nid)
        return nid

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def parents(self, nid: int) -> List[int]:
        return self.nodes[nid].preds

    def children(self, nid: int) -> List[int]:
        return self.succs[nid]

    def ancestors(self, nid: int) -> Set[int]:
        """All strict ancestors of a node."""
        seen: Set[int] = set()
        stack = list(self.nodes[nid].preds)
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.nodes[cur].preds)
        return seen

    def profit(self, nid: int) -> int:
        """Reuse profit rho(s): number of ancestors including s (Def. 3)."""
        return len(self.ancestors(nid)) + 1

    def all_profits(self) -> Dict[int, int]:
        """Profits for all nodes in one topological sweep (set-union DP)."""
        anc_sets: Dict[int, Set[int]] = {}
        for node in self.nodes:  # nodes are created in topological order
            s: Set[int] = set()
            for p in node.preds:
                s.add(p)
                s |= anc_sets[p]
            anc_sets[node.id] = s
        return {nid: len(s) + 1 for nid, s in anc_sets.items()}

    def topological_order(self) -> List[int]:
        return list(range(len(self.nodes)))  # construction order is topo

    def to_networkx(self):
        """Export as a networkx.DiGraph (for inspection / plotting)."""
        import networkx as nx

        g = nx.DiGraph()
        for n in self.nodes:
            g.add_node(n.id, kind=n.kind, var=n.var, op=n.op,
                       stmt_id=n.stmt_id)
        for n in self.nodes:
            for p in n.preds:
                g.add_edge(p, n.id)
        return g


def build_dag(func: A.FuncDef) -> ComputationDag:
    """Build the computation DAG for a (TAC-transformed) function."""
    if func.body is None:
        raise AnalysisError(f"function {func.name!r} has no body")
    builder = _DagBuilder()
    for p in func.params:
        if isinstance(p.type, A.CType) and p.type.is_float():
            node = builder.dag.add_node("input", p.name)
            builder.env[p.name] = node
            builder.dag.record_def(p.name, node)
        elif isinstance(p.type, (A.ArrayType, A.PointerType)):
            base = p.type.base_scalar() if isinstance(p.type, A.ArrayType) \
                else _pointer_base(p.type)
            if isinstance(base, A.CType) and base.is_float():
                builder.array_default[p.name] = None  # lazily created inputs
    builder.stmt(func.body)
    return builder.dag


def _pointer_base(t):
    while isinstance(t, (A.PointerType, A.ArrayType)):
        t = t.pointee if isinstance(t, A.PointerType) else t.elem
    return t


class _DagBuilder:
    def __init__(self) -> None:
        self.dag = ComputationDag()
        # scalar / element key ('A' or 'A[1][2]') -> defining node id
        self.env: Dict[str, int] = {}
        # float arrays whose elements become fresh inputs on first read
        self.array_default: Dict[str, Optional[int]] = {}

    # -- keys -------------------------------------------------------------------

    def _elem_key(self, e: A.Index) -> Tuple[str, Optional[str]]:
        """(array name, element key or None when the index is symbolic)."""
        idx_parts: List[Optional[str]] = []
        cur: A.Expr = e
        while isinstance(cur, A.Index):
            if isinstance(cur.index, A.IntLit):
                idx_parts.append(str(cur.index.value))
            else:
                idx_parts.append(None)
            cur = cur.base
        if not isinstance(cur, A.Ident):
            return "?", None
        name = cur.name
        if any(p is None for p in idx_parts):
            return name, None
        return name, f"{name}[{']['.join(reversed(idx_parts))}]"

    def _read_array(self, e: A.Index) -> Optional[int]:
        name, key = self._elem_key(e)
        if key is not None and key in self.env:
            return self.env[key]
        if name in self.env:  # whole-array definition dominates
            return self.env[name]
        if name in self.array_default:
            # First read of an input array (element): create a source node.
            node = self.dag.add_node("input", key or name)
            if key is not None:
                self.env[key] = node
            else:
                self.env[name] = node
            self.dag.record_def(key or name, node)
            return node
        return None

    def _write_array(self, e: A.Index, node: int) -> str:
        name, key = self._elem_key(e)
        if key is not None:
            self.env[key] = node
            self.dag.record_def(key, node)
            return name
        # Symbolic subscript: collapse to whole-array granularity; every
        # element binding becomes unknown (kill events for the annotator).
        stale = [k for k in self.env if k.startswith(name + "[")]
        for k in stale:
            del self.env[k]
            self.dag.record_def(k, -1)
        self.env[name] = node
        self.dag.record_def(name, node)
        return name

    # -- expression -> node --------------------------------------------------------

    def value_of(self, e: A.Expr) -> Optional[int]:
        """Node producing the value of a *simple* (TAC) expression."""
        if isinstance(e, A.Ident):
            return self.env.get(e.name)
        if isinstance(e, A.Index):
            return self._read_array(e)
        if isinstance(e, A.Cast):
            return self.value_of(e.expr)
        return None  # literals / integer expressions carry no symbols

    def op_node(self, e: A.Expr, var: str, stmt_id: Optional[int]) -> Optional[int]:
        """Create an op node for a TAC operation expression."""
        if isinstance(e, A.BinOp) and e.op in ("+", "-", "*", "/"):
            preds = [self.value_of(e.lhs), self.value_of(e.rhs)]
            preds = [p for p in preds if p is not None]
            return self.dag.add_node("op", var, stmt_id, e.op, preds)
        if isinstance(e, A.UnOp) and e.op == "-":
            p = self.value_of(e.operand)
            return self.dag.add_node("op", var, stmt_id, "neg",
                                     [p] if p is not None else [])
        if isinstance(e, A.Call) and e.name in MATH_FUNCS:
            preds = [self.value_of(a) for a in e.args]
            preds = [p for p in preds if p is not None]
            return self.dag.add_node("op", var, stmt_id, e.name, preds)
        return None

    # -- statements -------------------------------------------------------------------

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Compound):
            for sub in s.stmts:
                self.stmt(sub)
        elif isinstance(s, A.Decl):
            if isinstance(s.type, A.CType) and s.type.is_float() \
                    and s.init is not None:
                node = self.op_node(s.init, s.name, s.stmt_id)
                if node is None:
                    node = self.value_of(s.init)
                if node is not None:
                    self.env[s.name] = node
                    self.dag.record_def(s.name, node)
            elif isinstance(s.type, A.ArrayType):
                base = s.type.base_scalar()
                if isinstance(base, A.CType) and base.is_float():
                    # Local array of exact zeros: no symbols until written.
                    pass
        elif isinstance(s, A.ExprStmt):
            e = s.expr
            if isinstance(e, A.Assign) and e.op == "=":
                is_float = isinstance(e.target.ty, A.CType) and \
                    e.target.ty.is_float()
                if not is_float:
                    return
                var = e.target.name if isinstance(e.target, A.Ident) else \
                    self._elem_key(e.target)[0] if isinstance(e.target, A.Index) \
                    else "?"
                node = self.op_node(e.value, var, s.stmt_id)
                if node is None:
                    node = self.value_of(e.value)
                if node is None:
                    return
                if isinstance(e.target, A.Ident):
                    self.env[e.target.name] = node
                    self.dag.record_def(e.target.name, node)
                elif isinstance(e.target, A.Index):
                    self._write_array(e.target, node)
        elif isinstance(s, A.If):
            # Both branches are traversed; later definitions win (the
            # benchmarks have no float-producing branches — see DESIGN.md).
            self.stmt(s.then)
            if s.els is not None:
                self.stmt(s.els)
        elif isinstance(s, A.For):
            if s.init is not None:
                self.stmt(s.init)
            self.stmt(s.body)  # single traversal: loop-carried deps dropped
        elif isinstance(s, (A.While, A.DoWhile)):
            self.stmt(s.body)
        # Return / Break / Continue / Pragma: nothing to record.

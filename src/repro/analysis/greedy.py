"""Greedy fallback solver for the max-reuse problem.

The exact ILP (see :mod:`repro.analysis.ilp`) scales to the paper's
benchmark DAGs, but unrolled instances can grow large.  This polynomial
heuristic processes candidates in decreasing profit density
(profit / connection size) and accepts a candidate when its connection can
be added without violating any node's ``k-1`` capacity — counting already-
prioritized ``(s, v)`` pairs only once, so overlapping reuses of the same
source are nearly free, exactly the structure the optimal solutions exploit
(cf. π₁ in Fig. 5).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Set

from .maxreuse import MaxReuseProblem, PriorityAssignment

__all__ = ["solve_greedy"]


def solve_greedy(problem: MaxReuseProblem) -> PriorityAssignment:
    if not problem.candidates or (problem.k < 2 and not problem.capacities):
        return PriorityAssignment()
    load: Dict[int, int] = defaultdict(int)
    pi: Dict[int, Set[int]] = defaultdict(set)
    assignment = PriorityAssignment()

    ordered = sorted(
        problem.candidates,
        key=lambda c: (-c.profit / max(len(c.connection), 1), c.s, c.t),
    )
    taken_pairs = set()
    for cand in ordered:
        if (cand.s, cand.t) in taken_pairs:
            continue
        new_nodes = [v for v in cand.connection if v not in pi[cand.s]]
        if any(load[v] + 1 > problem.capacity_of(v) for v in new_nodes):
            continue
        for v in new_nodes:
            load[v] += 1
            pi[cand.s].add(v)
        assignment.selected.append(cand)
        taken_pairs.add((cand.s, cand.t))

    assignment.pi = {s: nodes for s, nodes in pi.items() if nodes}
    problem.verify(assignment)
    return assignment

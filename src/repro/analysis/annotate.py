"""From a priority assignment to per-operation pragmas (Section VI-C).

The runtime cost of prioritization comes from gathering symbol ids, so (as
in the paper) each operation prioritizes the symbols of *one* variable: for
node ``v`` we look at the symbols prioritized there (``P_v``), pick the one
with the highest reuse profit, and prioritize the variable of the node that
generates it.  The result is a map ``stmt_id -> variable name`` which the
driver applies to the TAC AST (equivalent to inserting
``#pragma safegen prioritize(var)`` lines).

When the analysis ran on an unrolled copy of the program, several DAG nodes
share one ``stmt_id``; the variable chosen most often (ties: highest
profit) wins.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Optional

from ..compiler import cast as A
from .dag import ComputationDag
from .maxreuse import PriorityAssignment

__all__ = ["priority_pragmas", "apply_pragmas"]


def priority_pragmas(dag: ComputationDag,
                     assignment: PriorityAssignment,
                     vote_threshold: float = 0.2) -> Dict[int, str]:
    """Map each annotated ``stmt_id`` to the variable to prioritize.

    Runtime gathering reads the *current* value of the chosen variable, so a
    pragma is only meaningful when, at every execution of the annotated
    statement, the variable still holds the value of the DAG source node.
    Node creation order is execution order, so that is exactly: the source
    ``s`` is the latest definition of its variable preceding the consuming
    node.  Candidates violating this *freshness* condition cannot vote —
    protecting them would gather unrelated (stale) symbols.

    When the same statement is executed by many unrolled copies, one
    variable must win a ``vote_threshold`` fraction of *all* prioritization
    requests on that statement; otherwise no single gather variable
    represents the analysis' intent (e.g. array elements rotating through a
    loop) and annotating would spend fusion capacity on noise.  Unanimous
    single-variable patterns (henon's loop-carried ``x``) clear the
    threshold easily; rotating-element patterns (fgm's matrix rows) do not
    — see EXPERIMENTS.md.
    """
    import bisect

    profits = dag.all_profits()

    # Invert the definition-event stream: node -> [(var, event order)].
    holders: Dict[int, list] = defaultdict(list)
    for var, events in dag.def_events.items():
        for order, nid in events:
            if nid >= 0:
                holders[nid].append((var, order))

    def fresh_var_for(s: int, t: int) -> str | None:
        """A variable that still holds node s's value when node t runs."""
        t_order = dag.node_order[t]
        best = None
        for var, order in holders.get(s, ()):
            if order >= t_order:
                continue
            events = dag.def_events[var]
            # Last definition of `var` strictly before t must be this one.
            idx = bisect.bisect_left(events, (t_order, -10)) - 1
            if idx >= 0 and events[idx][1] == s:
                # Prefer plain identifiers over element references.
                if best is None or (best and "[" in best and "[" not in var):
                    best = var
        return best

    votes: Dict[int, Counter] = defaultdict(Counter)
    total: Counter = Counter()
    best_profit: Dict[int, Dict[str, int]] = defaultdict(dict)
    for cand in assignment.selected:
        for v in cand.connection:
            node = dag.nodes[v]
            if node.kind != "op" or node.stmt_id is None:
                continue
            total[node.stmt_id] += 1
            var = fresh_var_for(cand.s, v)
            if var is not None:
                votes[node.stmt_id][var] += 1
                prev = best_profit[node.stmt_id].get(var, 0)
                best_profit[node.stmt_id][var] = max(prev, profits[cand.s])

    out: Dict[int, str] = {}
    for stmt_id, counter in votes.items():
        var = max(counter, key=lambda name: (counter[name],
                                             best_profit[stmt_id][name], name))
        if counter[var] < vote_threshold * total[stmt_id]:
            continue
        out[stmt_id] = var
    return out


def apply_pragmas(func: A.FuncDef, pragmas: Dict[int, str]) -> int:
    """Set the ``prioritize`` field on the TAC statements named by
    ``pragmas``; returns the number of statements annotated."""
    count = 0

    def visit(s) -> None:
        nonlocal count
        if isinstance(s, (A.Decl, A.ExprStmt)):
            sid = getattr(s, "stmt_id", None)
            if sid is not None and sid in pragmas:
                var = pragmas[sid]
                # A statement cannot prioritize the variable it defines
                # (the symbols do not exist yet at gather time).
                defines = s.name if isinstance(s, A.Decl) else (
                    s.expr.target.name
                    if isinstance(s.expr, A.Assign)
                    and isinstance(s.expr.target, A.Ident) else None
                )
                if var != defines:
                    s.prioritize = var
                    count += 1
        for f in getattr(s, "__dataclass_fields__", {}):
            v = getattr(s, f)
            if isinstance(v, A.Stmt):
                visit(v)
            elif isinstance(v, list):
                for item in v:
                    if isinstance(item, A.Stmt):
                        visit(item)

    visit(func.body)
    return count

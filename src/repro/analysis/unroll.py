"""Full unrolling of constant-trip-count loops (analysis preprocessing).

The DAG analysis drops loop-carried dependencies; unrolling a counting loop
with known bounds before building the DAG re-exposes the cross-iteration
reuse (e.g. the Henon map reusing ``x`` across iterations).  The unrolled
AST is used *only* for the analysis — code generation still sees the rolled
program — so the node-to-source mapping goes through ``stmt_id``, which the
unroller preserves (many unrolled nodes share one ``stmt_id``).

Unrolling substitutes the loop variable as an ``IntLit`` everywhere, which
also makes array subscripts constant and lets the DAG builder track array
state per element.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

from ..compiler import cast as A

__all__ = ["unroll_for_analysis", "UNROLL_BUDGET_DEFAULT"]

UNROLL_BUDGET_DEFAULT = 4000


def unroll_for_analysis(func: A.FuncDef,
                        budget: int = UNROLL_BUDGET_DEFAULT,
                        int_params: Optional[Dict[str, int]] = None,
                        ) -> A.FuncDef:
    """Return a deep copy of ``func`` with constant counting loops unrolled.

    ``budget`` caps the total number of statements produced; a loop whose
    expansion would exceed it is left rolled (the analysis then just sees a
    single iteration).  ``int_params`` supplies concrete values for integer
    parameters (e.g. an iteration-count argument) so their loops can unroll.
    """
    clone = copy.deepcopy(func)
    u = _Unroller(budget, dict(int_params or {}))
    clone.body = A.Compound(loc=clone.body.loc, stmts=u.block(clone.body.stmts))
    return clone


class _Unroller:
    def __init__(self, budget: int, bindings: Dict[str, int]) -> None:
        self.budget = budget
        self.emitted = 0
        self.bindings = bindings  # known integer values (loop vars, params)

    # -- integer evaluation --------------------------------------------------------

    def int_value(self, e: Optional[A.Expr]) -> Optional[int]:
        if e is None:
            return None
        if isinstance(e, A.IntLit):
            return e.value
        if isinstance(e, A.Ident):
            return self.bindings.get(e.name)
        if isinstance(e, A.BinOp):
            l, r = self.int_value(e.lhs), self.int_value(e.rhs)
            if l is None or r is None:
                return None
            try:
                return {
                    "+": lambda: l + r,
                    "-": lambda: l - r,
                    "*": lambda: l * r,
                    "/": lambda: int(l / r) if r != 0 else None,
                    "%": lambda: l - r * int(l / r) if r != 0 else None,
                    "<<": lambda: l << r,
                    ">>": lambda: l >> r,
                    "==": lambda: int(l == r),
                    "!=": lambda: int(l != r),
                    "<": lambda: int(l < r),
                    "<=": lambda: int(l <= r),
                    ">": lambda: int(l > r),
                    ">=": lambda: int(l >= r),
                    "&&": lambda: int(bool(l) and bool(r)),
                    "||": lambda: int(bool(l) or bool(r)),
                    "&": lambda: l & r,
                    "|": lambda: l | r,
                    "^": lambda: l ^ r,
                }[e.op]()
            except KeyError:
                return None
        if isinstance(e, A.UnOp) and e.op == "-":
            v = self.int_value(e.operand)
            return None if v is None else -v
        if isinstance(e, A.UnOp) and e.op == "!":
            v = self.int_value(e.operand)
            return None if v is None else int(not v)
        return None

    # -- substitution -----------------------------------------------------------------

    def _subst(self, node, name: str, value: int):
        """Replace reads of ``name`` by IntLit(value) (in place)."""
        for f in getattr(node, "__dataclass_fields__", {}):
            v = getattr(node, f)
            if isinstance(v, A.Ident) and v.name == name:
                lit = A.IntLit(loc=v.loc, value=value)
                lit.ty = v.ty
                setattr(node, f, lit)
            elif isinstance(v, A.Node):
                self._subst(v, name, value)
            elif isinstance(v, list):
                for i, item in enumerate(v):
                    if isinstance(item, A.Ident) and item.name == name:
                        lit = A.IntLit(loc=item.loc, value=value)
                        lit.ty = item.ty
                        v[i] = lit
                    elif isinstance(item, A.Node):
                        self._subst(item, name, value)

    # -- unrolling ---------------------------------------------------------------------

    def block(self, stmts: List[A.Stmt]) -> List[A.Stmt]:
        out: List[A.Stmt] = []
        for s in stmts:
            out.extend(self.stmt(s))
        return out

    def stmt(self, s: A.Stmt) -> List[A.Stmt]:
        if isinstance(s, A.Compound):
            return [A.Compound(loc=s.loc, stmts=self.block(s.stmts))]
        if isinstance(s, A.For):
            return self.for_stmt(s)
        if isinstance(s, (A.While, A.DoWhile)):
            s.body = A.Compound(stmts=self.block(
                s.body.stmts if isinstance(s.body, A.Compound) else [s.body]))
            return [s]
        if isinstance(s, A.If):
            cond_val = self.int_value(s.cond)
            if cond_val is not None:
                chosen = s.then if cond_val else s.els
                if chosen is None:
                    return []
                return self.stmt(chosen)
            s.then = A.Compound(stmts=self.block([s.then]))
            if s.els is not None:
                s.els = A.Compound(stmts=self.block([s.els]))
            return [s]
        if isinstance(s, A.Decl) and isinstance(s.type, A.CType) \
                and s.type.is_integer():
            v = self.int_value(s.init)
            if v is not None:
                self.bindings[s.name] = v
            else:
                self.bindings.pop(s.name, None)
            return [s]
        if isinstance(s, A.ExprStmt) and isinstance(s.expr, A.Assign) \
                and isinstance(s.expr.target, A.Ident) \
                and isinstance(s.expr.target.ty, A.CType) \
                and s.expr.target.ty.is_integer():
            name = s.expr.target.name
            v = self.int_value(s.expr.value) if s.expr.op == "=" else None
            if v is not None:
                self.bindings[name] = v
            else:
                self.bindings.pop(name, None)
        self.emitted += 1
        return [s]

    def for_stmt(self, s: A.For) -> List[A.Stmt]:
        header = self._parse_header(s)
        if header is None:
            s.body = A.Compound(stmts=self.block(
                s.body.stmts if isinstance(s.body, A.Compound) else [s.body]))
            return [s]
        var, start, stop, step, inclusive = header
        count = 0
        iters: List[int] = []
        i = start
        while (i <= stop if inclusive else i < stop):
            iters.append(i)
            i += step
            count += 1
            if count > self.budget:
                break
        body_stmts = s.body.stmts if isinstance(s.body, A.Compound) else [s.body]
        body_size = _count_stmts(body_stmts)
        if count > self.budget or self.emitted + count * body_size > self.budget:
            # Too big: keep rolled; analysis sees one iteration.
            s.body = A.Compound(stmts=self.block(list(body_stmts)))
            return [s]
        out: List[A.Stmt] = []
        for value in iters:
            body_copy = copy.deepcopy(body_stmts)
            holder = A.Compound(stmts=body_copy)
            self._subst(holder, var, value)
            self.bindings[var] = value
            out.extend(self.block(holder.stmts))
        self.bindings.pop(var, None)
        return out

    def _parse_header(self, s: A.For):
        """Recognize ``for (i = a; i < b; i += c)``; returns
        (var, start, stop, step, inclusive) or None."""
        if isinstance(s.init, A.Decl) and s.init.init is not None:
            var = s.init.name
            start = self.int_value(s.init.init)
        elif isinstance(s.init, A.ExprStmt) and isinstance(s.init.expr, A.Assign) \
                and isinstance(s.init.expr.target, A.Ident):
            var = s.init.expr.target.name
            start = self.int_value(s.init.expr.value)
        else:
            return None
        if start is None:
            return None
        c = s.cond
        if not (isinstance(c, A.BinOp) and c.op in ("<", "<=")
                and isinstance(c.lhs, A.Ident) and c.lhs.name == var):
            return None
        stop = self.int_value(c.rhs)
        if stop is None:
            return None
        st = s.step
        if isinstance(st, A.UnOp) and st.op in ("++", "p++") \
                and isinstance(st.operand, A.Ident) and st.operand.name == var:
            step = 1
        elif isinstance(st, A.Assign) and st.op == "+=" \
                and isinstance(st.target, A.Ident) and st.target.name == var:
            step = self.int_value(st.value)
            if step is None or step <= 0:
                return None
        else:
            return None
        return var, start, stop, step, c.op == "<="


def _count_stmts(stmts) -> int:
    total = 0
    for s in stmts:
        total += 1
        for f in getattr(s, "__dataclass_fields__", {}):
            v = getattr(s, f)
            if isinstance(v, A.Stmt):
                total += _count_stmts([v])
            elif isinstance(v, list):
                total += _count_stmts([x for x in v if isinstance(x, A.Stmt)])
    return total

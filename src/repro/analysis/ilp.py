"""ILP solution of the max-reuse problem (Section VI-B).

The paper solves the 0/1 program

    maximize    Σ_s ρ(s) · Σ_t q_{s,t}
    subject to  Σ_s p_{s,v} <= k-1          for all v        (capacity)
                p_s covers the reuse connections selected by q_s

with Gurobi.  We linearize the covering constraint in the standard way —
``q_{s,t} <= p_{s,v}`` for every node ``v`` in the reuse connection of
``(s,t)`` — and solve with scipy's HiGHS MILP (the Gurobi substitution noted
in DESIGN.md).  The formulations are equivalent: any (p, q) feasible here
selects exactly the reuses whose connections are fully prioritized.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

from ..errors import AnalysisError
from .maxreuse import MaxReuseProblem, PriorityAssignment

__all__ = ["solve_ilp"]


def solve_ilp(problem: MaxReuseProblem, time_limit: float = 30.0
              ) -> PriorityAssignment:
    """Solve the instance exactly; returns an (optimal) assignment.

    An instance with no candidates yields the empty assignment (this is the
    paper's "no feasible prioritization" outcome on luf).
    """
    from scipy.optimize import Bounds, LinearConstraint, milp

    cands = problem.candidates
    if not cands or (problem.k < 2 and not problem.capacities):
        return PriorityAssignment()

    # Variable layout: first the q variables (one per candidate), then the
    # p_{s,v} variables for every (s, v) that appears in some connection.
    pv_index: Dict[Tuple[int, int], int] = {}
    for c in cands:
        for v in c.connection:
            pv_index.setdefault((c.s, v), 0)
    for i, key in enumerate(sorted(pv_index)):
        pv_index[key] = len(cands) + i
    n_vars = len(cands) + len(pv_index)

    # Objective: maximize profit·q  ->  minimize -profit·q.
    c_vec = np.zeros(n_vars)
    for i, cand in enumerate(cands):
        c_vec[i] = -float(cand.profit)

    # Sparse constraint assembly (dense matrices explode on unrolled DAGs).
    from scipy.sparse import csr_matrix

    data: List[float] = []
    row_idx: List[int] = []
    col_idx: List[int] = []
    ubs: List[float] = []
    n_rows = 0

    # Covering: q_{s,t} - p_{s,v} <= 0.
    for i, cand in enumerate(cands):
        for v in cand.connection:
            row_idx.extend((n_rows, n_rows))
            col_idx.extend((i, pv_index[(cand.s, v)]))
            data.extend((1.0, -1.0))
            ubs.append(0.0)
            n_rows += 1

    # At most one selected connection per (s, t) pair (the multi-connection
    # extension offers alternatives; the profit must be counted once).
    by_pair: Dict[Tuple[int, int], List[int]] = {}
    for i, cand in enumerate(cands):
        by_pair.setdefault((cand.s, cand.t), []).append(i)
    for idxs in by_pair.values():
        if len(idxs) < 2:
            continue
        for idx in idxs:
            row_idx.append(n_rows)
            col_idx.append(idx)
            data.append(1.0)
        ubs.append(1.0)
        n_rows += 1

    # Capacity: Σ_s p_{s,v} <= k-1 per node v.
    by_node: Dict[int, List[int]] = {}
    for (s, v), idx in pv_index.items():
        by_node.setdefault(v, []).append(idx)
    for v, idxs in sorted(by_node.items()):
        for idx in idxs:
            row_idx.append(n_rows)
            col_idx.append(idx)
            data.append(1.0)
        ubs.append(float(problem.capacity_of(v)))
        n_rows += 1

    matrix = csr_matrix((data, (row_idx, col_idx)), shape=(n_rows, n_vars))
    lbs = np.full(n_rows, -np.inf)
    constraints = LinearConstraint(matrix, lbs, np.asarray(ubs))
    res = milp(
        c=c_vec,
        constraints=constraints,
        integrality=np.ones(n_vars),
        bounds=Bounds(0.0, 1.0),
        options={"time_limit": time_limit},
    )
    if res.x is None:
        raise AnalysisError(f"MILP solver failed: {res.message}")

    x = np.round(res.x).astype(int)
    assignment = PriorityAssignment()
    for i, cand in enumerate(cands):
        if x[i] == 1:
            assignment.selected.append(cand)
            assignment.pi.setdefault(cand.s, set()).update(cand.connection)
    # p variables may be set without profit; only connections of selected
    # reuses matter for the runtime (anything else wastes capacity).
    problem.verify(assignment)
    return assignment

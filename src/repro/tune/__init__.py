"""Feedback-directed autotuning (`repro tune`).

Sweep a seeded candidate space around a base configuration through the
batch engine, score it by Pareto dominance over (enclosure width, runtime
float ops, compile+run wall time), diagnose the winner (width origins +
pass timings), and persist the winning :class:`repro.compiler
.CompilerConfig` per *program* (source+entry+version key) so the compile
service — and every daemon/fleet layer above it — transparently serves
the tuned artifact with no client change.
"""

from .report import render_tune_report
from .space import BASELINE_NAME, Candidate, CandidateSpace
from .store import TunedConfigStore, TunedRecord
from .tuner import (CandidateOutcome, TuneBudget, TuneResult, Tuner,
                    tune_objectives)

__all__ = [
    "BASELINE_NAME",
    "Candidate",
    "CandidateOutcome",
    "CandidateSpace",
    "TuneBudget",
    "TuneResult",
    "TunedConfigStore",
    "TunedRecord",
    "Tuner",
    "render_tune_report",
    "tune_objectives",
]

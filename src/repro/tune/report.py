"""Terminal report for one tuning run.

Joins three views the rest of the system already produces: the sweep's
candidate table (scored by the minimized objective triple), the winner's
width attribution (``WidthProfile`` — top origins by share), and the
winner's compile pipeline timings (``PipelineReport``) — the
``diag_output``-style workflow of sweep → diagnose → act, rendered by
delegating the diagnostics half to :func:`repro.obs.diag.render_diag_report`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..obs.diag import render_diag_report

__all__ = ["render_tune_report"]


def _fmt(value: Optional[float], spec: str = "12.6g") -> str:
    if value is None:
        return f"{'-':>12}"
    return format(value, spec)


def _delta(winner: Optional[float], base: Optional[float]) -> str:
    if winner is None or base is None or base == 0:
        return ""
    change = (winner - base) / abs(base)
    if change == 0:
        return "  (=)"
    return f"  ({change:+.1%})"


def render_tune_report(result: Dict[str, Any], n: int = 10,
                       stats: Optional[Dict[str, Any]] = None) -> str:
    """Render a :meth:`repro.tune.TuneResult.to_dict` as the ``repro tune``
    terminal report."""
    lines: List[str] = []
    winner = result.get("winner", {})
    baseline = result.get("baseline", {})
    w_obj = {"width": winner.get("width"), "ops": winner.get("ops"),
             "wall": winner.get("wall")}
    b_obj = {"width": baseline.get("width"), "ops": baseline.get("ops"),
             "wall": baseline.get("wall")}

    lines.append(
        f"tune: {result.get('n_measured', 0)}/{result.get('n_enumerated', 0)}"
        f" candidates measured in {result.get('sweep_s', 0.0):.2f}s"
        f" (seed {result.get('seed', 0)})")
    verdict = "improves on" if result.get("improved") else "keeps"
    lines.append(
        f"winner: {winner.get('name', '?')} [{winner.get('config_name', '?')}"
        f", k={winner.get('k', '?')}] {verdict} baseline"
        f" [{baseline.get('config_name', '?')}, k={baseline.get('k', '?')}]"
        + ("  (persisted)" if result.get("persisted") else ""))
    for label, key in (("enclosure width", "width"),
                       ("runtime float ops", "ops"),
                       ("compile+run wall s", "wall")):
        lines.append(f"  {label:<20} {_fmt(w_obj[key])}  vs "
                     f"{_fmt(b_obj[key])}{_delta(w_obj[key], b_obj[key])}")

    front = result.get("front", [])
    if front:
        lines.append("pareto front (width, ops, wall): " + ", ".join(front))

    candidates = result.get("candidates", [])
    if candidates:
        lines.append("candidates (best width first)")
        lines.append(f"  {'name':<12} {'config':<14} {'width':>12} "
                     f"{'ops':>8} {'wall_s':>9}")

        def sort_key(c):
            width = c.get("width")
            return (width is None, width if width is not None else 0.0,
                    c.get("name", ""))

        shown = sorted([c for c in candidates], key=sort_key)[:n]
        for c in shown:
            if not c.get("ok"):
                lines.append(f"  {c.get('name', '?'):<12} "
                             f"{c.get('config_name', '?'):<14} "
                             f"failed: {str(c.get('error'))[:40]}")
                continue
            ops = c.get("ops")
            wall = c.get("wall")
            lines.append(
                f"  {c.get('name', '?'):<12} {c.get('config_name', '?'):<14}"
                f" {_fmt(c.get('width'))} "
                f"{int(ops) if ops is not None else '-':>8}"
                f" {wall if wall is not None else float('nan'):>9.4f}")
        if len(candidates) > n:
            lines.append(f"  ... {len(candidates) - n} more")

    width = result.get("width")
    if width:
        lines.append("")
        lines.append(f"winner diagnostics ({winner.get('name', '?')})")
        lines.append(render_diag_report(width, pipeline=result.get("pipeline"),
                                        stats=stats, n=n))
    return "\n".join(lines)

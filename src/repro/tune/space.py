"""Seeded candidate enumeration for the autotuner.

The space radiates from a *base* configuration (usually the paper default
``f64a-dsnn`` at some k) along the axes Section VII-A hand-sweeps:

* ``k`` — the bounded-form symbol budget, a ladder around the base k
  (condensation pressure is the main width/cost lever);
* placement — SORTED vs DIRECT_MAPPED symbol slots;
* fusion — which victim a full form condenses (smallest/mean/oldest/random);
* prioritization — protect the max-reuse winners from condensation;
* ``opt`` — the sound TAC optimization passes (cse/dte) on or off, plus a
  pass-ordering variant (dte before cse) when they are on.

Everything is deterministic in (base config, seed): candidates are
enumerated in a fixed order, down-sampling to ``max_candidates`` uses
``random.Random(seed)``, and each RANDOM-fusion candidate derives its
runtime ``config.seed`` from the sweep seed and its own name — two sweeps
with the same seed measure byte-identical configurations (satellite: the
property test in ``tests/tune/test_space.py``).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import replace
from typing import List, Optional

from ..aa import FusionPolicy, PlacementPolicy, Precision
from ..compiler.config import CompilerConfig

__all__ = ["Candidate", "CandidateSpace", "BASELINE_NAME"]

BASELINE_NAME = "baseline"


class Candidate:
    """One configuration to measure, with a stable human-readable name."""

    __slots__ = ("name", "config")

    def __init__(self, name: str, config: CompilerConfig) -> None:
        self.name = name
        self.config = config

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Candidate({self.name}: {self.config.name})"


def _derived_seed(sweep_seed: int, name: str) -> int:
    """A per-candidate RNG seed that depends only on (sweep seed, name)."""
    blob = f"{sweep_seed}:{name}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:4], "big")


def _k_ladder(base_k: int) -> List[int]:
    """k values around the base: halving/doubling plus the paper's floor."""
    ks = {base_k, max(4, base_k // 2), base_k * 2}
    if base_k >= 16:
        ks.add(base_k // 4 * 3)  # one intermediate rung
    return sorted(k for k in ks if k >= 1)


class CandidateSpace:
    """Deterministic enumeration of tuning candidates around a base config.

    ``enumerate()`` returns the baseline first, then every variant, in a
    fixed order; when the full grid exceeds ``max_candidates`` a seeded
    sample of the non-baseline tail is kept (original order preserved).
    """

    def __init__(self, base: CompilerConfig, seed: int = 0) -> None:
        self.base = base
        self.seed = seed

    def enumerate(self, max_candidates: Optional[int] = None
                  ) -> List[Candidate]:
        base = self.base
        out: List[Candidate] = [Candidate(BASELINE_NAME, base)]
        seen = {self._identity(base)}

        if base.mode != "aa" or base.impl != "auto":
            # Interval / library-baseline modes have no symbol-budget or
            # policy axes; only the pipeline knobs apply.
            variants = self._pipeline_variants(base)
        else:
            variants = self._aa_variants(base)
        for cand in variants:
            ident = self._identity(cand.config)
            if ident in seen:
                continue
            seen.add(ident)
            out.append(cand)

        if max_candidates is not None and len(out) > max_candidates:
            rng = random.Random(self.seed)
            tail = out[1:]
            keep = set(rng.sample(range(len(tail)),
                                  max(0, max_candidates - 1)))
            out = [out[0]] + [c for i, c in enumerate(tail) if i in keep]
        return out

    # -- axes --------------------------------------------------------------------------

    def _aa_variants(self, base: CompilerConfig) -> List[Candidate]:
        out: List[Candidate] = []
        # k ladder at the base policies.
        for k in _k_ladder(base.k):
            out.append(self._make(f"k{k}", base, k=k))
        # Placement x fusion grid at the base k.  Vectorized output
        # requires direct-mapped placement, so a SORTED candidate from a
        # vectorized base drops vectorization.
        for placement in (PlacementPolicy.DIRECT_MAPPED,
                          PlacementPolicy.SORTED):
            for fusion in (FusionPolicy.SMALLEST, FusionPolicy.MEAN,
                           FusionPolicy.OLDEST, FusionPolicy.RANDOM):
                name = f"{placement.code}{fusion.code}"
                out.append(self._make(name, base, placement=placement,
                                      fusion=fusion))
        # Prioritization flip (protects max-reuse winners).
        out.append(self._make(
            "prio" if not base.prioritize else "noprio",
            base, prioritize=not base.prioritize))
        # Condensation pressure x fusion: the half-k rung again but with
        # each non-base fusion policy — where the victim choice matters
        # most is when condensation actually fires.
        half_k = max(4, base.k // 2)
        if half_k != base.k:
            for fusion in (FusionPolicy.MEAN, FusionPolicy.OLDEST,
                           FusionPolicy.RANDOM):
                out.append(self._make(f"k{half_k}-{fusion.code}", base,
                                      k=half_k, fusion=fusion))
        out.extend(self._pipeline_variants(base))
        return out

    def _pipeline_variants(self, base: CompilerConfig) -> List[Candidate]:
        out = [self._make("noopt" if base.opt else "opt", base,
                          opt=not base.opt, passes=None)]
        if base.opt and base.passes is None:
            # Reordered optimization pipeline: dead-temp elimination before
            # CSE (kills temps first, shrinking CSE's table).
            from ..compiler.passes.manager import default_pipeline

            names = default_pipeline(base)
            if "cse" in names and "dte" in names:
                i, j = names.index("cse"), names.index("dte")
                names[i], names[j] = names[j], names[i]
                out.append(self._make("dte-first", base,
                                      passes=tuple(names)))
        return out

    # -- helpers -----------------------------------------------------------------------

    def _make(self, name: str, base: CompilerConfig,
              **overrides) -> Candidate:
        placement = overrides.get("placement", base.placement)
        precision = overrides.get("precision", base.precision)
        if base.vectorize and (
                placement is not PlacementPolicy.DIRECT_MAPPED
                or precision is not Precision.F64):
            overrides.setdefault("vectorize", False)
        cfg = replace(base, **overrides)
        if cfg.fusion is FusionPolicy.RANDOM:
            cfg = replace(cfg, seed=_derived_seed(self.seed, name))
        return Candidate(name, cfg)

    @staticmethod
    def _identity(cfg: CompilerConfig) -> str:
        import json

        return json.dumps(cfg.to_dict(), sort_keys=True)

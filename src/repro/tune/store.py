"""Persistence for tuned configurations.

A :class:`TunedConfigStore` maps a *source key* — SHA-256 over (source,
entry, version), deliberately config-independent, see
:meth:`repro.compiler.CompilerConfig.source_key` — to a :class:`TunedRecord`
describing the winning configuration an autotuning sweep picked for that
program and the evidence it won on.

On-disk format mirrors the compile cache: ``<dir>/<key[:2]>/<key>.json``,
written atomically (temp file + ``os.replace``) so concurrent processes
sharing one cache directory need no locks; the files are human-readable
JSON so a tuned decision can be inspected (or deleted) with ordinary
tools.  A corrupt or unreadable file is treated as missing and unlinked —
the store is advice, not a source of truth: losing a record only means a
program is served at its requested config until someone re-tunes.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["TunedRecord", "TunedConfigStore"]


@dataclass
class TunedRecord:
    """One persisted tuning decision."""

    source_key: str
    entry: Optional[str]
    # CompilerConfig.to_dict() of the winner and of the base config the
    # sweep radiated from (resolution only fires when a client asks for
    # the base config).
    config: Dict[str, Any]
    base_config: Dict[str, Any]
    # Objective triple (enclosure width, float ops, wall seconds) of the
    # winner and of the baseline it beat (or tied).
    objectives: Dict[str, Any] = field(default_factory=dict)
    baseline: Dict[str, Any] = field(default_factory=dict)
    winner_name: str = ""
    baseline_name: str = ""
    seed: int = 0
    n_candidates: int = 0
    version: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source_key": self.source_key,
            "entry": self.entry,
            "config": dict(self.config),
            "base_config": dict(self.base_config),
            "objectives": dict(self.objectives),
            "baseline": dict(self.baseline),
            "winner_name": self.winner_name,
            "baseline_name": self.baseline_name,
            "seed": self.seed,
            "n_candidates": self.n_candidates,
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TunedRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


class TunedConfigStore:
    """Sharded JSON store of :class:`TunedRecord`, with a small in-memory
    overlay so repeated resolutions of a hot program do not re-read disk.

    ``directory=None`` keeps the store purely in memory (useful for an
    in-process service without a cache dir)."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._mem: Dict[str, TunedRecord] = {}

    def _path(self, source_key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, source_key[:2],
                            source_key + ".json")

    def get(self, source_key: str) -> Optional[TunedRecord]:
        record = self._mem.get(source_key)
        if record is not None:
            return record
        # A miss always re-stats the disk (no negative caching): another
        # process — a pool worker running a tune job — may persist a
        # winner at any time, and a stale "absent" answer here would make
        # the parent daemon keep serving the untuned config.
        path = self._path(source_key)
        if path is not None and os.path.exists(path):
            try:
                with open(path) as fh:
                    data = json.load(fh)
                record = TunedRecord.from_dict(data)
                if record.source_key != source_key:
                    raise ValueError("tuned record does not match its key")
                self._mem[source_key] = record
                return record
            except Exception:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return None

    def put(self, record: TunedRecord) -> None:
        self._mem[record.source_key] = record
        path = self._path(record.source_key)
        if path is None:
            return
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(record.to_dict(), fh, indent=2, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            pass  # like the compile cache: a failed write is not an error

    def invalidate(self, source_key: str) -> None:
        self._mem.pop(source_key, None)
        path = self._path(source_key)
        if path is not None and os.path.exists(path):
            try:
                os.unlink(path)
            except OSError:
                pass

    def __contains__(self, source_key: str) -> bool:
        return self.get(source_key) is not None

"""Feedback-directed autotuning: sweep → diagnose → persist.

The :class:`Tuner` closes the loop the paper leaves open (Section VII-A
hand-sweeps configurations per benchmark): it enumerates a seeded candidate
space around a base configuration, measures every candidate through the
batch engine (each point compiles through the service's content-addressed
cache, so re-tuning is nearly free), scores the sweep by Pareto dominance
over the triple

    (enclosure width, runtime float-op count, compile+run wall seconds)

reusing :func:`repro.bench.pareto_front`, picks a deterministic winner,
runs one provenance-tracked execution of it to produce the diagnostics
report (top width origins + top-time passes), and persists the winner in
the service's :class:`TunedConfigStore` so future compiles of the same
program transparently serve it.

Winner rule — deliberately *not* "anything on the front": wall time is
noisy run to run, so front membership is not reproducible.  Instead, among
candidates with finite (width, ops) whose width does not exceed the
baseline's, the winner is the lexicographic minimum of
``(width, ops, is-not-baseline, name)``.  Width is the soundness objective
and dominates; float-ops break ties; the baseline wins any exact tie, so a
tuned record never makes a served program worse on (width, ops) — and the
whole rule is a pure function of measured enclosures and op counts, which
are bit-reproducible, so two same-seed sweeps pick the same winner.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..bench.runner import BenchResult, pareto_front
from ..compiler.config import CompilerConfig
from ..obs.diag import WidthProfile
from ..obs.trace import current_tracer
from ..service.jobs import RunJob, normalize_config
from ..service.service import CompileService
from .space import BASELINE_NAME, Candidate, CandidateSpace
from .store import TunedRecord

__all__ = ["TuneBudget", "TuneResult", "Tuner", "tune_objectives"]


#: The minimized objective triple the sweep is scored by, in the shape
#: ``pareto_front(results, objectives=tune_objectives())`` expects.  The
#: measurements live in ``BenchResult.extra``.
def tune_objectives():
    return [lambda r: r.extra.get("width", float("nan")),
            lambda r: r.extra.get("ops", float("nan")),
            lambda r: r.extra.get("wall", float("nan"))]


@dataclass
class TuneBudget:
    """How much sweeping a tune request may do.

    ``max_candidates`` caps the enumerated space (seeded down-sample);
    ``seconds`` is a soft wall-clock budget checked between waves (the
    baseline wave always runs); ``repeats`` is per-candidate timing
    repeats; ``jobs``/``timeout_s`` feed the batch engine.
    """

    max_candidates: int = 24
    seconds: Optional[float] = None
    repeats: int = 1
    jobs: int = 1
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_candidates": self.max_candidates,
            "seconds": self.seconds,
            "repeats": self.repeats,
            "jobs": self.jobs,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneBudget":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown tune budget fields: {sorted(unknown)}")
        return cls(**{k: v for k, v in data.items() if v is not None})


@dataclass
class CandidateOutcome:
    """One measured (or failed) candidate of a sweep."""

    name: str
    config_name: str
    config: Dict[str, Any]
    k: int
    ok: bool = False
    width: float = float("nan")
    ops: float = float("nan")
    wall: float = float("nan")
    acc_bits: Optional[float] = None
    runtime_s: float = 0.0
    compile_s: float = 0.0
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        def _num(x):
            if x is None:
                return None
            return None if isinstance(x, float) and math.isnan(x) else x

        return {
            "name": self.name,
            "config_name": self.config_name,
            "config": dict(self.config),
            "k": self.k,
            "ok": self.ok,
            "width": _num(self.width),
            "ops": _num(self.ops),
            "wall": _num(self.wall),
            "acc_bits": _num(self.acc_bits),
            "runtime_s": self.runtime_s,
            "compile_s": self.compile_s,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CandidateOutcome":
        known = {f for f in cls.__dataclass_fields__}
        out = cls(**{k: v for k, v in data.items() if k in known})
        if out.width is None:
            out.width = float("nan")
        if out.ops is None:
            out.ops = float("nan")
        if out.wall is None:
            out.wall = float("nan")
        return out

    def objectives_dict(self) -> Dict[str, Any]:
        return {"width": None if math.isnan(self.width) else self.width,
                "ops": None if math.isnan(self.ops) else self.ops,
                "wall": None if math.isnan(self.wall) else self.wall}


@dataclass
class TuneResult:
    """Everything one tune produced, in wire-safe form via :meth:`to_dict`."""

    entry: Optional[str]
    source_key: str
    seed: int
    winner: CandidateOutcome
    baseline: CandidateOutcome
    candidates: List[CandidateOutcome] = field(default_factory=list)
    front: List[str] = field(default_factory=list)
    persisted: bool = False
    improved: bool = False
    n_enumerated: int = 0
    n_measured: int = 0
    sweep_s: float = 0.0
    width: Optional[Dict[str, Any]] = None     # WidthProfile.to_dict()
    pipeline: Optional[Dict[str, Any]] = None  # PipelineReport.to_dict()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "entry": self.entry,
            "source_key": self.source_key,
            "seed": self.seed,
            "winner": self.winner.to_dict(),
            "baseline": self.baseline.to_dict(),
            "candidates": [c.to_dict() for c in self.candidates],
            "front": list(self.front),
            "persisted": self.persisted,
            "improved": self.improved,
            "n_enumerated": self.n_enumerated,
            "n_measured": self.n_measured,
            "sweep_s": round(self.sweep_s, 6),
            "width": self.width,
            "pipeline": self.pipeline,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TuneResult":
        return cls(
            entry=data.get("entry"),
            source_key=data.get("source_key", ""),
            seed=int(data.get("seed", 0)),
            winner=CandidateOutcome.from_dict(data.get("winner", {})),
            baseline=CandidateOutcome.from_dict(data.get("baseline", {})),
            candidates=[CandidateOutcome.from_dict(c)
                        for c in data.get("candidates", [])],
            front=list(data.get("front", [])),
            persisted=bool(data.get("persisted", False)),
            improved=bool(data.get("improved", False)),
            n_enumerated=int(data.get("n_enumerated", 0)),
            n_measured=int(data.get("n_measured", 0)),
            sweep_s=float(data.get("sweep_s", 0.0)),
            width=data.get("width"),
            pipeline=data.get("pipeline"),
        )


class Tuner:
    """Sweep, diagnose and persist for one program; see module docstring."""

    def __init__(self, service: Optional[CompileService] = None,
                 cache_dir: Optional[str] = None,
                 maxsize: int = 128) -> None:
        self.service = service if service is not None \
            else CompileService(cache_dir=cache_dir, maxsize=maxsize)

    def tune(self, source: str,
             config: Union[None, str, Dict[str, Any], CompilerConfig] = None,
             k: int = 16,
             entry: Optional[str] = None,
             args: Optional[List[Any]] = None,
             inputs: Optional[Dict[str, Any]] = None,
             uncertainty_ulps: float = 1.0,
             budget: Optional[TuneBudget] = None,
             seed: int = 0,
             space: Optional[CandidateSpace] = None) -> TuneResult:
        base = normalize_config(config, k=k)
        budget = budget if budget is not None else TuneBudget()
        args = list(args or [])
        inputs = dict(inputs or {})
        if space is None:
            space = CandidateSpace(base, seed=seed)
        candidates = space.enumerate(budget.max_candidates)
        tracer = current_tracer()

        t_sweep = time.perf_counter()
        with tracer.span("tune:sweep", config=base.name,
                         candidates=len(candidates)) as sp:
            outcomes = self._sweep(source, entry, args, inputs,
                                   uncertainty_ulps, candidates, budget)
            sp.set(measured=sum(1 for o in outcomes if o.ok))
        sweep_s = time.perf_counter() - t_sweep

        baseline = outcomes[0]
        winner = self._pick_winner(outcomes)
        front = self._front(outcomes)
        improved = winner.name != BASELINE_NAME

        with tracer.span("tune:diagnose", winner=winner.name):
            width, pipeline = self._diagnose(
                source, entry, args, inputs, uncertainty_ulps, winner)

        source_key = CompilerConfig.source_key(source, entry=entry)
        persisted = False
        with tracer.span("tune:persist", winner=winner.name) as sp:
            if self.service.tuned is not None and baseline.ok:
                from .. import __version__

                self.service.tuned.put(TunedRecord(
                    source_key=source_key,
                    entry=entry,
                    config=dict(winner.config),
                    base_config=base.to_dict(),
                    objectives=winner.objectives_dict(),
                    baseline=baseline.objectives_dict(),
                    winner_name=winner.name,
                    baseline_name=baseline.config_name,
                    seed=seed,
                    n_candidates=len(outcomes),
                    version=__version__,
                ))
                persisted = True
            sp.set(persisted=persisted)

        stats = self.service.stats
        stats.add("tune_runs")
        stats.add("tune_candidates", sum(1 for o in outcomes if o.ok))
        if persisted:
            stats.add("tune_persisted")
        stats.add("tune_sweep_s", sweep_s)

        return TuneResult(
            entry=entry,
            source_key=source_key,
            seed=seed,
            winner=winner,
            baseline=baseline,
            candidates=outcomes,
            front=front,
            persisted=persisted,
            improved=improved,
            n_enumerated=len(candidates),
            n_measured=sum(1 for o in outcomes if o.ok),
            sweep_s=sweep_s,
            width=width,
            pipeline=pipeline,
        )

    # -- sweep -------------------------------------------------------------------------

    def _sweep(self, source: str, entry: Optional[str], args, inputs,
               ulps: float, candidates: List[Candidate],
               budget: TuneBudget) -> List[CandidateOutcome]:
        from ..service.engine import BatchEngine

        engine = BatchEngine(jobs=budget.jobs, timeout_s=budget.timeout_s,
                             retries=0, service=self.service)
        wave_size = max(budget.jobs, 1) * 4
        outcomes: List[CandidateOutcome] = []
        deadline = (time.perf_counter() + budget.seconds
                    if budget.seconds is not None else None)
        for start in range(0, len(candidates), wave_size):
            if start > 0 and deadline is not None \
                    and time.perf_counter() >= deadline:
                break  # budget spent; the baseline wave already ran
            wave = candidates[start:start + wave_size]
            jobs = [RunJob(
                source=source,
                config=cand.config,
                k=cand.config.k,
                entry=entry,
                args=list(args),
                inputs=dict(inputs),
                uncertainty_ulps=ulps,
                repeats=budget.repeats,
                resolve_tuned=False,  # measure exactly what the name says
                tag={"candidate": cand.name},
            ) for cand in wave]
            for cand, res in zip(wave, engine.run(jobs)):
                outcomes.append(self._outcome(cand, res))
        return outcomes

    @staticmethod
    def _outcome(cand: Candidate, res) -> CandidateOutcome:
        out = CandidateOutcome(
            name=cand.name,
            config_name=cand.config.name,
            config=cand.config.to_dict(),
            k=cand.config.k,
        )
        if not res.ok:
            out.error = res.error or "failed"
            return out
        v = res.value
        out.ok = True
        out.runtime_s = float(v.get("runtime_s", 0.0))
        out.compile_s = float(v.get("compile_s", 0.0))
        out.wall = out.runtime_s + out.compile_s
        out.acc_bits = v.get("acc_bits")
        interval = v.get("interval")
        if interval is not None:
            out.width = float(interval[1]) - float(interval[0])
        elif out.acc_bits is not None and math.isfinite(out.acc_bits):
            # Array-returning kernels (sor/luf/fgm) carry no scalar
            # enclosure; the worst-case accuracy over their output arrays
            # is the same soundness measure on a log scale, so 2^-acc is
            # a monotone stand-in width — enough for Pareto ordering.
            out.width = 2.0 ** (-float(out.acc_bits))
        profile = v.get("op_profile") or {}
        ops = (profile.get("ops") or {}).get("total")
        if ops is not None:
            out.ops = float(ops)
        return out

    # -- scoring -----------------------------------------------------------------------

    @staticmethod
    def _bench(outcomes: List[CandidateOutcome]) -> List[BenchResult]:
        return [BenchResult(
            benchmark="tune", config=o.config_name, k=o.k,
            acc_bits=o.acc_bits if o.acc_bits is not None else float("nan"),
            runtime_s=o.runtime_s, compile_s=o.compile_s,
            extra={"candidate": o.name, "width": o.width,
                   "ops": o.ops, "wall": o.wall},
        ) for o in outcomes if o.ok]

    def _front(self, outcomes: List[CandidateOutcome]) -> List[str]:
        front = pareto_front(self._bench(outcomes),
                             objectives=tune_objectives())
        return [r.extra["candidate"] for r in front]

    @staticmethod
    def _pick_winner(outcomes: List[CandidateOutcome]) -> CandidateOutcome:
        baseline = outcomes[0]
        eligible = [
            o for o in outcomes
            if o.ok and math.isfinite(o.width) and math.isfinite(o.ops)
        ]
        if not baseline.ok or not math.isfinite(baseline.width):
            # No sound baseline measurement (float mode, failure): nothing
            # to beat, keep what was asked.
            return baseline
        eligible = [o for o in eligible if o.width <= baseline.width]
        if not eligible:
            return baseline
        return min(eligible, key=lambda o: (o.width, o.ops,
                                            o.name != BASELINE_NAME, o.name))

    # -- diagnostics -------------------------------------------------------------------

    def _diagnose(self, source: str, entry: Optional[str], args, inputs,
                  ulps: float, winner: CandidateOutcome):
        """One provenance-tracked run of the winner: the width/pass join of
        the report.  Best-effort — a diagnostics failure never voids the
        sweep."""
        try:
            cfg = CompilerConfig.from_dict(winner.config)
            prog, centry = self.service.compile_entry(
                source, cfg, entry=entry, resolve_tuned=False)
            res = prog(*args, uncertainty_ulps=ulps,
                       track_provenance=True, **inputs)
            profile = WidthProfile()
            value = res.value
            if value is not None and (hasattr(value, "coefficients")
                                      or hasattr(value, "terms")):
                from ..aa.explain import explain

                profile.record_explanation(explain(value),
                                           label=winner.name)
            else:
                profile.skip()
            factory = getattr(getattr(res.runtime, "ctx", None),
                              "symbols", None)
            if factory is not None and getattr(factory, "n_absorptions", 0):
                profile.record_absorbed(dict(factory.absorbed),
                                        dict(factory.absorbed_at),
                                        factory.n_absorptions)
            pipeline = getattr(centry, "pipeline", None)
            return (profile.to_dict(),
                    pipeline.to_dict() if pipeline is not None else None)
        except Exception:
            return None, None

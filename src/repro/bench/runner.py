"""Measurement harness: accuracy and runtime per configuration.

Follows the paper's methodology (Section VII): runtimes are medians over
repeated runs; accuracy is the worst case (minimum ``acc``) over all output
values; slowdown is relative to the original unsound program executed by the
same interpreter (runtime mode ``float``).
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..aa import acc_bits
from ..compiler import CompilerConfig, SafeGen
from .workloads import Workload

__all__ = ["BenchResult", "run_config", "run_sweep", "float_baseline_time",
           "pareto_front"]


@dataclass
class BenchResult:
    """One point of a Fig. 8 / Fig. 9 plot."""

    benchmark: str
    config: str
    k: int
    acc_bits: float
    runtime_s: float
    baseline_s: float = 0.0
    compile_s: float = 0.0
    analysis: Optional[str] = None
    # Pass name -> wall seconds from the compile's PipelineReport (None for
    # cache hits served before instrumentation existed).
    pass_timings: Optional[Dict[str, float]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def slowdown(self) -> float:
        if self.baseline_s <= 0:
            return float("nan")
        return self.runtime_s / self.baseline_s

    def row(self, timings: bool = False) -> Dict[str, Any]:
        """One report row.  ``timings=True`` appends a ``pass:<name>_ms``
        column per compiler pass (kept out of the default row so that rows
        stay comparable across runs that share a compile cache)."""
        # slowdown is NaN when no baseline was measured; emit None (JSON
        # null) instead of letting round(nan, 1) leak NaN into reports.
        slowdown = self.slowdown
        out = {
            "benchmark": self.benchmark,
            "config": self.config,
            "k": self.k,
            "acc_bits": round(self.acc_bits, 2),
            "runtime_ms": round(self.runtime_s * 1e3, 3),
            "compile_s": round(self.compile_s, 4),
            "slowdown": None if math.isnan(slowdown) else round(slowdown, 1),
        }
        if timings:
            for name, seconds in (self.pass_timings or {}).items():
                out[f"pass:{name}_ms"] = round(seconds * 1e3, 3)
        return out


def _min_acc(value: Any) -> float:
    """Worst-case certified bits over a scalar or nested array result."""
    if value is None:
        return float("inf")
    if isinstance(value, (list, tuple)):
        accs = [_min_acc(v) for v in value]
        return min(accs) if accs else float("inf")
    return acc_bits(value)


def result_accuracy(result) -> float:
    """Worst-case acc over the return value and every output array."""
    worst = _min_acc(result.value)
    for value in result.params.values():
        if isinstance(value, (list, tuple)):
            worst = min(worst, _min_acc(value))
    return worst


def _timed_runs(prog, inputs, repeats: int) -> List[float]:
    times = []
    for _ in range(repeats):
        res = prog(**inputs)
        times.append(res.elapsed_s)
    return times


def float_baseline_time(workload: Workload, repeats: int = 5) -> float:
    """Median runtime of the original (unsound) program."""
    cfg = CompilerConfig(mode="float")
    prog = SafeGen(cfg).compile(workload.program.source,
                                entry=workload.program.entry)
    times = _timed_runs(prog, workload.inputs, max(repeats, 3))
    return statistics.median(times)


def run_config(workload: Workload,
               config: Union[str, CompilerConfig],
               k: int = 16,
               repeats: int = 3,
               baseline_s: float = 0.0,
               **overrides) -> BenchResult:
    """Compile and measure one configuration on a workload."""
    if isinstance(config, str):
        cfg = CompilerConfig.from_string(
            config, k=k, int_params=dict(workload.program.int_params),
            **overrides)
    else:
        cfg = config
    t0 = time.perf_counter()
    prog = SafeGen(cfg).compile(workload.program.source,
                                entry=workload.program.entry)
    compile_s = time.perf_counter() - t0

    res = prog(**workload.inputs)
    acc = max(0.0, result_accuracy(res)) if cfg.mode != "float" \
        else float("nan")

    times = [res.elapsed_s]
    times += _timed_runs(prog, workload.inputs, max(repeats - 1, 0))
    return BenchResult(
        benchmark=workload.name,
        config=cfg.name,
        k=cfg.k,
        acc_bits=acc,
        runtime_s=statistics.median(times),
        baseline_s=baseline_s,
        compile_s=compile_s,
        analysis=str(prog.analysis_report) if prog.analysis_report else None,
        pass_timings=prog.pipeline_report.timings()
        if prog.pipeline_report is not None else None,
    )


def run_sweep(workload: Workload,
              configs: List[Union[str, CompilerConfig]],
              ks: List[int],
              repeats: int = 3,
              baseline_s: Optional[float] = None,
              jobs: int = 1,
              timeout_s: Optional[float] = None,
              retries: int = 0,
              cache_dir: Optional[str] = None) -> List[BenchResult]:
    """Measure every (config, k) point of a sweep, optionally in parallel.

    With ``jobs <= 1`` this is exactly the serial
    ``for config: for k: run_config(...)`` loop (same code path per point);
    with ``jobs > 1`` the points run on a process pool through the service
    layer.  Either way the result list is ordered configs-major, k-minor,
    and the computed values (accuracy, enclosures) are identical — only
    wall-clock measurements vary run to run.
    """
    from ..service import BatchEngine, RunJob  # lazy: service imports bench

    if baseline_s is None:
        baseline_s = float_baseline_time(workload)
    batch = []
    for config in configs:
        for k in ks:
            if isinstance(config, str):
                cfg = CompilerConfig.from_string(
                    config, k=k,
                    int_params=dict(workload.program.int_params))
            else:
                cfg = config.with_k(k)
            batch.append(RunJob(
                source=workload.program.source,
                config=cfg,
                k=k,
                entry=workload.program.entry,
                inputs=dict(workload.inputs),
                repeats=repeats,
                tag={"benchmark": workload.name},
            ))
    engine = BatchEngine(jobs=jobs, timeout_s=timeout_s, retries=retries,
                         cache_dir=cache_dir)
    results = []
    for job_result in engine.run(batch):
        if not job_result.ok:
            raise RuntimeError(
                f"sweep point {job_result.index} failed: {job_result.error}")
        v = job_result.value
        results.append(BenchResult(
            benchmark=workload.name,
            config=v["config"],
            k=v["k"],
            acc_bits=v["acc_bits"] if v["acc_bits"] is not None
            else float("nan"),
            runtime_s=v["runtime_s"],
            baseline_s=baseline_s,
            compile_s=v["compile_s"],
            analysis=v["analysis"],
            pass_timings=v.get("pass_s"),
        ))
    return results


def pareto_front(results: List[BenchResult],
                 objectives=None) -> List[BenchResult]:
    """The Pareto-optimal subset under a list of minimized ``objectives``.

    Each objective is a callable ``BenchResult -> float``; the default pair
    ``(-acc_bits, runtime_s)`` reproduces the original accuracy/runtime
    front (higher acc, lower time).  The tuner scores candidates over the
    triple (enclosure width, float-op count, wall time) with the same
    function.

    Rows with a NaN in any objective (e.g. ``acc_bits`` from ia modes with
    no oracle) are *excluded* from the front: NaN compares false against
    everything, so such rows could never be dominated and would pollute the
    front no matter how bad they are.
    """
    if objectives is None:
        objectives = [lambda r: -r.acc_bits, lambda r: r.runtime_s]

    points = [(r, tuple(f(r) for f in objectives)) for r in results]
    comparable = [(r, p) for r, p in points
                  if not any(math.isnan(v) for v in p)]
    front = []
    for r, p in comparable:
        dominated = any(
            all(ov <= rv for ov, rv in zip(op, p))
            and any(ov < rv for ov, rv in zip(op, p))
            for _, op in comparable
        )
        if not dominated:
            front.append((r, p))
    # Sorted by the last objective first (runtime in the default pair),
    # matching the harness's historical "cheapest first" ordering.
    return [r for r, _ in sorted(front, key=lambda rp: rp[1][::-1])]

"""The paper's benchmark programs (Table II) as C sources.

* ``henon`` — the Henon map x_{i+1} = 1 − a·x_i² + y_i, y_{i+1} = b·x_i with
  a = 1.05, b = 0.3 (hand-implemented, as in the paper).
* ``sor``   — Jacobi successive over-relaxation from SciMark.
* ``luf``   — LU factorization from SciMark.  Implemented without partial
  pivoting so the computation DAG is input-independent (see DESIGN.md); the
  harness feeds diagonally dominant matrices, for which unpivoted LU is
  well-defined.
* ``fgm``   — fast gradient method (FiOrdOs-style momentum iteration for an
  unconstrained QP), the Model-Predictive-Control kernel.

Array dimensions must be compile-time constants in C, so the sources are
produced by functions parameterized over the problem size — exactly what a
code generator like FiOrdOs does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["BenchmarkProgram", "henon", "sor", "luf", "fgm", "ALL_BENCHMARKS"]


@dataclass(frozen=True)
class BenchmarkProgram:
    """A benchmark: its C source, entry point, and metadata the harness
    needs (which parameters are inputs/outputs, unroll hints)."""

    name: str
    source: str
    entry: str
    int_params: Dict[str, int] = field(default_factory=dict)
    description: str = ""


def henon(iterations: int = 100) -> BenchmarkProgram:
    """The Henon map, iterated ``iterations`` times."""
    source = """
double henon(double x, double y, int n) {
    double a = 1.05;
    double b = 0.3;
    for (int i = 0; i < n; i++) {
        double xn = 1.0 - a * (x * x) + y;
        double yn = b * x;
        x = xn;
        y = yn;
    }
    return x;
}
"""
    return BenchmarkProgram(
        name="henon", source=source, entry="henon",
        int_params={"n": iterations},
        description=f"Henon map, {iterations} iterations (a=1.05, b=0.3)",
    )


def sor(n: int = 10, iterations: int = 10) -> BenchmarkProgram:
    """SciMark Jacobi successive over-relaxation on an n x n grid."""
    source = f"""
void sor(double G[{n}][{n}], double omega, int num_iterations) {{
    double omega_over_four = omega * 0.25;
    double one_minus_omega = 1.0 - omega;
    for (int p = 0; p < num_iterations; p++) {{
        for (int i = 1; i < {n - 1}; i++) {{
            for (int j = 1; j < {n - 1}; j++) {{
                G[i][j] = omega_over_four
                        * (G[i-1][j] + G[i+1][j] + G[i][j-1] + G[i][j+1])
                        + one_minus_omega * G[i][j];
            }}
        }}
    }}
}}
"""
    return BenchmarkProgram(
        name="sor", source=source, entry="sor",
        int_params={"num_iterations": iterations},
        description=f"SciMark SOR, {n}x{n} grid, {iterations} sweeps",
    )


def luf(n: int = 20) -> BenchmarkProgram:
    """SciMark LU factorization (Doolittle, in place, no pivoting)."""
    source = f"""
void luf(double A[{n}][{n}]) {{
    for (int k = 0; k < {n - 1}; k++) {{
        for (int i = k + 1; i < {n}; i++) {{
            A[i][k] = A[i][k] / A[k][k];
            for (int j = k + 1; j < {n}; j++) {{
                A[i][j] = A[i][j] - A[i][k] * A[k][j];
            }}
        }}
    }}
}}
"""
    return BenchmarkProgram(
        name="luf", source=source, entry="luf",
        description=f"LU factorization without pivoting, {n}x{n}",
    )


def fgm(n: int = 4, iterations: int = 20,
        step: float = 0.25, beta: float = 0.35) -> BenchmarkProgram:
    """Fast gradient method for an unconstrained QP (FiOrdOs-style).

    Minimizes 0.5 x'Hx + f'x by Nesterov's accelerated gradient iteration
    x⁺ = y − step·(H y + f);  y⁺ = x⁺ + beta·(x⁺ − x).  ``step`` (1/L) and
    ``beta`` are baked into the generated code as constants, exactly as
    FiOrdOs emits them.
    """
    source = f"""
void fgm(double H[{n}][{n}], double f[{n}], double x[{n}], int iters) {{
    double y[{n}];
    double g[{n}];
    for (int i = 0; i < {n}; i++) {{
        y[i] = x[i];
    }}
    for (int t = 0; t < iters; t++) {{
        for (int i = 0; i < {n}; i++) {{
            double acc = f[i];
            for (int j = 0; j < {n}; j++) {{
                acc = acc + H[i][j] * y[j];
            }}
            g[i] = acc;
        }}
        for (int i = 0; i < {n}; i++) {{
            double xn = y[i] - {step!r} * g[i];
            y[i] = xn + {beta!r} * (xn - x[i]);
            x[i] = xn;
        }}
    }}
}}
"""
    return BenchmarkProgram(
        name="fgm", source=source, entry="fgm",
        int_params={"iters": iterations},
        description=(f"fast gradient method, n={n}, {iterations} iterations, "
                     f"step={step}, beta={beta}"),
    )


def cholesky(n: int = 8) -> BenchmarkProgram:
    """Cholesky factorization (lower-triangular, in place) — an extension
    benchmark beyond the paper's Table II that exercises the affine sqrt
    and division together.  The harness feeds symmetric diagonally dominant
    matrices, so every pivot stays strictly positive."""
    source = f"""
void cholesky(double A[{n}][{n}]) {{
    for (int j = 0; j < {n}; j++) {{
        for (int kk = 0; kk < j; kk++) {{
            A[j][j] = A[j][j] - A[j][kk] * A[j][kk];
        }}
        A[j][j] = sqrt(A[j][j]);
        for (int i = j + 1; i < {n}; i++) {{
            for (int kk = 0; kk < j; kk++) {{
                A[i][j] = A[i][j] - A[i][kk] * A[j][kk];
            }}
            A[i][j] = A[i][j] / A[j][j];
        }}
    }}
}}
"""
    return BenchmarkProgram(
        name="cholesky", source=source, entry="cholesky",
        description=f"Cholesky factorization (sqrt + division), {n}x{n}",
    )


def ALL_BENCHMARKS(**sizes) -> Dict[str, BenchmarkProgram]:
    """The paper's four benchmarks at their default sizes (Table II with the
    Fig. 8 input sizes: 10x10 sor, 20x20 luf)."""
    return {
        "henon": henon(sizes.get("henon_iters", 100)),
        "sor": sor(sizes.get("sor_n", 10), sizes.get("sor_iters", 10)),
        "luf": luf(sizes.get("luf_n", 20)),
        "fgm": fgm(sizes.get("fgm_n", 4), sizes.get("fgm_iters", 20)),
    }

"""Benchmark harness: the paper's programs (Table II), workloads, the
high-precision oracle, and measurement plumbing for Figs. 8-10 / Table III.
"""

from .configs import (
    FIG8_CONFIGS,
    FIG9_IGEN,
    FIG9_LIBRARIES,
    FIG9_SAFEGEN,
    FULL_AA_K,
    K_SWEEP,
    TABLE3_CONFIGS,
)
from .oracle import DecInterval, ExactOracle, OracleAmbiguous, OracleUndefined
from .programs import ALL_BENCHMARKS, BenchmarkProgram, cholesky, fgm, henon, luf, sor
from .report import format_table, print_results, write_csv
from .runner import (
    BenchResult,
    float_baseline_time,
    pareto_front,
    result_accuracy,
    run_config,
    run_sweep,
)
from .workloads import Workload, make_workload

__all__ = [
    "ALL_BENCHMARKS",
    "BenchResult",
    "BenchmarkProgram",
    "DecInterval",
    "ExactOracle",
    "FIG8_CONFIGS",
    "FIG9_IGEN",
    "FIG9_LIBRARIES",
    "FIG9_SAFEGEN",
    "FULL_AA_K",
    "K_SWEEP",
    "OracleAmbiguous",
    "OracleUndefined",
    "TABLE3_CONFIGS",
    "Workload",
    "cholesky",
    "fgm",
    "float_baseline_time",
    "format_table",
    "henon",
    "luf",
    "make_workload",
    "pareto_front",
    "print_results",
    "result_accuracy",
    "run_config",
    "run_sweep",
    "sor",
    "write_csv",
]

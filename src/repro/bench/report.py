"""Plain-text tables and CSV output for the benchmark harness."""

from __future__ import annotations

import csv
import io
from typing import Any, Dict, Iterable, List, Sequence

__all__ = ["format_table", "write_csv", "print_results"]


def format_table(rows: Sequence[Dict[str, Any]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no data)\n"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells))
              for i, c in enumerate(cols)]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in cells:
        out.write("  ".join(v.rjust(w) if _numeric(v) else v.ljust(w)
                            for v, w in zip(row, widths)) + "\n")
    return out.getvalue()


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)


def _numeric(v: str) -> bool:
    try:
        float(v)
        return True
    except ValueError:
        return False


def write_csv(path: str, rows: Iterable[Dict[str, Any]]) -> None:
    rows = list(rows)
    if not rows:
        return
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def print_results(results, title: str | None = None) -> None:
    print(format_table([r.row() for r in results], title=title))

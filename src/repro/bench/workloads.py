"""Workload (input) generation for the benchmarks — Section VII setup.

Inputs are drawn uniformly from [0, 1] (seeded for reproducibility) and each
input value carries one error symbol of 1 ulp, exactly as in the paper's
experimental setup.  The harness passes plain floats; the runtime attaches
the 1-ulp symbol on coercion.

``fgm`` needs its step size and momentum coefficient consistent with the
generated QP, so its workload builds both the matrix *and* the program.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict

from .programs import BenchmarkProgram, cholesky, fgm, henon, luf, sor

__all__ = ["Workload", "make_workload"]


@dataclass
class Workload:
    """A benchmark program together with concrete inputs for one run."""

    program: BenchmarkProgram
    inputs: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.program.name


def _henon_workload(rng: random.Random, iterations: int) -> Workload:
    # x in [0,1], y in [0,0.3]: inside the attractor's basin for
    # a = 1.05, b = 0.3 (orbits from the full [0,1]^2 square can escape to
    # infinity, where no arithmetic — sound or not — retains accuracy).
    return Workload(
        program=henon(iterations),
        inputs={"x": rng.random(), "y": 0.3 * rng.random(), "n": iterations},
    )


def _sor_workload(rng: random.Random, n: int, iterations: int) -> Workload:
    grid = [[rng.random() for _ in range(n)] for _ in range(n)]
    return Workload(
        program=sor(n, iterations),
        inputs={"G": grid, "omega": 1.25, "num_iterations": iterations},
    )


def _luf_workload(rng: random.Random, n: int) -> Workload:
    # Diagonally dominant: unpivoted LU is well-defined and stable, and the
    # affine division never sees a range straddling zero.
    a = [[rng.random() for _ in range(n)] for _ in range(n)]
    for i in range(n):
        a[i][i] += float(n)
    return Workload(program=luf(n), inputs={"A": a})


def _cholesky_workload(rng: random.Random, n: int) -> Workload:
    # Symmetric and strongly diagonally dominant: every Schur-complement
    # pivot stays positive even under the affine ranges.
    a = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i, n):
            if i == j:
                a[i][j] = float(n) + rng.random()
            else:
                v = rng.random() * 0.5
                a[i][j] = v
                a[j][i] = v
    return Workload(program=cholesky(n), inputs={"A": a})


def _fgm_workload(rng: random.Random, n: int, iterations: int) -> Workload:
    # An SPD quadratic H = D + symmetric coupling, conditioned so that the
    # momentum iteration accumulates enough round-off to separate the sound
    # arithmetics (IA collapses, AA retains accuracy — the paper's fgm
    # shape).
    h = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i, n):
            if i == j:
                h[i][j] = 1.0 + 0.5 * rng.random()
            else:
                v = 0.2 * (rng.random() - 0.5)
                h[i][j] = v
                h[j][i] = v
    # Gershgorin bounds on the spectrum give a safe step and momentum.
    row_sums = [sum(abs(v) for v in row) for row in h]
    big_l = max(row_sums)
    mu = max(min(h[i][i] - (row_sums[i] - abs(h[i][i])) for i in range(n)),
             0.05)
    step = 1.0 / big_l
    kappa = big_l / mu
    beta = (math.sqrt(kappa) - 1.0) / (math.sqrt(kappa) + 1.0)
    f = [rng.random() for _ in range(n)]
    x0 = [rng.random() for _ in range(n)]
    return Workload(
        program=fgm(n, iterations, step=step, beta=beta),
        inputs={"H": h, "f": f, "x": x0, "iters": iterations},
    )


def make_workload(name: str, seed: int = 0, **sizes) -> Workload:
    """Build a seeded workload for one of the paper's benchmarks.

    Sizes: ``henon_iters`` (default 100), ``sor_n``/``sor_iters`` (10/10),
    ``luf_n`` (20), ``fgm_n``/``fgm_iters`` (4/20).
    """
    rng = random.Random(seed ^ 0xBEEF)
    if name == "henon":
        return _henon_workload(rng, sizes.get("henon_iters", 100))
    if name == "sor":
        return _sor_workload(rng, sizes.get("sor_n", 10),
                             sizes.get("sor_iters", 10))
    if name == "luf":
        return _luf_workload(rng, sizes.get("luf_n", 20))
    if name == "fgm":
        return _fgm_workload(rng, sizes.get("fgm_n", 8),
                             sizes.get("fgm_iters", 40))
    if name == "cholesky":
        return _cholesky_workload(rng, sizes.get("cholesky_n", 8))
    raise ValueError(f"unknown benchmark {name!r}")

"""High-precision ground-truth executor ("real arithmetic" oracle).

Soundness says the transformed program's ranges contain the result the
original program would produce in *real* arithmetic.  Exact rationals are
intractable here (iterated squaring doubles the bit count per iteration), so
the oracle executes the original C program over tiny *decimal intervals*
with directed rounding at ``prec`` significant digits (default 60 — far
below any range the sound runtimes produce).  The resulting enclosure
``D`` satisfies ``real result ∈ D``; testing ``D ⊆ (produced range)`` then
certifies containment of the real result.

``decimal`` gives correctly rounded +, −, ×, ÷, sqrt, exp and ln under
ROUND_FLOOR / ROUND_CEILING, which makes the interval arithmetic here both
simple and rigorous.
"""

from __future__ import annotations

import decimal
from decimal import Decimal
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence

from ..errors import ReproError
from ..compiler import cast as A
from ..compiler.cparser import parse
from ..compiler.simd import lower_simd
from ..compiler.typecheck import MATH_FUNCS, typecheck

__all__ = ["DecInterval", "ExactOracle", "OracleAmbiguous", "OracleUndefined"]


class OracleAmbiguous(ReproError):
    """A branch condition could not be decided at oracle precision."""


class OracleUndefined(ReproError):
    """The exact execution hit undefined behaviour (division by zero,
    sqrt of a negative number...)."""


class DecInterval:
    """A decimal interval ``[lo, hi]`` with directed-rounding arithmetic."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Decimal, hi: Decimal) -> None:
        if hi < lo:
            raise OracleUndefined(f"interval out of order: [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    # The two contexts are swapped in by ExactOracle per precision.
    _down: decimal.Context = decimal.Context(prec=60,
                                             rounding=decimal.ROUND_FLOOR)
    _up: decimal.Context = decimal.Context(prec=60,
                                           rounding=decimal.ROUND_CEILING)

    @classmethod
    def set_precision(cls, prec: int) -> None:
        cls._down = decimal.Context(prec=prec, rounding=decimal.ROUND_FLOOR)
        cls._up = decimal.Context(prec=prec, rounding=decimal.ROUND_CEILING)

    @classmethod
    def from_float(cls, x: float) -> "DecInterval":
        d = Decimal(x)  # exact conversion
        return cls(d, d)

    @classmethod
    def from_fraction(cls, x: Fraction) -> "DecInterval":
        num, den = Decimal(x.numerator), Decimal(x.denominator)
        return cls(cls._down.divide(num, den), cls._up.divide(num, den))

    @classmethod
    def point(cls, d: Decimal) -> "DecInterval":
        return cls(d, d)

    def __repr__(self) -> str:
        return f"DecInterval({self.lo}, {self.hi})"

    def is_point(self) -> bool:
        return self.lo == self.hi

    def to_fractions(self) -> tuple[Fraction, Fraction]:
        return Fraction(self.lo), Fraction(self.hi)

    def midpoint_float(self) -> float:
        return float((self.lo + self.hi) / 2)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, o: "DecInterval") -> "DecInterval":
        return DecInterval(self._down.add(self.lo, o.lo),
                           self._up.add(self.hi, o.hi))

    def __sub__(self, o: "DecInterval") -> "DecInterval":
        return DecInterval(self._down.subtract(self.lo, o.hi),
                           self._up.subtract(self.hi, o.lo))

    def __neg__(self) -> "DecInterval":
        return DecInterval(-self.hi, -self.lo)

    def __mul__(self, o: "DecInterval") -> "DecInterval":
        los = [self._down.multiply(a, b)
               for a in (self.lo, self.hi) for b in (o.lo, o.hi)]
        his = [self._up.multiply(a, b)
               for a in (self.lo, self.hi) for b in (o.lo, o.hi)]
        return DecInterval(min(los), max(his))

    def __truediv__(self, o: "DecInterval") -> "DecInterval":
        if o.lo <= 0 <= o.hi:
            raise OracleUndefined("division by an interval containing zero")
        los = [self._down.divide(a, b)
               for a in (self.lo, self.hi) for b in (o.lo, o.hi)]
        his = [self._up.divide(a, b)
               for a in (self.lo, self.hi) for b in (o.lo, o.hi)]
        return DecInterval(min(los), max(his))

    # decimal's sqrt/exp/ln always round half-even (per the IBM decimal
    # spec), *ignoring* the context rounding — a correctly rounded result is
    # within half an ulp, so stepping one representable value outward
    # restores sound directed bounds.

    def _down1(self, v: Decimal) -> Decimal:
        return v.next_minus(context=self._down)

    def _up1(self, v: Decimal) -> Decimal:
        return v.next_plus(context=self._up)

    def sqrt(self) -> "DecInterval":
        if self.lo < 0:
            raise OracleUndefined("sqrt of a negative interval")
        return DecInterval(max(self._down1(self._down.sqrt(self.lo)),
                               Decimal(0)),
                           self._up1(self._up.sqrt(self.hi)))

    def exp(self) -> "DecInterval":
        return DecInterval(self._down1(self._down.exp(self.lo)),
                           self._up1(self._up.exp(self.hi)))

    def ln(self) -> "DecInterval":
        if self.lo <= 0:
            raise OracleUndefined("log of a non-positive interval")
        return DecInterval(self._down1(self._down.ln(self.lo)),
                           self._up1(self._up.ln(self.hi)))

    def abs_(self) -> "DecInterval":
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return -self
        return DecInterval(Decimal(0), max(-self.lo, self.hi))

    def min_with(self, o: "DecInterval") -> "DecInterval":
        return DecInterval(min(self.lo, o.lo), min(self.hi, o.hi))

    def max_with(self, o: "DecInterval") -> "DecInterval":
        return DecInterval(max(self.lo, o.lo), max(self.hi, o.hi))

    # -- comparisons -------------------------------------------------------------

    def definitely_lt(self, o: "DecInterval") -> bool:
        if self.hi < o.lo:
            return True
        if self.lo >= o.hi:
            return False
        raise OracleAmbiguous("< undecidable at oracle precision")

    def definitely_le(self, o: "DecInterval") -> bool:
        if self.hi <= o.lo:
            return True
        if self.lo > o.hi:
            return False
        raise OracleAmbiguous("<= undecidable at oracle precision")


class _BreakLoop(Exception):
    pass


class _ContinueLoop(Exception):
    pass


class _ReturnValue(Exception):
    def __init__(self, value):
        self.value = value


class ExactOracle:
    """Interpret a C program in high-precision interval arithmetic.

    ``run`` accepts plain floats (taken exact), Fractions, DecIntervals, or
    nested lists thereof for array parameters; it returns the function's
    return value and leaves output arrays (mutated in place) available via
    the returned ``params`` dict.
    """

    def __init__(self, source: str, entry: Optional[str] = None,
                 prec: int = 60) -> None:
        DecInterval.set_precision(prec)
        self.unit = parse(source)
        lower_simd(self.unit)
        typecheck(self.unit)
        with_bodies = [f for f in self.unit.funcs if f.body is not None]
        self.entry = entry if entry is not None else with_bodies[-1].name
        self.funcs = {f.name: f for f in self.unit.funcs if f.body is not None}

    # -- public API -----------------------------------------------------------

    def run(self, *args, **kwargs) -> Dict[str, Any]:
        func = self.funcs[self.entry]
        names = [p.name for p in func.params]
        bound = dict(zip(names, args))
        bound.update(kwargs)
        env: Dict[str, Any] = {}
        for p in func.params:
            v = bound[p.name]
            if isinstance(p.type, A.CType) and p.type.is_integer():
                env[p.name] = int(v)
            else:
                env[p.name] = _coerce(v)
        result = self._call(func, [env[n] for n in names])
        return {"value": result, "params": env}

    # -- interpreter ---------------------------------------------------------------

    def _call(self, func: A.FuncDef, args: List[Any]):
        env: Dict[str, Any] = {p.name: a for p, a in zip(func.params, args)}
        try:
            self._stmt(func.body, env)
        except _ReturnValue as r:
            return r.value
        return None

    def _stmt(self, s: A.Stmt, env: Dict[str, Any]) -> None:
        if isinstance(s, A.Compound):
            for sub in s.stmts:
                self._stmt(sub, env)
        elif isinstance(s, A.Decl):
            if isinstance(s.type, A.ArrayType):
                dims = []
                t = s.type
                while isinstance(t, A.ArrayType):
                    dims.append(t.dim)
                    t = t.elem
                zero = DecInterval.from_float(0.0) if (
                    isinstance(t, A.CType) and t.is_float()) else 0

                def alloc(ds):
                    if len(ds) == 1:
                        return [zero for _ in range(ds[0])]
                    return [alloc(ds[1:]) for _ in range(ds[0])]

                env[s.name] = alloc(dims)
            elif s.init is not None:
                env[s.name] = self._expr(s.init, env)
            else:
                env[s.name] = None
        elif isinstance(s, A.ExprStmt):
            self._expr_effect(s.expr, env)
        elif isinstance(s, A.If):
            if self._truth(s.cond, env):
                self._stmt(s.then, env)
            elif s.els is not None:
                self._stmt(s.els, env)
        elif isinstance(s, A.For):
            if s.init is not None:
                self._stmt(s.init, env)
            while s.cond is None or self._truth(s.cond, env):
                try:
                    self._stmt(s.body, env)
                except _BreakLoop:
                    break
                except _ContinueLoop:
                    pass
                if s.step is not None:
                    self._expr_effect(s.step, env)
        elif isinstance(s, A.While):
            while self._truth(s.cond, env):
                try:
                    self._stmt(s.body, env)
                except _BreakLoop:
                    break
                except _ContinueLoop:
                    continue
        elif isinstance(s, A.DoWhile):
            while True:
                try:
                    self._stmt(s.body, env)
                except _BreakLoop:
                    break
                except _ContinueLoop:
                    pass
                if not self._truth(s.cond, env):
                    break
        elif isinstance(s, A.Return):
            raise _ReturnValue(None if s.value is None
                               else self._expr(s.value, env))
        elif isinstance(s, A.Break):
            raise _BreakLoop()
        elif isinstance(s, A.Continue):
            raise _ContinueLoop()
        elif isinstance(s, A.Pragma):
            pass
        else:
            raise ReproError(f"oracle: unsupported statement {type(s).__name__}")

    def _expr_effect(self, e: A.Expr, env: Dict[str, Any]) -> None:
        if isinstance(e, A.Assign):
            value = self._expr(e.value, env)
            if e.op != "=":
                cur = self._expr(e.target, env)
                op = e.op[:-1]
                value = _apply_binop(op, cur, value)
            self._store(e.target, value, env)
        elif isinstance(e, A.UnOp) and e.op in ("++", "--", "p++", "p--"):
            cur = self._expr(e.operand, env)
            self._store(e.operand, cur + (1 if "+" in e.op else -1), env)
        else:
            self._expr(e, env)

    def _store(self, target: A.Expr, value, env: Dict[str, Any]) -> None:
        if isinstance(target, A.Ident):
            env[target.name] = value
        elif isinstance(target, A.Index):
            base = self._expr(target.base, env)
            idx = self._expr(target.index, env)
            base[idx] = value
        elif isinstance(target, A.UnOp) and target.op == "*":
            self._expr(target.operand, env)[0] = value
        else:
            raise ReproError("oracle: unsupported assignment target")

    def _truth(self, e: A.Expr, env: Dict[str, Any]) -> bool:
        v = self._expr(e, env)
        if isinstance(v, DecInterval):
            if v.lo > 0 or v.hi < 0:
                return True
            if v.is_point() and v.lo == 0:
                return False
            raise OracleAmbiguous("truthiness undecidable")
        return bool(v)

    def _expr(self, e: A.Expr, env: Dict[str, Any]):
        if isinstance(e, A.IntLit):
            return e.value
        if isinstance(e, A.FloatLit):
            return DecInterval.from_float(e.value)
        if isinstance(e, A.IntervalLit):
            return DecInterval(Decimal(e.lo), Decimal(e.hi))
        if isinstance(e, A.Ident):
            return env[e.name]
        if isinstance(e, A.Index):
            return self._expr(e.base, env)[self._expr(e.index, env)]
        if isinstance(e, A.Cast):
            v = self._expr(e.expr, env)
            if isinstance(e.to, A.CType) and e.to.is_float() \
                    and isinstance(v, int):
                return DecInterval.from_float(float(v))
            return v
        if isinstance(e, A.UnOp):
            if e.op == "-":
                return -self._expr(e.operand, env)
            if e.op == "!":
                return 0 if self._truth(e.operand, env) else 1
            if e.op == "~":
                return ~self._expr(e.operand, env)
            if e.op == "*":
                return self._expr(e.operand, env)[0]
            raise ReproError(f"oracle: unary {e.op!r}")
        if isinstance(e, A.BinOp):
            return self._binop(e, env)
        if isinstance(e, A.Call):
            return self._call_expr(e, env)
        if isinstance(e, A.Cond):
            return self._expr(e.then if self._truth(e.cond, env) else e.els, env)
        raise ReproError(f"oracle: unsupported expression {type(e).__name__}")

    def _binop(self, e: A.BinOp, env: Dict[str, Any]):
        op = e.op
        if op in ("&&", "||"):
            l = self._truth(e.lhs, env)
            if op == "&&":
                return 1 if (l and self._truth(e.rhs, env)) else 0
            return 1 if (l or self._truth(e.rhs, env)) else 0
        l = self._expr(e.lhs, env)
        r = self._expr(e.rhs, env)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return 1 if _compare(op, l, r) else 0
        return _apply_binop(op, l, r)

    def _call_expr(self, e: A.Call, env: Dict[str, Any]):
        if e.name in MATH_FUNCS:
            args = [_promote(self._expr(a, env)) for a in e.args]
            if e.name == "sqrt":
                return args[0].sqrt()
            if e.name == "fabs":
                return args[0].abs_()
            if e.name == "exp":
                return args[0].exp()
            if e.name == "log":
                return args[0].ln()
            if e.name == "fmin":
                return args[0].min_with(args[1])
            if e.name == "fmax":
                return args[0].max_with(args[1])
        if e.name in self.funcs:
            func = self.funcs[e.name]
            args = [self._expr(a, env) for a in e.args]
            return self._call(func, args)
        raise ReproError(f"oracle: unknown function {e.name!r}")


def _coerce(v):
    if isinstance(v, DecInterval):
        return v
    if isinstance(v, Fraction):
        return DecInterval.from_fraction(v)
    if isinstance(v, (int, float)):
        return DecInterval.from_float(float(v))
    if isinstance(v, (list, tuple)):
        return [_coerce(x) for x in v]
    try:
        import numpy as np

        if isinstance(v, np.ndarray):
            return _coerce(v.tolist())
    except ImportError:  # pragma: no cover
        pass
    raise ReproError(f"oracle: cannot coerce {type(v).__name__}")


def _promote(v):
    if isinstance(v, DecInterval):
        return v
    return DecInterval.from_float(float(v))


def _apply_binop(op: str, l, r):
    both_int = isinstance(l, int) and isinstance(r, int)
    if both_int:
        if op == "+":
            return l + r
        if op == "-":
            return l - r
        if op == "*":
            return l * r
        if op == "/":
            if r == 0:
                raise OracleUndefined("integer division by zero")
            q = l // r
            if q < 0 and q * r != l:
                q += 1
            return q
        if op == "%":
            return l - r * _apply_binop("/", l, r)
        if op == "<<":
            return l << r
        if op == ">>":
            return l >> r
        if op == "&":
            return l & r
        if op == "|":
            return l | r
        if op == "^":
            return l ^ r
        raise ReproError(f"oracle: integer op {op!r}")
    l, r = _promote(l), _promote(r)
    if op == "+":
        return l + r
    if op == "-":
        return l - r
    if op == "*":
        return l * r
    if op == "/":
        return l / r
    raise ReproError(f"oracle: float op {op!r}")


def _compare(op: str, l, r) -> bool:
    if isinstance(l, int) and isinstance(r, int):
        return {"<": l < r, "<=": l <= r, ">": l > r, ">=": l >= r,
                "==": l == r, "!=": l != r}[op]
    l, r = _promote(l), _promote(r)
    if op == "<":
        return l.definitely_lt(r)
    if op == "<=":
        return l.definitely_le(r)
    if op == ">":
        return r.definitely_lt(l)
    if op == ">=":
        return r.definitely_le(l)
    if op == "==":
        if l.is_point() and r.is_point():
            return l.lo == r.lo
        if l.hi < r.lo or r.hi < l.lo:
            return False
        raise OracleAmbiguous("== undecidable")
    if op == "!=":
        return not _compare("==", l, r)
    raise ReproError(f"oracle: comparison {op!r}")

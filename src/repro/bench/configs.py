"""Named configuration sets for each figure/table of the evaluation."""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = [
    "K_SWEEP",
    "FIG8_CONFIGS",
    "FIG9_SAFEGEN",
    "FIG9_LIBRARIES",
    "FIG9_IGEN",
    "TABLE3_CONFIGS",
    "FULL_AA_K",
]

#: The paper sweeps k = 8, 12, ..., 48 (Fig. 8/9).
K_SWEEP: List[int] = list(range(8, 49, 4))

#: Fig. 8 configurations (Section VII-A plot navigation).
FIG8_CONFIGS: List[str] = [
    "f64a-ssnn",  # sorted, smallest
    "f64a-smnn",  # sorted, mean
    "f64a-sonn",  # sorted, oldest
    "f64a-srnn",  # sorted, random (baseline fusion)
    "f64a-dsnn",  # direct-mapped, smallest
    "f64a-dsnv",  # + vectorized
    "f64a-dspn",  # + prioritization
    "f64a-dspv",  # + both
    "f64a-smpn",  # sorted mean + prioritization
    "dda-dspn",   # double-double central value
]

#: Fig. 9: SafeGen lines.
FIG9_SAFEGEN: List[str] = ["f64a-dspv"]

#: Fig. 9: library baselines (reimplementations, see DESIGN.md).
FIG9_LIBRARIES: List[str] = ["yalaa-aff0", "yalaa-aff1", "ceres-affine"]

#: Fig. 9: the IA compiler baselines.
FIG9_IGEN: List[str] = ["ia-f64", "ia-dd"]

#: Table III compares fusion/placement at k = 40.
TABLE3_CONFIGS: List[Tuple[str, str]] = [
    ("ss", "f64a-ssnn"),
    ("sm", "f64a-smnn"),
    ("so", "f64a-sonn"),
    ("ds", "f64a-dsnn"),
]

#: Fig. 9's "full AA" k values per benchmark (large enough that no fusion
#: occurs; the paper used 800/12K/6K/2.5K for henon/sor/fgm/luf).
FULL_AA_K: Dict[str, int] = {
    "henon": 800,
    "sor": 12_000,
    "fgm": 6_000,
    "luf": 2_500,
}

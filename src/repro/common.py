"""Small shared helpers used by both the IA and AA runtimes."""

from __future__ import annotations

import enum

from .errors import AmbiguousComparisonError

__all__ = ["DecisionPolicy", "decide_comparison"]


class DecisionPolicy(enum.Enum):
    """What to do when a comparison between overlapping ranges is ambiguous.

    The paper supports comparison operations on affine values but a range
    comparison only has a definite answer when the ranges are disjoint.  When
    they overlap:

    * ``STRICT`` raises :class:`repro.errors.AmbiguousComparisonError` — the
      fully sound behaviour (control flow cannot be certified).
    * ``CENTRAL`` decides using the central values / midpoints and records
      that the decision was unsound; useful to keep exploring a computation
      whose certificate is already lost.
    """

    STRICT = "strict"
    CENTRAL = "central"


def decide_comparison(
    definite: bool | None,
    central_answer: bool,
    policy: DecisionPolicy,
    what: str,
    stats=None,
) -> bool:
    """Resolve a three-valued comparison result.

    ``definite`` is True/False when the ranges are disjoint enough to decide,
    None when ambiguous.  ``stats`` (optional) is an object with an
    ``ambiguous_branches`` counter that is incremented on unsound decisions.
    """
    if definite is not None:
        return definite
    if policy is DecisionPolicy.STRICT:
        raise AmbiguousComparisonError(
            f"comparison {what} is ambiguous: ranges overlap"
        )
    if stats is not None:
        stats.ambiguous_branches += 1
    return central_answer

"""Small shared helpers used by both the IA and AA runtimes."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from .errors import AmbiguousComparisonError

__all__ = ["DecisionPolicy", "ValueRange", "decide_comparison"]


@dataclass(frozen=True)
class ValueRange:
    """A range-valued program input: "this argument lies in ``[lo, hi]``".

    Plain floats passed to a compiled program mean *a point input with ulp
    uncertainty*; a :class:`ValueRange` means *the whole interval* — the
    runtime turns it into one input symbol covering the half-width
    (``AffineContext.from_interval``) and the batch engine stacks columns
    of them into per-row box inputs.  This is the argument type the domain
    analysis engine (:mod:`repro.domain`) feeds through
    ``CompiledProgram.run_batch`` to evaluate subdomains.

    ``name`` (optional) labels the input for symbol provenance, so
    ``aa.explain`` can attribute error mass back to this parameter.
    """

    lo: float
    hi: float
    name: str | None = None

    def __post_init__(self) -> None:
        lo, hi = float(self.lo), float(self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if math.isnan(lo) or math.isnan(hi) or hi < lo:
            raise ValueError(f"invalid range [{lo!r}, {hi!r}]")

    def midpoint(self) -> float:
        mid = self.lo + (self.hi - self.lo) / 2.0
        if not math.isfinite(mid):
            mid = self.lo / 2.0 + self.hi / 2.0
        return mid


class DecisionPolicy(enum.Enum):
    """What to do when a comparison between overlapping ranges is ambiguous.

    The paper supports comparison operations on affine values but a range
    comparison only has a definite answer when the ranges are disjoint.  When
    they overlap:

    * ``STRICT`` raises :class:`repro.errors.AmbiguousComparisonError` — the
      fully sound behaviour (control flow cannot be certified).
    * ``CENTRAL`` decides using the central values / midpoints and records
      that the decision was unsound; useful to keep exploring a computation
      whose certificate is already lost.
    """

    STRICT = "strict"
    CENTRAL = "central"


def decide_comparison(
    definite: bool | None,
    central_answer: bool,
    policy: DecisionPolicy,
    what: str,
    stats=None,
) -> bool:
    """Resolve a three-valued comparison result.

    ``definite`` is True/False when the ranges are disjoint enough to decide,
    None when ambiguous.  ``stats`` (optional) is an object with an
    ``ambiguous_branches`` counter that is incremented on unsound decisions.
    """
    if definite is not None:
        return definite
    if policy is DecisionPolicy.STRICT:
        raise AmbiguousComparisonError(
            f"comparison {what} is ambiguous: ranges overlap"
        )
    if stats is not None:
        stats.ambiguous_branches += 1
    return central_answer

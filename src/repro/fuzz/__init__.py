"""Differential soundness fuzzer for the SafeGen pipeline.

The compiler's entire value proposition is *soundness*: the rewritten
program's range must contain the result the original program would produce
in real arithmetic.  This package searches for counterexamples the way
differential/test-stability work does (Titolo et al.; Darulova & Kuncak):

* :mod:`generator` — seeded, grammar-driven random programs in the
  supported C99 subset (straight-line code, loops, branches, arrays,
  math calls), built over an index-based mini-AST so any subset of
  statements is still a valid program (which is what makes shrinking
  trivial and deterministic).
* :mod:`lattice` — the *agreement lattice*: which relations between
  configurations are theorems (checked, any breach is a bug) and which
  are heuristics (recorded, never a failure).
* :mod:`shrink` — delta-debugging on the statement list + per-statement
  simplification, producing a minimal reproducer.
* :mod:`campaign` — fan a fuzzing campaign out through the service batch
  engine (process pool, per-program wall-clock timeout, ServiceStats
  counters); powers ``python -m repro fuzz``.
* :mod:`corpus` — persist reproducers under ``tests/fuzz/corpus/`` and
  replay them (pytest replays every committed file forever after).
"""

from .generator import (
    CSourceProgram,
    FuzzProgram,
    GeneratorOptions,
    generate_program,
    program_from_dict,
)
from .lattice import (
    AgreementReport,
    ConfigPoint,
    Violation,
    default_matrix,
    check_program,
)
from .shrink import shrink_program
from .campaign import CampaignReport, FuzzJob, run_campaign, run_one_seed
from .corpus import load_corpus, replay_entry, save_reproducer

__all__ = [
    "AgreementReport",
    "CSourceProgram",
    "CampaignReport",
    "ConfigPoint",
    "FuzzJob",
    "FuzzProgram",
    "GeneratorOptions",
    "Violation",
    "check_program",
    "default_matrix",
    "generate_program",
    "load_corpus",
    "program_from_dict",
    "replay_entry",
    "run_campaign",
    "run_one_seed",
    "save_reproducer",
    "shrink_program",
]

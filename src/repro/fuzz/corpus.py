"""Reproducer corpus: every bug the fuzzer ever found, replayed forever.

A corpus entry is one JSON file holding the (shrunken) program, the inputs,
the configuration matrix it failed under, and a human-readable rendering of
the C source.  ``tests/fuzz/test_corpus.py`` replays every committed entry
on every test run, so a fixed bug stays fixed: the entry fails on the
pre-fix code and passes afterwards.

File names are content-addressed (``<kind>-<digest>.json``) so re-finding
the same minimal program is idempotent rather than corpus spam.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .generator import program_from_dict
from .lattice import AgreementReport, ConfigPoint, Violation, check_program

__all__ = ["save_reproducer", "load_corpus", "replay_entry",
           "default_corpus_dir"]

SCHEMA = 1


def default_corpus_dir() -> str:
    """``tests/fuzz/corpus`` relative to the repository root, best effort:
    walk up from this file looking for the tests directory."""
    here = os.path.dirname(os.path.abspath(__file__))
    for _ in range(6):
        candidate = os.path.join(here, "tests", "fuzz", "corpus")
        if os.path.isdir(os.path.dirname(candidate)) \
                or os.path.isdir(candidate):
            return candidate
        here = os.path.dirname(here)
    return os.path.join(os.getcwd(), "tests", "fuzz", "corpus")


def save_reproducer(corpus_dir: str, violation: Violation,
                    matrix: Sequence[ConfigPoint],
                    description: Optional[str] = None) -> str:
    """Write one corpus entry; returns its path (stable per content)."""
    os.makedirs(corpus_dir, exist_ok=True)
    entry = {
        "schema": SCHEMA,
        "kind": violation.kind,
        "config_name": violation.config_name,
        "detail": violation.detail,
        "description": description or violation.detail,
        "program": violation.program,
        "matrix": [p.to_dict() for p in matrix],
        "source": violation.source
        or program_from_dict(violation.program).c_source(),
    }
    blob = json.dumps({k: entry[k] for k in ("kind", "program", "matrix")},
                      sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode()).hexdigest()[:12]
    path = os.path.join(corpus_dir, f"{violation.kind}-{digest}.json")
    with open(path, "w") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus(corpus_dir: Optional[str] = None
                ) -> List[Tuple[str, Dict[str, Any]]]:
    """All (path, entry) pairs in the corpus, sorted by file name."""
    corpus_dir = corpus_dir or default_corpus_dir()
    if not os.path.isdir(corpus_dir):
        return []
    out = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(corpus_dir, name)
        with open(path) as fh:
            out.append((path, json.load(fh)))
    return out


def replay_entry(entry: Dict[str, Any], service=None) -> AgreementReport:
    """Re-run one corpus entry through its checks.

    The caller asserts ``report.ok`` — i.e. the bug this entry reproduced
    stays fixed *and* (for program entries) the oracle-containment property
    holds on it.  Two entry types:

    * ``type: "program"`` (default) — full agreement-lattice check of a
      generated or raw-C program under the entry's config matrix.
    * ``type: "runtime-api"`` — direct :class:`repro.compiler.runtime.
      Runtime` calls; catches bugs in the runtime surface that generated
      code cannot reach (codegen wraps every scalar before the call).
    """
    if entry.get("type", "program") == "runtime-api":
        return _replay_runtime_api(entry)
    program = program_from_dict(entry["program"])
    matrix = tuple(ConfigPoint.from_dict(p) for p in entry["matrix"])
    return check_program(program, matrix=matrix, service=service)


def _replay_runtime_api(entry: Dict[str, Any]) -> AgreementReport:
    """Execute direct Runtime calls; any exception or a range result that
    fails the entry's containment expectation is a violation."""
    from ..aa import AffineContext
    from ..compiler.runtime import Runtime
    from ..common import DecisionPolicy

    report = AgreementReport()
    policy = DecisionPolicy(entry.get("decision_policy", "central"))
    for mode in entry.get("modes", ["ia", "ia_dd", "aa"]):
        # In aa mode the Runtime inherits the context's policy, so the
        # entry's policy must be installed on the context itself.
        ctx = AffineContext(decision_policy=policy) if mode == "aa" else None
        rt = Runtime(mode=mode, ctx=ctx, decision_policy=policy)
        for call in entry["calls"]:
            args = [rt.input(a["input"]) if isinstance(a, dict) else a
                    for a in call["args"]]
            try:
                result = rt.__getattribute__(call["op"])(*args)
            except Exception as exc:
                report.violations.append(Violation(
                    kind="crash", config_name=mode,
                    detail=f"{call['op']}{tuple(call['args'])!r}: "
                           f"{type(exc).__name__}: {exc}"))
                continue
            if "expect" in call and result != call["expect"]:
                report.violations.append(Violation(
                    kind="wrong-result", config_name=mode,
                    detail=f"{call['op']} returned {result!r}, expected "
                           f"{call['expect']!r}"))
            if "contains" in call:
                iv = result.interval()
                if not (iv.lo <= call["contains"] <= iv.hi):
                    report.violations.append(Violation(
                        kind="oracle-containment", config_name=mode,
                        detail=f"{call['op']} enclosure [{iv.lo!r}, "
                               f"{iv.hi!r}] misses {call['contains']!r}"))
            expect_amb = call.get("expect_ambiguous")
            if expect_amb is not None \
                    and rt.stats.ambiguous_branches != expect_amb:
                report.violations.append(Violation(
                    kind="wrong-result", config_name=mode,
                    detail=f"{call['op']} charged "
                           f"{rt.stats.ambiguous_branches} ambiguous "
                           f"branches, expected {expect_amb}"))
    return report

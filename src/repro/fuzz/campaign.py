"""Fuzzing campaigns through the service batch engine.

One *seed* is one unit of work: generate the program, compile it at every
matrix point (through the worker's process-local
:class:`repro.service.CompileService`, so the compile cache stays warm
across seeds), run the agreement-lattice checks, and ship a JSON-safe
verdict back.  Seeds fan out as ``FuzzJob``s over the existing
:class:`repro.service.BatchEngine` — which is what buys the campaign a
**per-program wall-clock timeout** (a hung compile kills its worker and the
pool is replaced; the campaign keeps going) and ``--jobs N`` parallelism
for free.

Counterexamples are shrunk in the parent process (shrinking re-runs the
checks dozens of times; doing it next to the warm parent cache is the cheap
place) and persisted to the corpus directory, where pytest replays them
forever after.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .generator import DEFAULT_OPTIONS, FuzzProgram, GeneratorOptions, \
    generate_program
from .lattice import ConfigPoint, Violation, check_program, default_matrix

__all__ = ["FuzzJob", "CampaignReport", "run_one_seed", "run_campaign",
           "execute_fuzz_payload"]


@dataclass
class FuzzJob:
    """One seed's trip through the matrix (batch-engine job, kind='fuzz')."""

    seed: int
    options: GeneratorOptions = field(default=DEFAULT_OPTIONS)
    matrix: Optional[Tuple[ConfigPoint, ...]] = None
    oracle_prec: int = 60
    tag: Dict[str, Any] = field(default_factory=dict)

    kind = "fuzz"

    def to_payload(self) -> Dict[str, Any]:
        matrix = self.matrix if self.matrix is not None else default_matrix()
        return {
            "kind": self.kind,
            "seed": self.seed,
            "options": self.options.to_dict(),
            "matrix": [p.to_dict() for p in matrix],
            "oracle_prec": self.oracle_prec,
            "tag": dict(self.tag),
        }


def run_one_seed(seed: int, options: GeneratorOptions = DEFAULT_OPTIONS,
                 matrix: Optional[Tuple[ConfigPoint, ...]] = None,
                 service=None, oracle_prec: int = 60) -> Dict[str, Any]:
    """Generate, check, and summarize one seed (JSON-safe)."""
    program = generate_program(seed, options)
    report = check_program(program, matrix=matrix, service=service,
                           oracle_prec=oracle_prec)
    return {
        "seed": seed,
        "ok": report.ok,
        "violations": [v.to_dict() for v in report.violations],
        "notes": list(report.notes),
        "oracle_skipped": report.oracle_skipped,
        "intervals": {k: list(v) for k, v in report.intervals.items()},
    }


def execute_fuzz_payload(payload: Dict[str, Any], service) -> Dict[str, Any]:
    """Batch-engine entry point (see ``repro.service.jobs.execute_job``)."""
    matrix = tuple(ConfigPoint.from_dict(p) for p in payload["matrix"])
    options = GeneratorOptions.from_dict(payload["options"])
    value = run_one_seed(payload["seed"], options=options, matrix=matrix,
                         service=service,
                         oracle_prec=payload.get("oracle_prec", 60))
    value["tag"] = payload.get("tag", {})
    service.stats.add("fuzz_seeds")
    if not value["ok"]:
        service.stats.add("fuzz_violations", len(value["violations"]))
    return value


@dataclass
class CampaignReport:
    """Aggregate outcome of one fuzzing campaign."""

    seeds_run: int = 0
    seeds_failed: int = 0      # engine-level failures (timeout, worker death)
    violations: List[Violation] = field(default_factory=list)
    reproducers: List[str] = field(default_factory=list)  # corpus paths
    notes: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    timed_out_seeds: List[int] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.timed_out_seeds

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seeds_run": self.seeds_run,
            "seeds_failed": self.seeds_failed,
            "violations": [v.to_dict() for v in self.violations],
            "reproducers": list(self.reproducers),
            "notes": list(self.notes),
            "elapsed_s": round(self.elapsed_s, 3),
            "timed_out_seeds": list(self.timed_out_seeds),
            "ok": self.ok,
        }


def run_campaign(seconds: Optional[float] = None,
                 iterations: Optional[int] = None,
                 jobs: int = 1,
                 seed: int = 0,
                 options: GeneratorOptions = DEFAULT_OPTIONS,
                 matrix: Optional[Tuple[ConfigPoint, ...]] = None,
                 timeout_s: Optional[float] = 60.0,
                 cache_dir: Optional[str] = None,
                 corpus_dir: Optional[str] = None,
                 shrink: bool = True,
                 shrink_steps: int = 120,
                 stats=None,
                 log=None) -> CampaignReport:
    """Run a campaign until the time budget or iteration count is spent.

    Seeds are ``seed, seed+1, ...`` — a campaign is reproducible from its
    starting seed.  ``jobs > 1`` fans seeds out over the batch engine's
    process pool with a per-seed wall-clock ``timeout_s``; serial campaigns
    run in-process (no preemption, but also no pool startup cost — right
    for pytest smoke).  Violations are shrunk and, when ``corpus_dir`` is
    given, persisted as replayable reproducers.
    """
    from ..service import BatchEngine
    from .corpus import save_reproducer

    if seconds is None and iterations is None:
        iterations = 100
    if matrix is None:
        matrix = default_matrix()
    engine = BatchEngine(jobs=jobs, timeout_s=timeout_s,
                         cache_dir=cache_dir, stats=stats)
    report = CampaignReport()
    t0 = time.monotonic()
    next_seed = seed
    # Keep every worker busy without building one huge up-front batch the
    # deadline would then overshoot.
    round_size = max(jobs, 1) * 4

    def out(msg: str) -> None:
        if log is not None:
            log(msg)

    while True:
        if iterations is not None and report.seeds_run >= iterations:
            break
        if seconds is not None and time.monotonic() - t0 >= seconds:
            break
        n = round_size
        if iterations is not None:
            n = min(n, iterations - report.seeds_run)
        batch = [FuzzJob(seed=s, options=options, matrix=matrix)
                 for s in range(next_seed, next_seed + n)]
        next_seed += n
        for result in engine.run(batch):
            report.seeds_run += 1
            if not result.ok:
                report.seeds_failed += 1
                if result.timed_out:
                    report.timed_out_seeds.append(batch[result.index].seed)
                    out(f"seed {batch[result.index].seed}: TIMED OUT "
                        f"({result.error})")
                else:
                    # A worker crash is a finding too — surface it as a
                    # crash violation against the whole matrix.
                    report.violations.append(Violation(
                        kind="crash", config_name="<engine>",
                        detail=str(result.error),
                        program=generate_program(
                            batch[result.index].seed, options).to_dict()))
                    out(f"seed {batch[result.index].seed}: engine failure")
                continue
            value = result.value
            report.notes.extend(value.get("notes", []))
            if value["ok"]:
                continue
            for vdict in value["violations"]:
                violation = Violation.from_dict(vdict)
                out(f"seed {value['seed']}: {violation.kind} "
                    f"[{violation.config_name}] {violation.detail}")
                violation = _shrink_violation(
                    violation, matrix, shrink=shrink,
                    shrink_steps=shrink_steps, out=out)
                report.violations.append(violation)
                if corpus_dir is not None:
                    path = save_reproducer(corpus_dir, violation, matrix)
                    report.reproducers.append(path)
                    out(f"  reproducer -> {path}")
    report.elapsed_s = time.monotonic() - t0
    if stats is not None:
        # Serial campaigns already counted per-seed inside execute_job;
        # fold parent-side summary counters in either way.
        stats.add("fuzz_campaign_s", report.elapsed_s)
    return report


def _shrink_violation(violation: Violation,
                      matrix: Sequence[ConfigPoint],
                      shrink: bool, shrink_steps: int, out) -> Violation:
    """Replace the violation's program with a minimal one showing the same
    (kind, config) failure."""
    from .shrink import shrink_program

    if not shrink or not violation.program:
        return violation
    program = FuzzProgram.from_dict(violation.program)
    point = next((p for p in matrix if p.name == violation.config_name), None)
    check_matrix = tuple(matrix)

    def still_fails(candidate: FuzzProgram) -> bool:
        rep = check_program(candidate, matrix=check_matrix)
        return any(v.kind == violation.kind
                   and (point is None or v.config_name == violation.config_name)
                   for v in rep.violations)

    small = shrink_program(program, still_fails, max_steps=shrink_steps)
    if len(small.stmts) < len(program.stmts) or small != program:
        out(f"  shrunk {len(program.stmts)} -> {len(small.stmts)} statements")
    rep = check_program(small, matrix=check_matrix)
    match = next((v for v in rep.violations
                  if v.kind == violation.kind), None)
    if match is not None:
        match.program = small.to_dict()
        match.source = small.c_source()
        return match
    violation.program = small.to_dict()
    violation.source = small.c_source()
    return violation

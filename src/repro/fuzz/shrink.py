"""Delta-debugging for fuzz counterexamples.

Works on the generator's statement list, not on C text: because expression
references resolve modulo the live scope (see :mod:`generator`), *every*
subset of statements renders to a valid program, so shrinking is ordinary
ddmin over the statement tuple followed by per-statement simplification —
no re-parsing, no rename bookkeeping, and fully deterministic.

``is_failing`` is any predicate over a :class:`FuzzProgram`; the campaign
passes "re-run the lattice check and see the same violation kind".  Each
candidate costs several compilations, so the step budget is bounded.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from .generator import FuzzProgram

__all__ = ["shrink_program"]


def shrink_program(program: FuzzProgram,
                   is_failing: Callable[[FuzzProgram], bool],
                   max_steps: int = 200) -> FuzzProgram:
    """Smallest program (statement count, then statement complexity) that
    still satisfies ``is_failing``.  Returns ``program`` unchanged if the
    predicate does not hold on it (nothing to shrink)."""
    budget = [max_steps]

    def check(candidate: FuzzProgram) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return bool(is_failing(candidate))
        except Exception:
            # A shrink candidate that breaks the harness itself is not a
            # smaller reproducer of *this* bug.
            return False

    if not check(program):
        return program
    program = _ddmin_stmts(program, check)
    program = _simplify_stmts(program, check)
    # Simplification can unlock further removals (e.g. a branch collapsed
    # to an assign may now be deletable); one more removal sweep is cheap.
    program = _ddmin_stmts(program, check)
    return program


def _ddmin_stmts(program: FuzzProgram, check) -> FuzzProgram:
    """Classic ddmin on the statement tuple."""
    stmts = list(program.stmts)
    chunk = max(1, len(stmts) // 2)
    while len(stmts) > 1:
        removed_any = False
        i = 0
        while i < len(stmts):
            candidate = stmts[:i] + stmts[i + chunk:]
            if candidate and check(program.with_stmts(candidate)):
                stmts = candidate  # same i now names the next chunk
                removed_any = True
            else:
                i += chunk
        if removed_any:
            chunk = min(chunk, max(1, len(stmts) // 2))
        elif chunk == 1:
            break
        else:
            chunk //= 2
    return program.with_stmts(stmts)


def _simplify_stmts(program: FuzzProgram, check) -> FuzzProgram:
    """Try cheaper forms of each surviving statement, largest jumps first.

    Iterates to a fixpoint: accepting ``bin(a, b) -> a`` exposes ``a``'s own
    sub-expressions on the next sweep, so deep expressions shrink all the
    way to a leaf (the check budget still bounds total work).
    """
    stmts = list(program.stmts)
    changed = True
    while changed:
        changed = False
        for i in range(len(stmts)):
            for candidate in _simpler_versions(stmts[i]):
                trial = program.with_stmts(stmts[:i] + [candidate]
                                           + stmts[i + 1:])
                if check(trial):
                    stmts[i] = candidate
                    changed = True
                    break
    return program.with_stmts(stmts)


def _simpler_versions(stmt) -> List[Any]:
    """Simplification ladder for one statement (most aggressive first)."""
    kind = stmt[0]
    out: List[Any] = []
    if kind == "loop":
        _, trips, op, expr = stmt
        out.append(("assign", expr))
        if trips > 1:
            out.append(("loop", 1, op, expr))
    elif kind == "branch":
        _, ra, rb, then_e, else_e = stmt
        out.append(("assign", then_e))
        out.append(("assign", else_e))
    elif kind == "array":
        _, elems = stmt
        out.extend(("assign", e) for e in elems)
    elif kind == "assign":
        out.extend(("assign", e) for e in _simpler_exprs(stmt[1]))
    return out


def _simpler_exprs(expr) -> List[Any]:
    """Replace an expression by its sub-expressions / a leaf."""
    kind = expr[0]
    if kind in ("ref", "const"):
        return []
    if kind == "bin":
        return [expr[2], expr[3]]
    if kind == "gdiv":
        return [expr[1], expr[2]]
    if kind == "call1":
        return [expr[2]]
    if kind == "call2":
        return [expr[2], expr[3]]
    return []

"""Seeded, grammar-driven random programs in the supported C99 subset.

Design constraint: the shrinker must be able to drop or simplify *any*
statement and still have a valid program.  Expressions therefore reference
earlier values by **index**, and rendering resolves an index against the
list of names still alive (``names[ref % len(names)]``) — removing a
statement can change which value a later reference resolves to, but never
produces an unbound name, an uninitialized read, or a type error.

Numeric hygiene: inputs live in ``[0.5, 2.0]``; every division is guarded
(``a / (1.5 + b*b)``), ``sqrt``/``log`` arguments are forced positive, and
``exp`` arguments are damped — so the *float* execution of a generated
program never traps, and oracle-undefined runs stay rare.  Soundness bugs
hide in the plumbing (comparisons, fmin/fmax, folding, condensation), not
in manufactured overflows.

Expressions and statements are plain nested tuples (JSON-safe), so a
reproducer round-trips through the corpus files unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Sequence, Tuple

__all__ = ["GeneratorOptions", "FuzzProgram", "CSourceProgram",
           "generate_program", "program_from_dict", "render_c",
           "DEFAULT_OPTIONS"]

# Expression grammar (nested tuples):
#   ("ref", i)                      value reference, resolved modulo scope
#   ("const", 1.25)                 double literal
#   ("bin", "+|-|*", e1, e2)        unguarded arithmetic
#   ("gdiv", e1, e2)                e1 / (1.5 + e2*e2)   (guarded division)
#   ("call1", "sqrt|fabs|exp|log", e)   guarded unary math call
#   ("call2", "fmin|fmax", e1, e2)  binary math call
#
# Statement grammar (each statement defines exactly one new double):
#   ("assign", expr)
#   ("loop", trips, op, expr)       t = t0; repeat trips: t = t op expr
#   ("branch", ref_a, ref_b, e_then, e_else)   t = (a < b) ? e_then : e_else
#   ("array", (e0, e1, e2))         double a[3] = filled; t = a0+a1+a2

BIN_OPS = ("+", "-", "*")
UNARY_CALLS = ("sqrt", "fabs", "exp", "log")
BINARY_CALLS = ("fmin", "fmax")


@dataclass(frozen=True)
class GeneratorOptions:
    """Size/shape knobs for one generated program."""

    n_inputs: int = 3
    n_stmts: int = 10
    max_expr_depth: int = 3
    p_loop: float = 0.15
    p_branch: float = 0.15
    p_array: float = 0.10
    allow_div: bool = True
    allow_math: bool = True
    max_trips: int = 4

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_inputs": self.n_inputs,
            "n_stmts": self.n_stmts,
            "max_expr_depth": self.max_expr_depth,
            "p_loop": self.p_loop,
            "p_branch": self.p_branch,
            "p_array": self.p_array,
            "allow_div": self.allow_div,
            "allow_math": self.allow_math,
            "max_trips": self.max_trips,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GeneratorOptions":
        return cls(**data)


DEFAULT_OPTIONS = GeneratorOptions()


@dataclass(frozen=True)
class FuzzProgram:
    """One generated program plus the concrete inputs it is fuzzed at."""

    seed: int
    n_inputs: int
    stmts: Tuple[Any, ...]
    inputs: Tuple[float, ...]
    options: GeneratorOptions = field(default=DEFAULT_OPTIONS)

    @property
    def entry(self) -> str:
        return "fuzz_target"

    def c_source(self) -> str:
        return render_c(self)

    def with_stmts(self, stmts: Sequence[Any]) -> "FuzzProgram":
        return replace(self, stmts=tuple(stmts))

    # -- corpus serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "n_inputs": self.n_inputs,
            "stmts": _to_jsonable(self.stmts),
            "inputs": list(self.inputs),
            "options": self.options.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzProgram":
        return cls(
            seed=int(data["seed"]),
            n_inputs=int(data["n_inputs"]),
            stmts=_from_jsonable(data["stmts"]),
            inputs=tuple(float(x) for x in data["inputs"]),
            options=GeneratorOptions.from_dict(data.get("options", {})),
        )


@dataclass(frozen=True)
class CSourceProgram:
    """A hand-written reproducer: raw C source instead of generated AST.

    Shares the duck-typed surface :func:`repro.fuzz.lattice.check_program`
    uses (``c_source()``, ``entry``, ``inputs``, ``to_dict()``), so corpus
    entries can hold programs the grammar cannot express (e.g. ``==``
    comparisons on NaN ranges).  Not shrinkable — these are committed
    already minimal.
    """

    source: str
    inputs: Tuple[float, ...]
    entry: str = "fuzz_target"

    def c_source(self) -> str:
        return self.source

    def to_dict(self) -> Dict[str, Any]:
        return {"c_source": self.source, "inputs": list(self.inputs),
                "entry": self.entry}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CSourceProgram":
        return cls(source=data["c_source"],
                   inputs=tuple(float(x) for x in data["inputs"]),
                   entry=data.get("entry", "fuzz_target"))


def program_from_dict(data: Dict[str, Any]):
    """Corpus deserialization: raw-C entries carry ``c_source``, generated
    entries carry the statement AST."""
    if "c_source" in data:
        return CSourceProgram.from_dict(data)
    return FuzzProgram.from_dict(data)


def _to_jsonable(node):
    if isinstance(node, tuple):
        return [_to_jsonable(x) for x in node]
    return node


def _from_jsonable(node):
    if isinstance(node, list):
        return tuple(_from_jsonable(x) for x in node)
    return node


# -- generation ------------------------------------------------------------------


def generate_program(seed: int,
                     options: GeneratorOptions = DEFAULT_OPTIONS
                     ) -> FuzzProgram:
    """Deterministically generate one program: same seed, same program."""
    rng = random.Random(seed)
    inputs = tuple(round(rng.uniform(0.5, 2.0), 6)
                   for _ in range(options.n_inputs))
    stmts: List[Any] = []
    for _ in range(options.n_stmts):
        stmts.append(_gen_stmt(rng, options))
    return FuzzProgram(seed=seed, n_inputs=options.n_inputs,
                       stmts=tuple(stmts), inputs=inputs, options=options)


def _gen_stmt(rng: random.Random, opt: GeneratorOptions):
    r = rng.random()
    if r < opt.p_loop:
        trips = rng.randint(1, opt.max_trips)
        op = rng.choice(BIN_OPS)
        return ("loop", trips, op, _gen_expr(rng, opt, depth=1))
    r -= opt.p_loop
    if r < opt.p_branch:
        return ("branch", rng.randrange(64), rng.randrange(64),
                _gen_expr(rng, opt, depth=1), _gen_expr(rng, opt, depth=1))
    r -= opt.p_branch
    if r < opt.p_array:
        return ("array", tuple(_gen_expr(rng, opt, depth=1)
                               for _ in range(3)))
    return ("assign", _gen_expr(rng, opt, depth=0))


def _gen_expr(rng: random.Random, opt: GeneratorOptions, depth: int):
    if depth >= opt.max_expr_depth or rng.random() < 0.3:
        if rng.random() < 0.25:
            return ("const", round(rng.uniform(0.1, 2.5), 4))
        return ("ref", rng.randrange(64))
    choices = ["bin", "bin"]  # weight plain arithmetic highest
    if opt.allow_div:
        choices.append("gdiv")
    if opt.allow_math:
        choices += ["call1", "call2"]
    kind = rng.choice(choices)
    if kind == "bin":
        return ("bin", rng.choice(BIN_OPS),
                _gen_expr(rng, opt, depth + 1), _gen_expr(rng, opt, depth + 1))
    if kind == "gdiv":
        return ("gdiv", _gen_expr(rng, opt, depth + 1),
                _gen_expr(rng, opt, depth + 1))
    if kind == "call1":
        return ("call1", rng.choice(UNARY_CALLS),
                _gen_expr(rng, opt, depth + 1))
    return ("call2", rng.choice(BINARY_CALLS),
            _gen_expr(rng, opt, depth + 1), _gen_expr(rng, opt, depth + 1))


# -- rendering -------------------------------------------------------------------


def _fmt(c: float) -> str:
    # repr keeps the value exact; C and Python parse it identically.
    return repr(float(c))


def _render_expr(expr, names: List[str]) -> str:
    kind = expr[0]
    if kind == "ref":
        return names[expr[1] % len(names)]
    if kind == "const":
        return _fmt(expr[1])
    if kind == "bin":
        _, op, a, b = expr
        return f"({_render_expr(a, names)} {op} {_render_expr(b, names)})"
    if kind == "gdiv":
        _, a, b = expr
        rb = _render_expr(b, names)
        return f"({_render_expr(a, names)} / (1.5 + {rb} * {rb}))"
    if kind == "call1":
        _, fn, a = expr
        ra = _render_expr(a, names)
        if fn == "sqrt":
            return f"sqrt(fabs({ra}) + 0.125)"
        if fn == "log":
            return f"log(1.5 + fabs({ra}))"
        if fn == "exp":
            # Damp the argument so exp stays far from overflow even after
            # a few compounding statements.
            return f"exp({ra} * 0.0625)"
        return f"fabs({ra})"
    if kind == "call2":
        _, fn, a, b = expr
        return f"{fn}({_render_expr(a, names)}, {_render_expr(b, names)})"
    raise ValueError(f"unknown expression node {expr!r}")


def render_c(program: FuzzProgram) -> str:
    """Render to C.  Always valid, whatever subset of statements remains."""
    params = ", ".join(f"double x{i}" for i in range(program.n_inputs))
    names = [f"x{i}" for i in range(program.n_inputs)]
    lines = [f"double {program.entry}({params}) {{"]
    for i, stmt in enumerate(program.stmts):
        t = f"t{i}"
        kind = stmt[0]
        if kind == "assign":
            lines.append(f"    double {t} = {_render_expr(stmt[1], names)};")
        elif kind == "loop":
            _, trips, op, expr = stmt
            step = _render_expr(expr, names)
            lines.append(f"    double {t} = {names[-1]};")
            lines.append(f"    for (int i{i} = 0; i{i} < {trips}; i{i}++) {{")
            lines.append(f"        {t} = ({t} {op} {step}) * 0.5;")
            lines.append("    }")
        elif kind == "branch":
            _, ra, rb, then_e, else_e = stmt
            a = names[ra % len(names)]
            b = names[rb % len(names)]
            lines.append(f"    double {t} = 0.0;")
            lines.append(f"    if ({a} < {b}) {{")
            lines.append(f"        {t} = {_render_expr(then_e, names)};")
            lines.append("    } else {")
            lines.append(f"        {t} = {_render_expr(else_e, names)};")
            lines.append("    }")
        elif kind == "array":
            _, elems = stmt
            arr = f"a{i}"
            lines.append(f"    double {arr}[3];")
            for j, e in enumerate(elems):
                lines.append(f"    {arr}[{j}] = {_render_expr(e, names)};")
            lines.append(
                f"    double {t} = ({arr}[0] + {arr}[1] + {arr}[2]) * 0.25;")
        else:
            raise ValueError(f"unknown statement {stmt!r}")
        names.append(t)
    lines.append(f"    return {names[-1]};")
    lines.append("}")
    return "\n".join(lines) + "\n"

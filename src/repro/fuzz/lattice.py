"""The agreement lattice: what must agree with what, and how strongly.

One generated program is compiled at several configurations and executed on
the same concrete inputs.  The lattice classifies every cross-configuration
relation as a **theorem** (a breach is a bug in this repo, full stop) or a
**heuristic** (usually true, recorded for triage, never a failure):

Theorems (checked → :class:`Violation`):

* *oracle containment* — every sound configuration's enclosure contains the
  high-precision oracle interval ``D`` (``D ⊆ R``, or ``R ⊆ D`` when the
  produced range is tighter than the oracle's 60-digit slop — see
  ``agrees``).  Gated on the run taking no ambiguous branch and the oracle
  deciding every branch: once a branch is decided centrally the soundness
  certificate is void by construction, and disagreement is expected.
* *float containment* — the plain unsound double execution lies inside
  every sound enclosure (same gating; the affine program tracks exactly the
  float program's rounding).
* *ia opt == unopt* — interval arithmetic is deterministic per operation
  and the TAC optimizer only reorders/reuses bit-identical computations, so
  the optimized pipeline must produce the **identical** enclosure.
* *no crashes* — compilation and execution never raise (ambiguous-branch
  errors under STRICT and oracle give-ups are expected outcomes, not
  crashes).

Heuristics (recorded in :class:`AgreementReport.notes`, never failures):

* *bounded-k ⊆ full affine* — NOT a theorem: condensation order shifts with
  symbol renumbering (PR 2's note), so a bounded form can poke outside the
  full-affine enclosure without any bug.
* *scalar == vectorized* — usually bit-identical, but the vectorized kernel
  may place/condense symbols in a different order; both are still checked
  against the oracle individually (that part *is* the theorem).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from ..compiler.config import CompilerConfig

__all__ = ["ConfigPoint", "Violation", "AgreementReport", "default_matrix",
           "check_program", "agrees"]


@dataclass(frozen=True)
class ConfigPoint:
    """One corner of the differential matrix."""

    name: str
    config: CompilerConfig
    sound: bool  # does this configuration claim a soundness certificate?

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "config": self.config.to_dict(),
                "sound": self.sound}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConfigPoint":
        return cls(name=data["name"],
                   config=CompilerConfig.from_dict(data["config"]),
                   sound=bool(data["sound"]))


def default_matrix(k: int = 8) -> Tuple[ConfigPoint, ...]:
    """The standard differential matrix: float baseline, ia with and
    without the optimizer, bounded-k affine, full affine, vectorized."""
    return (
        ConfigPoint("float", CompilerConfig(mode="float"), sound=False),
        ConfigPoint("ia", CompilerConfig(mode="ia"), sound=True),
        ConfigPoint("ia-noopt", CompilerConfig(mode="ia", opt=False),
                    sound=True),
        ConfigPoint("aa-bounded", CompilerConfig(mode="aa", k=k), sound=True),
        ConfigPoint("aa-full", CompilerConfig(mode="aa", impl="full"),
                    sound=True),
        ConfigPoint("aa-vec", CompilerConfig(mode="aa", k=k, vectorize=True),
                    sound=True),
    )


@dataclass
class Violation:
    """One lattice breach: a bug until proven otherwise."""

    kind: str          # crash | oracle-containment | float-containment |
                       # opt-divergence
    config_name: str
    detail: str
    program: Dict[str, Any] = field(default_factory=dict)
    source: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "config_name": self.config_name,
                "detail": self.detail, "program": self.program,
                "source": self.source}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        return cls(kind=data["kind"], config_name=data["config_name"],
                   detail=data["detail"], program=data.get("program", {}),
                   source=data.get("source", ""))


@dataclass
class AgreementReport:
    """Everything one program's trip through the matrix produced."""

    violations: List[Violation] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    intervals: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    float_value: Optional[float] = None
    oracle_skipped: Optional[str] = None
    ambiguous: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "violations": [v.to_dict() for v in self.violations],
            "notes": list(self.notes),
            "intervals": {k: list(v) for k, v in self.intervals.items()},
            "float_value": self.float_value,
            "oracle_skipped": self.oracle_skipped,
            "ambiguous": dict(self.ambiguous),
        }


def agrees(range_value, dec) -> bool:
    """Sound agreement between a produced range and the oracle interval.

    The oracle interval ``D`` contains the real result; the produced range
    ``R`` is sound iff it contains the real result.  We accept ``D ⊆ R``
    (the usual case) or ``R ⊆ D`` (R tighter than the oracle's directed-
    rounding slop, e.g. exact cancellation giving R = {0}); a meaningfully
    unsound R cannot hide inside a 60-digit-wide D.
    """
    lo, hi = dec.to_fractions()
    if range_value.contains(lo) and range_value.contains(hi):
        return True
    iv = range_value.interval()
    if not (math.isfinite(iv.lo) and math.isfinite(iv.hi)):
        return True  # unbounded or invalid range: vacuously sound
    return lo <= Fraction(iv.lo) and Fraction(iv.hi) <= hi


def _run_oracle(source: str, inputs, entry: str, prec: int = 60):
    """(oracle interval, None) or (None, reason-it-was-skipped)."""
    from ..bench.oracle import (ExactOracle, OracleAmbiguous,
                                OracleUndefined)

    try:
        truth = ExactOracle(source, entry=entry, prec=prec).run(*inputs)
        value = truth["value"]
        if value is None:
            return None, "oracle returned no value"
        return value, None
    except OracleAmbiguous as exc:
        return None, f"oracle ambiguous: {exc}"
    except OracleUndefined as exc:
        return None, f"oracle undefined: {exc}"
    except Exception as exc:
        # A program every config already failed to compile reaches here too
        # (the crash violations are recorded); an oracle-side give-up is a
        # skip, never a propagated exception.
        return None, f"oracle crashed: {type(exc).__name__}: {exc}"


def check_program(program, matrix: Tuple[ConfigPoint, ...] = None,
                  service=None, oracle_prec: int = 60) -> AgreementReport:
    """Compile+run ``program`` at every matrix point and check the lattice.

    ``program`` is a :class:`repro.fuzz.generator.FuzzProgram`;
    ``service`` (optional) is a :class:`repro.service.CompileService` whose
    cache the compilations go through — the campaign's pool workers pass
    their process-local service in, so repeated shrink steps on related
    programs stay warm.
    """
    from ..errors import ReproError
    from .generator import FuzzProgram  # noqa: F401  (type documented above)

    if matrix is None:
        matrix = default_matrix()
    source = program.c_source()
    report = AgreementReport()
    results: Dict[str, Any] = {}
    programs: Dict[str, Any] = {}

    for point in matrix:
        try:
            prog = _compile(source, point.config, program.entry, service)
            programs[point.name] = prog
            res = prog(*program.inputs)
        except ReproError as exc:
            report.violations.append(Violation(
                kind="crash", config_name=point.name,
                detail=f"{type(exc).__name__}: {exc}",
                program=program.to_dict(), source=source))
            continue
        except Exception as exc:  # non-Repro exceptions are bugs outright
            report.violations.append(Violation(
                kind="crash", config_name=point.name,
                detail=f"{type(exc).__name__}: {exc}",
                program=program.to_dict(), source=source))
            continue
        results[point.name] = res
        if point.sound:
            iv = res.value.interval() if hasattr(res.value, "interval") \
                else res.value
            report.intervals[point.name] = (iv.lo, iv.hi)
            report.ambiguous[point.name] = res.stats.ambiguous_branches
        else:
            report.float_value = res.value

    # -- theorem: the optimized ia pipeline is bit-identical ----------------------
    if "ia" in report.intervals and "ia-noopt" in report.intervals:
        if report.intervals["ia"] != report.intervals["ia-noopt"]:
            report.violations.append(Violation(
                kind="opt-divergence", config_name="ia",
                detail=(f"opt {report.intervals['ia']} != "
                        f"unopt {report.intervals['ia-noopt']}"),
                program=program.to_dict(), source=source))

    # -- theorem: float execution inside every sound enclosure --------------------
    fv = report.float_value
    if fv is not None and isinstance(fv, float) and math.isfinite(fv):
        for name, (lo, hi) in report.intervals.items():
            if report.ambiguous.get(name, 0):
                continue  # certificate already void; disagreement expected
            if math.isnan(lo):
                continue  # invalid range absorbs everything
            if not (lo <= fv <= hi):
                report.violations.append(Violation(
                    kind="float-containment", config_name=name,
                    detail=f"float result {fv!r} outside [{lo!r}, {hi!r}]",
                    program=program.to_dict(), source=source))

    # -- theorem: oracle containment ----------------------------------------------
    oracle, skipped = _run_oracle(source, program.inputs, program.entry,
                                  prec=oracle_prec)
    report.oracle_skipped = skipped
    if oracle is not None:
        for point in matrix:
            if not point.sound or point.name not in results:
                continue
            if report.ambiguous.get(point.name, 0):
                continue
            value = results[point.name].value
            if not agrees(value, oracle):
                lo, hi = report.intervals[point.name]
                report.violations.append(Violation(
                    kind="oracle-containment", config_name=point.name,
                    detail=(f"enclosure [{lo!r}, {hi!r}] does not contain "
                            f"oracle [{oracle.lo}, {oracle.hi}]"),
                    program=program.to_dict(), source=source))

    # -- heuristics: recorded, never failures -------------------------------------
    if "aa-bounded" in report.intervals and "aa-full" in report.intervals:
        blo, bhi = report.intervals["aa-bounded"]
        flo, fhi = report.intervals["aa-full"]
        if not (math.isnan(blo) or math.isnan(flo)) \
                and not (blo <= flo and fhi <= bhi):
            report.notes.append(
                "bounded-k enclosure does not contain full-affine "
                "(expected occasionally: condensation order is not a theorem)")
    if "aa-bounded" in report.intervals and "aa-vec" in report.intervals:
        if report.intervals["aa-bounded"] != report.intervals["aa-vec"]:
            report.notes.append("scalar and vectorized enclosures differ "
                                "(each is checked against the oracle)")

    # -- theorem: the batched runtime agrees with the vectorized scalar path ------
    if "aa-vec" in results:
        _check_batched(program, source, programs["aa-vec"],
                       results["aa-vec"], report)
        _check_refinement(program, source, report, service)
    return report


def _batch_replicas(inputs) -> int:
    return 3


def _check_batched(program, source, vec_prog, scalar_res, report) -> None:
    """The batched-execution corner of the lattice (a theorem):
    ``run_batch`` over N replicas of the same input box must reproduce the
    scalar vectorized enclosure **bit-for-bit** on every row when no cohort
    split occurred, and **contain** it otherwise (a split or scalar
    fallback re-runs rows with fresh symbol numbering, so only containment
    survives).  Skipped silently when numpy is absent or the configuration
    is not batchable (the scalar paths were already checked)."""
    from ..errors import ReproError

    try:
        from ..batchrt import batchable_config, numpy_available, run_batch
    except Exception:  # pragma: no cover - batchrt always importable
        return
    if not numpy_available() or not batchable_config(vec_prog.config):
        return

    n = _batch_replicas(program.inputs)
    try:
        batch = run_batch(vec_prog, [list(program.inputs)] * n)
    except ReproError as exc:
        # The scalar vectorized run succeeded, so the batched path must not
        # raise on the same box.
        report.violations.append(Violation(
            kind="batch-divergence", config_name="aa-vec-batch",
            detail=f"run_batch raised where scalar ran: "
                   f"{type(exc).__name__}: {exc}",
            program=program.to_dict(), source=source))
        return
    except Exception as exc:
        report.violations.append(Violation(
            kind="crash", config_name="aa-vec-batch",
            detail=f"{type(exc).__name__}: {exc}",
            program=program.to_dict(), source=source))
        return

    value = scalar_res.value
    if not hasattr(value, "interval"):
        return  # plain int/float return: nothing enclosure-shaped to check
    iv = value.interval()
    exact = batch.stats.cohort_splits == 0 \
        and batch.stats.scalar_fallbacks == 0
    for row in batch.rows:
        if not row.ok:
            report.violations.append(Violation(
                kind="batch-divergence", config_name="aa-vec-batch",
                detail=f"row {row.index} failed ({row.error}) where the "
                       f"scalar run produced [{iv.lo!r}, {iv.hi!r}]",
                program=program.to_dict(), source=source))
            continue
        if row.interval is None:
            report.violations.append(Violation(
                kind="batch-divergence", config_name="aa-vec-batch",
                detail=f"row {row.index} returned {row.value!r} where the "
                       f"scalar run produced an enclosure",
                program=program.to_dict(), source=source))
            continue
        rlo, rhi = row.interval
        if math.isnan(iv.lo) or math.isnan(iv.hi):
            # Invalid scalar range: the batched row must be invalid too.
            if not (math.isnan(rlo) and math.isnan(rhi)):
                report.violations.append(Violation(
                    kind="batch-divergence", config_name="aa-vec-batch",
                    detail=f"row {row.index} [{rlo!r}, {rhi!r}] is valid "
                           f"where the scalar range is invalid (NaN)",
                    program=program.to_dict(), source=source))
            continue
        if exact:
            same = (_bits(rlo) == _bits(iv.lo)
                    and _bits(rhi) == _bits(iv.hi))
            if not same:
                report.violations.append(Violation(
                    kind="batch-divergence", config_name="aa-vec-batch",
                    detail=f"row {row.index} [{rlo!r}, {rhi!r}] not "
                           f"bit-identical to scalar [{iv.lo!r}, {iv.hi!r}] "
                           f"with no cohort split",
                    program=program.to_dict(), source=source))
        else:
            if math.isnan(rlo) or not (rlo <= iv.lo and iv.hi <= rhi):
                report.violations.append(Violation(
                    kind="batch-divergence", config_name="aa-vec-batch",
                    detail=f"row {row.index} [{rlo!r}, {rhi!r}] does not "
                           f"contain scalar [{iv.lo!r}, {iv.hi!r}] after "
                           f"{batch.stats.cohort_splits} split(s)",
                    program=program.to_dict(), source=source))
    if batch.rows and batch.rows[0].ok and batch.rows[0].interval:
        report.intervals["aa-vec-batch"] = tuple(batch.rows[0].interval)


def _check_refinement(program, source, report, service) -> None:
    """Refinement monotonicity (a *heuristic*, not a theorem): splitting a
    box should give children whose enclosure union is contained in the
    parent's enclosure.  Like bounded-k containment, this is condensation-
    sensitive — symbol renumbering across differently-sized boxes can
    reorder fusion — so a miss is a triage note, never a violation.

    Runs on a STRICT recompile of the aa-vec point (the domain engine's
    analysis profile; the matrix point itself is CENTRAL) and skips
    silently on ambiguous control flow or any undecided subbox.
    """
    from ..common import DecisionPolicy
    from ..errors import ReproError

    try:
        from ..batchrt import batchable_config, numpy_available
        from ..domain import Box, evaluate_boxes
    except Exception:  # pragma: no cover - domain always importable
        return
    if not program.inputs or not numpy_available():
        return
    from dataclasses import replace

    config = replace(
        next(p.config for p in default_matrix() if p.name == "aa-vec"),
        decision_policy=DecisionPolicy.STRICT)
    if not batchable_config(config):  # pragma: no cover - aa-vec always is
        return
    try:
        prog = _compile(source, config, program.entry, service)
        from ..compiler import cast as A

        params = prog.unit.func(prog.entry).params
        if any(isinstance(p.type, A.CType) and p.type.is_integer()
               for p in params):
            return
        parent = Box.from_pairs(
            (p.name, x - (abs(x) + 1.0) * 1e-6, x + (abs(x) + 1.0) * 1e-6)
            for p, x in zip(params, program.inputs))
        dims = parent.splittable_dims()
        if not dims:
            return
        left, right = parent.split(dims[0])
        outs = evaluate_boxes(prog, [parent, left, right], pad_ulps=0.0)
    except ReproError:
        return  # STRICT ambiguity or an analysis limit: nothing to relate
    if not all(o.decided and math.isfinite(o.width) for o in outs):
        return
    po, lo_, hi_ = outs
    union_lo = min(lo_.lo, hi_.lo)
    union_hi = max(lo_.hi, hi_.hi)
    if not (po.lo <= union_lo and union_hi <= po.hi):
        report.notes.append(
            "child-box enclosure union not contained in parent-box "
            "enclosure (expected occasionally: condensation order is "
            "not a theorem)")


def _bits(x: float) -> int:
    import struct

    return struct.unpack("<q", struct.pack("<d", x))[0]


def _compile(source: str, config: CompilerConfig, entry: str, service):
    if service is not None:
        return service.compile(source, config, entry=entry)
    from ..compiler import compile_c

    return compile_c(source, config, entry=entry)

"""Row-vectorized directed rounding on IEEE-754 binary64.

Elementwise mirrors of :mod:`repro.fp.rounding` and the error helpers of
:mod:`repro.aa.form`, branch for branch: every scalar conditional becomes
a mask + blend, so each lane of an output is bit-identical to the scalar
function applied to that lane.  The batched runtime's soundness gate
(batched enclosures equal the scalar vectorized path's bit for bit) rests
on exactly this property — changes here must preserve lane-exactness, not
merely soundness.

Everything runs under ``numpy.errstate(all="ignore")``: the scalar code
relies on IEEE overflow-to-inf / invalid-to-NaN semantics and handles the
specials explicitly, and the masked-out lanes of a blend routinely hold
garbage (e.g. a Dekker split of a huge operand) that must not warn.
"""

from __future__ import annotations

import math

try:
    import numpy as np
except ImportError:  # pragma: no cover - covered via engine availability gate
    np = None

from ..fp.expansion import _SPLITTER, SPLIT_SAFE_BOUND
from ..fp.rounding import (
    EPS,
    ETA,
    MAX_FLOAT,
    _PROD_HI_SAFE,
    _PROD_LO_SAFE,
)

__all__ = [
    "add_rd_v",
    "add_ru_v",
    "div_rd_v",
    "div_ru_v",
    "mul_rd_v",
    "mul_ru_v",
    "prod_err_v",
    "sqrt_rd_v",
    "sqrt_ru_v",
    "sub_rd_v",
    "sub_ru_v",
    "sum_bound_ru_rows",
    "sum_err_v",
    "two_prod_v",
    "two_sum_v",
    "ulp_v",
]

_INF = math.inf
_ULP_MAX = math.ulp(MAX_FLOAT)


def two_sum_v(a, b):
    """Elementwise Knuth TwoSum (bit-identical to ``fp.expansion.two_sum``)."""
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def _split_v(a):
    c = _SPLITTER * a
    hi = c - (c - a)
    lo = a - hi
    return hi, lo


def two_prod_v(a, b):
    """Elementwise Dekker TwoProd (bit-identical to ``two_prod`` where the
    split is safe; callers mask the unsafe lanes)."""
    p = a * b
    a_hi, a_lo = _split_v(a)
    b_hi, b_lo = _split_v(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


def _add_dir_v(a, b, up: bool):
    """Elementwise ``fp.rounding._add_dir``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(all="ignore"):
        s, e = two_sum_v(a, b)
        stepped = np.nextafter(s, _INF if up else -_INF)
        # NaN/inf lanes: e is NaN there, so both comparisons are False and
        # the lane keeps s — exactly the scalar pass-through.
        bump = (e > 0.0) if up else (e < 0.0)
        out = np.where(bump, stepped, s)
        ovf = np.isinf(s) & ~(np.isinf(a) | np.isinf(b))
        if ovf.any():
            if up:
                fix = np.where(s > 0.0, _INF, -MAX_FLOAT)
            else:
                fix = np.where(s > 0.0, MAX_FLOAT, -_INF)
            out = np.where(ovf, fix, out)
    return out


def add_ru_v(a, b):
    return _add_dir_v(a, b, True)


def add_rd_v(a, b):
    return _add_dir_v(a, b, False)


def sub_ru_v(a, b):
    return _add_dir_v(a, np.negative(b), True)


def sub_rd_v(a, b):
    return _add_dir_v(a, np.negative(b), False)


def _mul_dir_v(a, b, up: bool):
    """Elementwise ``fp.rounding._mul_dir``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(all="ignore"):
        p = a * b
        live = ~(np.isnan(p) | np.isinf(p))
        ap = np.abs(a)
        bb = np.abs(b)
        absp = np.abs(p)
        unsafe = (
            (ap > SPLIT_SAFE_BOUND)
            | (bb > SPLIT_SAFE_BOUND)
            | ~((_PROD_LO_SAFE < absp) & (absp < _PROD_HI_SAFE))
        )
        _, e = two_prod_v(a, b)
        stepped = np.nextafter(p, _INF if up else -_INF)
        bump = ((e > 0.0) if up else (e < 0.0)) & live & ~unsafe
        out = np.where(bump, stepped, p)
        uz_nonzero = live & unsafe & (p != 0.0)
        out = np.where(uz_nonzero, stepped, out)
        uz = live & unsafe & (p == 0.0) & ~((a == 0.0) | (b == 0.0))
        if uz.any():
            positive = (a > 0.0) == (b > 0.0)
            if up:
                uval = np.where(positive, ETA, -0.0)
            else:
                uval = np.where(positive, 0.0, -ETA)
            out = np.where(uz, uval, out)
        ovf = np.isinf(p) & ~(np.isinf(a) | np.isinf(b))
        if ovf.any():
            if up:
                fix = np.where(p > 0.0, _INF, -MAX_FLOAT)
            else:
                fix = np.where(p > 0.0, MAX_FLOAT, -_INF)
            out = np.where(ovf, fix, out)
    return out


def mul_ru_v(a, b):
    return _mul_dir_v(a, b, True)


def mul_rd_v(a, b):
    return _mul_dir_v(a, b, False)


def sum_bound_ru_rows(values, k: int):
    """Per-row ``aa.vectorized._sum_bound_ru`` over an ``(N, k)`` matrix.

    ``np.sum(values, axis=1)`` on a C-contiguous matrix uses the same
    pairwise summation order per row as ``np.sum`` over that row alone, so
    each lane matches the scalar helper bit for bit.
    """
    with np.errstate(all="ignore"):
        s = np.sum(values, axis=1)
        out = mul_ru_v(s, 1.0 + 4.0 * (k + 2) * EPS)
        out = np.where(np.isfinite(s), out, _INF)
        out = np.where(s == 0.0, 0.0, out)
    return out


def sum_err_v(a, b):
    """Elementwise ``aa.form._sum_err``."""
    with np.errstate(all="ignore"):
        s, e = two_sum_v(a, b)
        err = np.where(np.isinf(s), _INF, np.abs(e))
    return s, err


def prod_err_v(a, b):
    """Elementwise ``aa.form._prod_err``."""
    with np.errstate(all="ignore"):
        p = a * b
        absp = np.abs(p)
        window = (_PROD_LO_SAFE < absp) & (absp < _PROD_HI_SAFE)
        _, e = two_prod_v(a, b)
        cons = add_ru_v(mul_ru_v(EPS, absp), ETA)
        err = np.where(window, np.abs(e), cons)
        err = np.where(np.isinf(p), _INF, err)
    return p, err


def ulp_v(x):
    """Elementwise ``fp.rounding.ulp`` (NaN passes through as NaN)."""
    with np.errstate(all="ignore"):
        out = np.spacing(np.abs(x))
        # np.spacing(MAX_FLOAT) is inf (the gap to the *next* float);
        # math.ulp returns the last-bit value instead.
        out = np.where(np.abs(x) == MAX_FLOAT, _ULP_MAX, out)
        out = np.where(np.isinf(x), _INF, out)
    return out


def _expansion_lead3(q0, x, y):
    """Sign-carrying leading component of ``grow_expansion([x, y], q0)``.

    For a nonoverlapping increasing-magnitude input expansion ``[x, y]``
    (Shewchuk's precondition, satisfied by the TwoSum pairs the rounding
    residuals produce) the grown expansion is again nonoverlapping with
    increasing magnitude, so the exact sum's sign is the sign of the
    largest-magnitude nonzero component — no ``math.fsum`` needed.
    """
    q1, h1 = two_sum_v(q0, x)
    q2, h2 = two_sum_v(q1, y)
    return np.where(q2 != 0.0, q2, np.where(h2 != 0.0, h2, h1))


def _div_dir_v(a, b, up: bool):
    """Elementwise ``fp.rounding._div_dir``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(all="ignore"):
        q = a / b
        # The scalar special-case ladder (NaN operands, division by zero,
        # infinite operands) re-derives exactly what IEEE division already
        # returns, so numpy's quotient stands for all of those lanes.
        live = ~(np.isnan(q) | (b == 0.0) | np.isinf(b) | np.isinf(a))
        out = q
        ovf = live & np.isinf(q)
        if ovf.any():
            if up:
                fix = np.where(q > 0.0, _INF, -MAX_FLOAT)
            else:
                fix = np.where(q > 0.0, MAX_FLOAT, -_INF)
            out = np.where(ovf, fix, out)
        uz = live & (q == 0.0) & (a != 0.0)
        if uz.any():
            positive = (a > 0.0) == (b > 0.0)
            if up:
                uval = np.where(positive, ETA, -0.0)
            else:
                uval = np.where(positive, 0.0, -ETA)
            out = np.where(uz, uval, out)
        fin = live & ~ovf & (q != 0.0)
        absq = np.abs(q)
        absqb = np.abs(q * b)
        unsafe = ((absq > SPLIT_SAFE_BOUND)
                  | (np.abs(b) > SPLIT_SAFE_BOUND)
                  | ~((_PROD_LO_SAFE < absqb) & (absqb < _PROD_HI_SAFE)))
        stepped = np.nextafter(q, _INF if up else -_INF)
        out = np.where(fin & unsafe, stepped, out)
        exact = fin & ~unsafe
        if exact.any():
            p, pe = two_prod_v(q, b)
            s1, e1 = two_sum_v(a, -p)
            lead = _expansion_lead3(-pe, e1, s1)
            # sign(a/b - q) = sign(a - q*b) * sign(b)
            pos = (lead > 0.0) == (b > 0.0)
            bump = exact & (lead != 0.0) & (pos if up else ~pos)
            out = np.where(bump, stepped, out)
    return out


def div_ru_v(a, b):
    return _div_dir_v(a, b, True)


def div_rd_v(a, b):
    return _div_dir_v(a, b, False)


def _sqrt_dir_v(a, up: bool):
    """Elementwise ``fp.rounding._sqrt_dir``."""
    a = np.asarray(a, dtype=np.float64)
    with np.errstate(all="ignore"):
        s = np.sqrt(a)  # NaN for a < 0; ±0 and +inf pass through exactly
        live = ~np.isnan(s) & (a != 0.0) & ~np.isinf(a)
        unsafe = ((s > SPLIT_SAFE_BOUND)
                  | ~((_PROD_LO_SAFE < a) & (a < _PROD_HI_SAFE)))
        stepped = np.nextafter(s, _INF if up else -_INF)
        out = np.where(live & unsafe, stepped, s)
        exact = live & ~unsafe
        if exact.any():
            p, pe = two_prod_v(s, s)
            s1, e1 = two_sum_v(a, -p)
            ordered = np.abs(e1) <= np.abs(s1)
            x = np.where(ordered, e1, s1)
            y = np.where(ordered, s1, e1)
            lead = _expansion_lead3(-pe, x, y)
            bump = exact & ((lead > 0.0) if up else (lead < 0.0))
            out = np.where(bump, stepped, out)
    return out


def sqrt_ru_v(a):
    return _sqrt_dir_v(a, True)


def sqrt_rd_v(a):
    return _sqrt_dir_v(a, False)

"""Batched bounded affine forms: ``(N, k)`` matrices of coefficient slots.

:class:`BatchAffine` is :class:`repro.aa.vectorized.VecAffine` lifted one
axis: the central value becomes an ``(N,)`` vector, the direct-mapped
id/coefficient arrays ``(N, k)`` matrices, and every kernel a
row-broadcast numpy operation.  Each row evolves exactly as its scalar
``VecAffine`` counterpart would — same victim slots, same fusion
round-off, same a-priori lane bounds — because rows are elementwise
independent and the per-row symbol counters (:class:`BatchContext.
next_sid`) replicate :class:`~repro.aa.symbols.SymbolFactory` per row.
That independence is the whole soundness argument: a batched row's
enclosure is *bit-identical* to the scalar vectorized path's, so sound
because that path is.

Operations whose scalar code takes value-dependent paths (division
domain/point tests, sqrt/exp/log domains, comparisons) either blend
per-row when every path is expressible as a masked lane operation
(``abs_``, ``min_with``, ``max_with``, invalid results) or raise
:class:`~repro.batchrt.cohort.CohortDivergence` so the engine re-runs
uniform sub-cohorts.

The RANDOM fusion policy is excluded (the shared numpy RNG's consumption
order would couple rows); the engine's batchability gate routes such
configurations to the scalar path.
"""

from __future__ import annotations

import math
from typing import List, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - covered via engine availability gate
    np = None

from ..aa.context import AAStats
from ..aa.linearize import (
    linearize_exp,
    linearize_log,
    linearize_sqrt,
)
from ..aa.policies import FusionPolicy
from ..common import DecisionPolicy
from ..errors import SoundnessError
from ..fp import EPS, ETA, add_ru, sub_ru, ulp
from .cohort import CohortDivergence
from .linearize_v import linearize_inv_rows
from .npops import (
    add_ru_v,
    div_rd_v,
    div_ru_v,
    mul_ru_v,
    prod_err_v,
    sub_rd_v,
    sub_ru_v,
    sum_bound_ru_rows,
    sum_err_v,
    ulp_v,
)

__all__ = ["BatchAffine", "BatchContext", "BatchProtect"]

_INF = math.inf


def _no_rows():
    return np.zeros(0, dtype=np.int64)


class BatchContext:
    """Per-batch state: dimensions, policies, per-row symbol counters,
    aggregate statistics.

    ``next_sid`` replicates :class:`~repro.aa.symbols.SymbolFactory`
    independently per row (ids start at 1; direct-mapped placement keeps
    ``sid % k == slot``).  Rows advance at different rates — a zero
    round-off coefficient skips placement entirely, exactly as the scalar
    path does.
    """

    def __init__(self, n: int, k: int,
                 fusion: FusionPolicy = FusionPolicy.SMALLEST,
                 decision_policy: DecisionPolicy = DecisionPolicy.CENTRAL,
                 track_provenance: bool = False
                 ) -> None:
        if n < 1:
            raise ValueError("batch size must be >= 1")
        if k < 1:
            raise ValueError("k must be >= 1")
        if fusion is FusionPolicy.RANDOM:
            raise SoundnessError(
                "batched execution does not support the RANDOM fusion "
                "policy (the shared RNG would couple rows)")
        self.n = n
        self.k = k
        self.fusion = fusion
        self.decision_policy = decision_policy
        self.stats = AAStats()
        self.next_sid = np.ones(n, dtype=np.int64)
        # Width provenance (off the hot path unless enabled): per-row
        # sid -> origin maps (sids diverge across rows because zero
        # round-offs skip placement per row), plus batch-wide condensation
        # books mirroring SymbolFactory's.
        self.track_provenance = track_provenance
        self.provenance: Optional[List[dict]] = (
            [dict() for _ in range(n)] if track_provenance else None)
        self.absorbed: dict = {}
        self.absorbed_at: dict = {}
        self.n_absorptions = 0

    # -- per-row symbol factory -------------------------------------------------

    def fresh_at_rows(self, slots, mask):
        """Per-row ``SymbolFactory.fresh_at``: the next id congruent to
        ``slot`` mod k; only rows in ``mask`` consume it."""
        sid = self.next_sid + ((slots - self.next_sid) % self.k)
        self.next_sid = np.where(mask, sid + 1, self.next_sid)
        return sid

    def provenance_of_row(self, row: int, sid: int) -> Optional[str]:
        if self.provenance is None:
            return None
        return self.provenance[row].get(int(sid))

    def record_absorption(self, row: int, victim_sid: int, amount: float,
                          site: Optional[str] = None) -> None:
        """Per-row analogue of ``SymbolFactory.record_absorption`` — keys
        by the victim's origin in that row's provenance map."""
        if not self.track_provenance or amount == 0.0:
            return
        self.n_absorptions += 1
        origin = self.provenance[row].get(int(victim_sid), "<unknown>")
        self.absorbed[origin] = add_ru(self.absorbed.get(origin, 0.0),
                                       abs(amount))
        if site is not None:
            self.absorbed_at[site] = add_ru(self.absorbed_at.get(site, 0.0),
                                            abs(amount))

    # -- value constructors -----------------------------------------------------

    def exact(self, value: float) -> "BatchAffine":
        return BatchAffine.from_exact(self, float(value))

    def constant(self, value: float, exact: Optional[bool] = None,
                 provenance: Optional[str] = None) -> "BatchAffine":
        if exact is None:
            exact = bool(math.isfinite(value) and value == int(value))
        if exact:
            return self.exact(value)
        return BatchAffine.from_center_and_symbol(
            self, float(value), ulp(value),
            "constant" if provenance is None else provenance)

    def from_interval(self, lo: float, hi: float,
                      provenance: Optional[str] = None) -> "BatchAffine":
        if hi < lo:
            raise ValueError("interval endpoints out of order")
        mid = lo + (hi - lo) / 2.0
        if not math.isfinite(mid):
            mid = lo / 2.0 + hi / 2.0
        rad = max(sub_ru(mid, lo), sub_ru(hi, mid))
        return BatchAffine.from_center_and_symbol(self, mid, rad, provenance)

    def input_rows(self, values, uncertainty_ulps: float = 1.0,
                   provenance: Optional[str] = None) -> "BatchAffine":
        """One input variable over the whole batch: row i gets central
        ``values[i]`` and one fresh symbol of ``uncertainty_ulps`` ulps."""
        values = np.asarray(values, dtype=np.float64)
        mag = uncertainty_ulps * ulp_v(values)
        return BatchAffine.from_center_and_symbol(self, values, mag,
                                                  provenance)

    def input_box_rows(self, los, his,
                       provenance: Optional[str] = None) -> "BatchAffine":
        """One range-valued input over the whole batch: row i covers the
        interval ``[los[i], his[i]]`` with one fresh symbol spanning the
        half-width — the per-row analogue of :meth:`from_interval`, used by
        the domain analysis engine to evaluate N subboxes per batch."""
        los = np.asarray(los, dtype=np.float64)
        his = np.asarray(his, dtype=np.float64)
        if np.any(his < los):
            raise ValueError("interval endpoints out of order")
        mid = _midpoint_rows(los, his)
        rad = _radius_ru_rows(mid, los, his)
        return BatchAffine.from_center_and_symbol(self, mid, rad, provenance)


class BatchProtect:
    """Per-row protected-symbol sets (the prioritization pragma support).

    Falsy when every row's set is empty, mirroring how the scalar kernels
    gate their protect handling on truthiness.
    """

    __slots__ = ("sets", "_arr")

    def __init__(self, sets: List[frozenset]) -> None:
        self.sets = sets
        self._arr = None

    def __bool__(self) -> bool:
        return any(self.sets)

    def _array(self):
        if self._arr is None:
            width = max((len(s) for s in self.sets), default=0)
            arr = np.zeros((len(self.sets), width), dtype=np.int64)
            for i, s in enumerate(self.sets):
                if s:
                    arr[i, : len(s)] = sorted(s)
            self._arr = arr
        return self._arr

    def member_rows(self, ids):
        """(N, k) bool: is ``ids[i, j]`` in row i's protected set?"""
        arr = self._array()
        if arr.shape[1] == 0:
            return np.zeros(ids.shape, dtype=bool)
        hit = (ids[:, :, None] == arr[:, None, :]).any(axis=2)
        # The padding sentinel is 0; empty slots (id 0) are never members.
        return hit & (ids != 0)


def _midpoint_rows(lo, hi):
    """Per-row ``Interval.midpoint`` (NaN endpoints yield NaN)."""
    with np.errstate(all="ignore"):
        m = lo + (hi - lo) / 2.0
        m = np.where(np.isfinite(m), m, lo / 2.0 + hi / 2.0)
        m = np.where((lo == -_INF) & (hi == _INF), 0.0, m)
    return m


def _radius_ru_rows(m, lo, hi):
    """Per-row ``Interval.radius_ru`` given the midpoint."""
    r1 = sub_ru_v(m, lo)
    r2 = sub_ru_v(hi, m)
    return np.where(r2 > r1, r2, r1)  # Python max(r1, r2)


def _linearize_rows(fn, lo, hi, clamp_lo_nonneg: bool = False):
    """Row-wise min-range linearization with a dedup memo: batches where
    many rows share the same operand range (common for constants and
    converged iterations) pay for one scalar linearization."""
    n = lo.size
    alpha = np.empty(n, dtype=np.float64)
    zeta = np.empty(n, dtype=np.float64)
    delta = np.empty(n, dtype=np.float64)
    memo = {}
    for i in range(n):
        a, b = float(lo[i]), float(hi[i])
        got = memo.get((a, b))
        if got is None:
            got = memo[(a, b)] = fn(max(a, 0.0) if clamp_lo_nonneg else a, b)
        alpha[i], zeta[i], delta[i] = got
    return alpha, zeta, delta


class BatchAffine:
    """Bounded affine forms over a batch: ``central (N,)``, ``ids (N, k)``
    int64, ``coeffs (N, k)`` float64.

    Mirrors the :class:`~repro.aa.vectorized.VecAffine` interface; row i
    is the affine form of input box i.
    """

    __slots__ = ("ctx", "central", "ids", "coeffs", "_icache",
                 "_pcache", "_gcache")

    def __init__(self, ctx: BatchContext, central, ids, coeffs) -> None:
        self.ctx = ctx
        self.central = central
        self.ids = ids
        self.coeffs = coeffs
        self._icache = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_exact(cls, ctx: BatchContext, value) -> "BatchAffine":
        if np.ndim(value) == 0:
            central = np.full(ctx.n, float(value), dtype=np.float64)
        else:
            central = np.asarray(value, dtype=np.float64).copy()
        return cls(ctx, central,
                   np.zeros((ctx.n, ctx.k), dtype=np.int64),
                   np.zeros((ctx.n, ctx.k), dtype=np.float64))

    @classmethod
    def from_center_and_symbol(cls, ctx: BatchContext, value, magnitude,
                               provenance: Optional[str] = None
                               ) -> "BatchAffine":
        out = cls.from_exact(ctx, value)
        mag = np.asarray(magnitude, dtype=np.float64)
        if mag.ndim == 0:
            mag = np.full(ctx.n, float(mag), dtype=np.float64)
        out._place_fresh_symbol(np.abs(mag), provenance, None)
        return out

    # -- views ------------------------------------------------------------------

    def n_symbols_rows(self):
        return np.count_nonzero(self.ids, axis=1)

    def valid_rows(self):
        return ~(np.isnan(self.central) | np.isnan(self.coeffs).any(axis=1))

    def interval_rows(self):
        """Per-row ``VecAffine.interval()`` as ``(lo, hi, valid)`` arrays;
        invalid rows carry NaN endpoints."""
        if self._icache is not None:
            return self._icache
        with np.errstate(all="ignore"):
            r = sum_bound_ru_rows(np.abs(self.coeffs), self.ctx.k)
            lo = sub_rd_v(self.central, r)
            hi = add_ru_v(self.central, r)
            valid = self.valid_rows() & ~np.isnan(lo) & ~np.isnan(hi)
            lo = np.where(valid, lo, np.nan)
            hi = np.where(valid, hi, np.nan)
        self._icache = (lo, hi, valid)
        return self._icache

    def __repr__(self) -> str:
        return (f"BatchAffine(n={self.ctx.n}, k={self.ctx.k}, "
                f"symbols per row <= {int(self.n_symbols_rows().max())})")

    # -- fresh symbol placement -------------------------------------------------

    def _place_fresh_symbol(self, coeff, provenance: Optional[str],
                            protect, where=None) -> None:
        m = coeff != 0.0
        if where is not None:
            m = m & where
        if not m.any():
            return
        ctx = self.ctx
        slots = self._pick_victim_slots(protect)
        sid = ctx.fresh_at_rows(slots, m)
        rows = np.flatnonzero(m)
        sl = slots[rows]
        occupied = self.ids[rows, sl] != 0
        new_coeff = np.where(
            occupied,
            add_ru_v(coeff[rows], np.abs(self.coeffs[rows, sl])),
            coeff[rows])
        ctx.stats.n_fused_symbols += int(np.count_nonzero(occupied))
        if ctx.track_provenance:
            victims = self.ids[rows, sl]
            amounts = self.coeffs[rows, sl]
            for j, row in enumerate(rows):
                if occupied[j]:
                    ctx.record_absorption(int(row), int(victims[j]),
                                          float(amounts[j]), provenance)
                if provenance is not None:
                    ctx.provenance[int(row)][int(sid[row])] = provenance
        self.ids[rows, sl] = sid[rows]
        self.coeffs[rows, sl] = new_coeff
        self._icache = None

    def _pick_victim_slots(self, protect):
        """Per-row ``VecAffine._pick_victim_slot``; returns an ``(N,)``
        slot index array (rows that end up masked out are harmless)."""
        ctx = self.ctx
        ids, coeffs = self.ids, self.coeffs
        k = ctx.k
        empty = ids == 0
        has_empty = empty.any(axis=1)
        lanes = np.arange(k, dtype=np.int64)
        # Cyclic preference: first empty slot at or after peek_next % k,
        # else the first empty slot.  Encoded as an argmin over the cyclic
        # distance from the start slot (k for occupied slots).
        start = ctx.next_sid % k
        rank = (lanes[None, :] - start[:, None]) % k
        empty_slot = np.argmin(np.where(empty, rank, k), axis=1)
        if has_empty.all():
            return empty_slot
        if protect:
            allowed = ~protect.member_rows(ids)
            none_allowed = ~allowed.any(axis=1)
            if none_allowed.any():
                allowed = allowed | none_allowed[:, None]
        else:
            allowed = np.ones_like(empty)
        if ctx.fusion is FusionPolicy.OLDEST:
            key = np.where(allowed, ids, np.iinfo(np.int64).max)
            full_slot = np.argmin(key, axis=1)
        else:  # SMALLEST / MEAN: evict the smallest-magnitude coefficient
            key = np.where(allowed, np.abs(coeffs), _INF)
            full_slot = np.argmin(key, axis=1)
            # argmin over an all-inf allowed row can land on a disallowed
            # (also inf) slot; the scalar path returns the first allowed.
            picked_allowed = np.take_along_axis(
                allowed, full_slot[:, None], axis=1)[:, 0]
            if not picked_allowed.all():
                first_allowed = np.argmax(allowed, axis=1)
                full_slot = np.where(picked_allowed, full_slot, first_allowed)
        return np.where(has_empty, empty_slot, full_slot)

    # -- conflict resolution ----------------------------------------------------

    def _conflict_winner_mask(self, ids_a, va, ids_b, vb, conflict, protect):
        fusion = self.ctx.fusion
        if fusion is FusionPolicy.OLDEST:
            a_wins = ids_a > ids_b
        else:  # SMALLEST / MEAN: larger magnitude survives
            a_wins = np.abs(va) > np.abs(vb)
            ties = np.abs(va) == np.abs(vb)
            a_wins = np.where(ties, ids_a > ids_b, a_wins)
        if protect:
            pa = protect.member_rows(ids_a)
            pb = protect.member_rows(ids_b)
            a_wins = np.where(pa & ~pb, True, a_wins)
            a_wins = np.where(pb & ~pa, False, a_wins)
        return a_wins & conflict

    # -- arithmetic -------------------------------------------------------------

    def _linear_combine(self, other: "BatchAffine", negate_other: bool,
                        protect, provenance: Optional[str]) -> "BatchAffine":
        ctx = self.ctx
        central, cerr = sum_err_v(
            self.central, -other.central if negate_other else other.central)
        x = cerr

        ca = self.coeffs
        cb = -other.coeffs if negate_other else other.coeffs
        ids_a, ids_b = self.ids, other.ids

        with np.errstate(all="ignore"):
            eq = ids_a == ids_b
            both = eq & (ids_a != 0)
            conflict = ~eq & (ids_a != 0) & (ids_b != 0)

            summed = ca + cb
            out_ids = np.maximum(ids_a, ids_b)
            out_coeffs = summed
            x = add_ru_v(x, mul_ru_v(
                EPS, sum_bound_ru_rows(np.abs(summed * both), ctx.k)))

            n_conf = int(np.count_nonzero(conflict))
            if n_conf:
                ctx.stats.n_conflicts += n_conf
                ctx.stats.n_fused_symbols += n_conf
                a_wins = self._conflict_winner_mask(ids_a, ca, ids_b, cb,
                                                    conflict, protect)
                b_wins = conflict & ~a_wins
                out_ids = np.where(a_wins, ids_a,
                                   np.where(b_wins, ids_b, out_ids))
                out_coeffs = np.where(a_wins, ca,
                                      np.where(b_wins, cb, out_coeffs))
                # Conflict-free rows lose nothing: their lost-sum is an
                # exact 0.0 and add_ru(x, 0.0) == x for the nonnegative
                # accumulator, so applying the blend batch-wide is still
                # bit-identical per row.
                lost = np.where(a_wins, np.abs(cb),
                                np.where(b_wins, np.abs(ca), 0.0))
                if ctx.track_provenance:
                    for r, c in np.argwhere(conflict):
                        loser = ids_b[r, c] if a_wins[r, c] else ids_a[r, c]
                        ctx.record_absorption(int(r), int(loser),
                                              float(lost[r, c]), provenance)
                x = add_ru_v(x, sum_bound_ru_rows(lost, ctx.k))

        out = BatchAffine(ctx, central, out_ids, out_coeffs)
        out._place_fresh_symbol(x, provenance, protect)
        ctx.stats.n_add += ctx.n
        m_shared = int(np.count_nonzero(both))
        ctx.stats.flops += (3 * ctx.k + 3) * ctx.n + 2 * m_shared
        return out

    def add(self, other, protect=None,
            provenance: Optional[str] = None) -> "BatchAffine":
        return self._linear_combine(self._coerce(other), False, protect,
                                    provenance)

    def sub(self, other, protect=None,
            provenance: Optional[str] = None) -> "BatchAffine":
        return self._linear_combine(self._coerce(other), True, protect,
                                    provenance)

    def mul(self, other, protect=None,
            provenance: Optional[str] = None) -> "BatchAffine":
        other = self._coerce(other)
        ctx = self.ctx
        a0, b0 = self.central, other.central
        central, cerr = prod_err_v(a0, b0)
        x = cerr

        ca, cb = self.coeffs, other.coeffs
        ids_a, ids_b = self.ids, other.ids

        with np.errstate(all="ignore"):
            ra = sum_bound_ru_rows(np.abs(ca), ctx.k)
            rb = sum_bound_ru_rows(np.abs(cb), ctx.k)
            # The scalar kernel skips the ra*rb term when either radius is
            # exactly zero; mask per row (mul_ru(0, inf) would be NaN).
            nz = (ra != 0.0) & (rb != 0.0)
            x = np.where(nz, add_ru_v(x, mul_ru_v(ra, rb)), x)

            conflict = (ids_a != ids_b) & (ids_a != 0) & (ids_b != 0)

            pa = b0[:, None] * ca
            pb = a0[:, None] * cb
            combined = pa + pb
            out_ids = np.maximum(ids_a, ids_b)
            out_coeffs = combined
            mag = sum_bound_ru_rows(
                np.abs(pa) + np.abs(pb) + np.abs(combined), ctx.k)
            x = add_ru_v(x, add_ru_v(mul_ru_v(EPS, mag), 2.0 * ETA * ctx.k))

            n_conf = int(np.count_nonzero(conflict))
            if n_conf:
                ctx.stats.n_conflicts += n_conf
                ctx.stats.n_fused_symbols += n_conf
                a_wins = self._conflict_winner_mask(ids_a, pa, ids_b, pb,
                                                    conflict, protect)
                b_wins = conflict & ~a_wins
                out_ids = np.where(a_wins, ids_a,
                                   np.where(b_wins, ids_b, out_ids))
                out_coeffs = np.where(a_wins, pa,
                                      np.where(b_wins, pb, out_coeffs))
                lost = np.where(a_wins, np.abs(pb),
                                np.where(b_wins, np.abs(pa), 0.0))
                if ctx.track_provenance:
                    for r, c in np.argwhere(conflict):
                        loser = ids_b[r, c] if a_wins[r, c] else ids_a[r, c]
                        ctx.record_absorption(int(r), int(loser),
                                              float(lost[r, c]), provenance)
                x = add_ru_v(x, sum_bound_ru_rows(lost, ctx.k))

        out = BatchAffine(ctx, central, out_ids, out_coeffs)
        out._place_fresh_symbol(x, provenance, protect)
        ctx.stats.n_mul += ctx.n
        m_shared = int(np.count_nonzero((ids_a == ids_b) & (ids_a != 0)))
        ctx.stats.flops += (13 * ctx.k + 3) * ctx.n + 2 * m_shared
        return out

    def _unary_linear(self, alpha, zeta, delta, protect,
                      provenance: Optional[str]) -> "BatchAffine":
        ctx = self.ctx
        x = np.abs(delta)
        scaled, e = prod_err_v(alpha, self.central)
        x = add_ru_v(x, e)
        central, e2 = sum_err_v(scaled, zeta)
        x = add_ru_v(x, e2)
        with np.errstate(all="ignore"):
            coeffs = alpha[:, None] * self.coeffs
            active = self.ids != 0
            lane_err = np.where(active, EPS * np.abs(coeffs) + ETA, 0.0)
            x = add_ru_v(x, sum_bound_ru_rows(lane_err, ctx.k))
        out = BatchAffine(ctx, central, self.ids.copy(), coeffs)
        out._place_fresh_symbol(x, provenance, protect)
        return out

    def _domain_gate(self, bad, what: str):
        """All rows bad: whole result invalid.  Mixed: split the cohort so
        each side takes its single scalar-equivalent path.  Returns True
        when the caller should produce the invalid result."""
        if not bad.any():
            return False
        if bad.all():
            return True
        raise CohortDivergence(
            [np.flatnonzero(~bad), np.flatnonzero(bad)], _no_rows(), what)

    def div(self, other, protect=None,
            provenance: Optional[str] = None) -> "BatchAffine":
        other = self._coerce(other)
        ctx = self.ctx
        ctx.stats.n_div += ctx.n
        lo, hi, valid = other.interval_rows()
        bad = ~valid | ((lo <= 0.0) & (0.0 <= hi))
        if self._domain_gate(bad, "div-domain"):
            return self._invalid_result()
        point = (lo == hi) & (other.n_symbols_rows() == 0)
        if point.all():
            b = lo
            x = sub_ru_v(div_ru_v(self.central, b),
                         div_rd_v(self.central, b))
            with np.errstate(all="ignore"):
                central = self.central / b
                coeffs = self.coeffs / b[:, None]
                active = self.ids != 0
                lane_err = np.where(active, EPS * np.abs(coeffs) + ETA, 0.0)
                x = add_ru_v(x, sum_bound_ru_rows(lane_err, ctx.k))
            out = BatchAffine(ctx, central, self.ids.copy(), coeffs)
            out._place_fresh_symbol(x, provenance, protect)
            return out
        if point.any():
            raise CohortDivergence(
                [np.flatnonzero(point), np.flatnonzero(~point)], _no_rows(),
                "div-point")
        alpha, zeta, delta = linearize_inv_rows(lo, hi)
        inv = other._unary_linear(alpha, zeta, delta, protect,
                                  provenance and provenance + ":inv")
        return self.mul(inv, protect, provenance)

    def sqrt(self, protect=None,
             provenance: Optional[str] = None) -> "BatchAffine":
        ctx = self.ctx
        ctx.stats.n_sqrt += ctx.n
        lo, hi, valid = self.interval_rows()
        bad = ~valid | (hi < 0.0)
        if self._domain_gate(bad, "sqrt-domain"):
            return self._invalid_result()
        alpha, zeta, delta = _linearize_rows(linearize_sqrt, lo, hi,
                                             clamp_lo_nonneg=True)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def exp(self, protect=None,
            provenance: Optional[str] = None) -> "BatchAffine":
        lo, hi, valid = self.interval_rows()
        bad = ~valid | (hi > 709.0)
        if self._domain_gate(bad, "exp-domain"):
            return self._invalid_result()
        alpha, zeta, delta = _linearize_rows(linearize_exp, lo, hi)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def log(self, protect=None,
            provenance: Optional[str] = None) -> "BatchAffine":
        lo, hi, valid = self.interval_rows()
        bad = ~valid | (lo <= 0.0)
        if self._domain_gate(bad, "log-domain"):
            return self._invalid_result()
        alpha, zeta, delta = _linearize_rows(linearize_log, lo, hi)
        return self._unary_linear(alpha, zeta, delta, protect, provenance)

    def neg(self) -> "BatchAffine":
        return BatchAffine(self.ctx, -self.central, self.ids.copy(),
                           -self.coeffs)

    def abs_(self, protect=None) -> "BatchAffine":
        ctx = self.ctx
        lo, hi, valid = self.interval_rows()
        with np.errstate(all="ignore"):
            take_self = valid & (lo >= 0.0)
            take_neg = valid & ~take_self & (hi <= 0.0)
            mix = valid & ~take_self & ~take_neg
            h = np.where(hi > -lo, hi, -lo)  # Python max(-lo, hi)
            central = np.where(take_self, self.central,
                               np.where(take_neg, -self.central,
                                        np.where(mix, h / 2.0, np.nan)))
            ids = np.where((take_self | take_neg)[:, None], self.ids, 0)
            coeffs = np.where(take_self[:, None], self.coeffs,
                              np.where(take_neg[:, None], -self.coeffs, 0.0))
            mag = np.abs(add_ru_v(h / 2.0, ulp_v(h)))
        out = BatchAffine(ctx, central, ids, coeffs)
        out._place_fresh_symbol(np.where(mix, mag, 0.0), "abs", None)
        return out

    def _min_max_with(self, other, is_min: bool) -> "BatchAffine":
        other = self._coerce(other)
        ctx = self.ctx
        alo, ahi, avalid = self.interval_rows()
        blo, bhi, bvalid = other.interval_rows()
        with np.errstate(all="ignore"):
            valid = avalid & bvalid
            if is_min:
                take_a = valid & (ahi <= blo)
                take_b = valid & ~take_a & (bhi <= alo)
                mlo = np.where(blo < alo, blo, alo)  # Python min(alo, blo)
                mhi = np.where(bhi < ahi, bhi, ahi)
            else:
                take_a = valid & (alo >= bhi)
                take_b = valid & ~take_a & (blo >= ahi)
                mlo = np.where(blo > alo, blo, alo)  # Python max(alo, blo)
                mhi = np.where(bhi > ahi, bhi, ahi)
            mix = valid & ~take_a & ~take_b
            mid = _midpoint_rows(mlo, mhi)
            rad = _radius_ru_rows(mid, mlo, mhi)
            mag = np.abs(add_ru_v(rad, ulp_v(mid)))
            central = np.where(take_a, self.central,
                               np.where(take_b, other.central,
                                        np.where(mix, mid, np.nan)))
            ids = np.where(take_a[:, None], self.ids,
                           np.where(take_b[:, None], other.ids, 0))
            coeffs = np.where(take_a[:, None], self.coeffs,
                              np.where(take_b[:, None], other.coeffs, 0.0))
        out = BatchAffine(ctx, central, ids, coeffs)
        out._place_fresh_symbol(np.where(mix, mag, 0.0),
                                "min" if is_min else "max", None)
        return out

    def min_with(self, other) -> "BatchAffine":
        return self._min_max_with(other, True)

    def max_with(self, other) -> "BatchAffine":
        return self._min_max_with(other, False)

    def _invalid_result(self) -> "BatchAffine":
        ctx = self.ctx
        return BatchAffine(ctx, np.full(ctx.n, np.nan),
                           np.zeros((ctx.n, ctx.k), dtype=np.int64),
                           np.zeros((ctx.n, ctx.k), dtype=np.float64))

    # -- comparisons ------------------------------------------------------------

    def _decide_rows(self, dt, df, central_answer, what: str) -> bool:
        """Per-row ``decide_comparison``: uniform decisions return a bool,
        mixed ones raise :class:`CohortDivergence`.  Under STRICT,
        ambiguous rows go to scalar fallback (where the proper
        :class:`AmbiguousComparisonError` is raised per row)."""
        ctx = self.ctx
        amb = ~(dt | df)
        if ctx.decision_policy is DecisionPolicy.STRICT:
            if amb.any():
                raise CohortDivergence(
                    [np.flatnonzero(dt), np.flatnonzero(df)],
                    np.flatnonzero(amb), what)
            decision = dt
        else:
            n_amb = int(np.count_nonzero(amb))
            if n_amb:
                ctx.stats.ambiguous_branches += n_amb
            decision = np.where(amb, central_answer, dt)
        if decision.all():
            return True
        if not decision.any():
            return False
        raise CohortDivergence(
            [np.flatnonzero(decision), np.flatnonzero(~decision)],
            _no_rows(), what)

    def compare_lt(self, other) -> bool:
        other = self._coerce(other)
        alo, ahi, avalid = self.interval_rows()
        blo, bhi, bvalid = other.interval_rows()
        valid = avalid & bvalid
        dt = valid & (ahi < blo)
        df = valid & (alo >= bhi)
        return self._decide_rows(dt, df, self.central < other.central, "<")

    def compare_le(self, other) -> bool:
        other = self._coerce(other)
        alo, ahi, avalid = self.interval_rows()
        blo, bhi, bvalid = other.interval_rows()
        valid = avalid & bvalid
        dt = valid & (ahi <= blo)
        df = valid & (alo > bhi)
        return self._decide_rows(dt, df, self.central <= other.central, "<=")

    # -- sugar ------------------------------------------------------------------

    def _coerce(self, x) -> "BatchAffine":
        if isinstance(x, BatchAffine):
            if x.ctx is not self.ctx:
                raise SoundnessError(
                    "mixing BatchAffine from different contexts")
            return x
        if isinstance(x, (int, float)):
            return BatchAffine.from_exact(self.ctx, float(x))
        raise TypeError(f"cannot coerce {type(x).__name__} to BatchAffine")

    def __add__(self, other):
        return self.add(other)

    def __radd__(self, other):
        return self._coerce(other).add(self)

    def __sub__(self, other):
        return self.sub(other)

    def __rsub__(self, other):
        return self._coerce(other).sub(self)

    def __mul__(self, other):
        return self.mul(other)

    def __rmul__(self, other):
        return self._coerce(other).mul(self)

    def __truediv__(self, other):
        return self.div(other)

    def __rtruediv__(self, other):
        return self._coerce(other).div(self)

    def __neg__(self):
        return self.neg()

    def __lt__(self, other):
        return self.compare_lt(other)

    def __le__(self, other):
        return self.compare_le(other)

    def __gt__(self, other):
        return self._coerce(other).compare_lt(self)

    def __ge__(self, other):
        return self._coerce(other).compare_le(self)

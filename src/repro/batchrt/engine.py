"""The batched execution engine: cohort scheduling over one program.

``run_batch(program, rows)`` evaluates a :class:`~repro.compiler.driver.
CompiledProgram` over N input boxes.  Rows that share integer parameters
start as one cohort and run through :class:`~repro.batchrt.runtime.
BatchRuntime`; a :class:`~repro.batchrt.cohort.CohortDivergence` splits
the cohort into same-decision sub-cohorts (re-run vectorized from the
start — pre-divergence decisions were uniform, so they replay
identically) and routes genuinely ambiguous rows to the scalar runtime.
A worklist drains until every row has a result; each divergence strictly
partitions its cohort or moves rows to fallback, so the loop terminates.

This module imports neither numpy nor the batched kernels at module
scope: scalar-substrate installs can import it freely, and the
batchability gate falls back to a per-row scalar loop when numpy (the
``repro[vector]`` extra) is unavailable.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..common import ValueRange
from ..errors import ReproError
from ..obs.trace import current_tracer
from .cohort import CohortDivergence

__all__ = [
    "BatchRowResult",
    "BatchRunResult",
    "BatchRunStats",
    "batchable_config",
    "numpy_available",
    "run_batch",
]


def numpy_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def batchable_config(config) -> bool:
    """Can programs built with this configuration run on the batched
    vectorized path?  Everything else loops over the scalar runtime.

    RANDOM fusion is excluded because the context's single RNG stream
    would couple rows (row i's victim choice would depend on how many
    draws rows 0..i-1 consumed).
    """
    from ..aa.context import Precision
    from ..aa.policies import FusionPolicy

    return (config.mode == "aa"
            and config.vectorize
            and config.impl == "auto"
            and config.precision is Precision.F64
            and config.fusion is not FusionPolicy.RANDOM
            and numpy_available())


@dataclass
class BatchRowResult:
    """One input box's outcome.

    ``interval`` is the returned enclosure as ``[lo, hi]`` (NaN endpoints
    for an invalid result), ``value`` a plain int/float return, and
    ``outputs`` maps array parameter names to nested per-row ``[lo, hi]``
    enclosures.  ``fallback`` marks rows evaluated on the scalar runtime.
    """

    index: int
    ok: bool
    interval: Optional[List[float]] = None
    value: Any = None
    outputs: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    fallback: bool = False
    # Origin -> share-of-radius attribution of the returned enclosure,
    # present only when the run tracked provenance.
    width_shares: Optional[Dict[str, float]] = None
    width_radius: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"index": self.index, "ok": self.ok}
        if self.interval is not None:
            out["interval"] = self.interval
        if self.value is not None:
            out["value"] = self.value
        if self.outputs:
            out["outputs"] = self.outputs
        if self.error is not None:
            out["error"] = self.error
        if self.fallback:
            out["fallback"] = True
        if self.width_shares is not None:
            out["width_shares"] = self.width_shares
            out["width_radius"] = self.width_radius
        return out


@dataclass
class BatchRunStats:
    rows: int = 0
    cohorts: int = 0
    cohort_splits: int = 0
    scalar_fallbacks: int = 0
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"rows": self.rows, "cohorts": self.cohorts,
                "cohort_splits": self.cohort_splits,
                "scalar_fallbacks": self.scalar_fallbacks,
                "elapsed_s": self.elapsed_s}


@dataclass
class BatchRunResult:
    rows: List[BatchRowResult]
    stats: BatchRunStats

    def to_dict(self) -> Dict[str, Any]:
        return {"rows": [r.to_dict() for r in self.rows],
                "stats": self.stats.to_dict()}


class _Unbatchable(Exception):
    """An argument shape the vectorized path cannot stack (ragged arrays,
    pre-built affine forms, …) — the affected rows run scalar."""


def run_batch(program, rows: Sequence[Sequence[Any]],
              uncertainty_ulps: float = 1.0,
              track_provenance: bool = False) -> BatchRunResult:
    """Evaluate ``program`` over ``rows`` (one positional argument list
    per input box) and return per-row enclosures.

    ``track_provenance=True`` runs every cohort (and scalar fallback) with
    width attribution on: each successful row carries ``width_shares``, an
    origin -> share-of-radius dict for its returned enclosure.  The
    arithmetic is bit-identical either way; tracking only records origins
    on the side.
    """
    t0 = time.perf_counter()
    rows = [list(r) for r in rows]
    stats = BatchRunStats(rows=len(rows))
    results: List[Optional[BatchRowResult]] = [None] * len(rows)
    if not rows:
        return BatchRunResult(rows=[], stats=stats)

    fallback: List[int] = []
    if batchable_config(program.config):
        int_positions = _int_param_positions(program)
        groups: Dict[tuple, List[int]] = {}
        bad_key: List[int] = []
        for i, row in enumerate(rows):
            try:
                key = tuple(int(row[p]) for p in int_positions)
            except (IndexError, TypeError, ValueError):
                bad_key.append(i)
                continue
            groups.setdefault(key, []).append(i)
        fallback.extend(bad_key)

        worklist = deque(groups.values())
        while worklist:
            idx = worklist.popleft()
            try:
                _eval_cohort(program, idx, rows, uncertainty_ulps, results,
                             track_provenance=track_provenance)
                stats.cohorts += 1
            except CohortDivergence as d:
                stats.cohort_splits += 1
                for part in d.partitions:
                    worklist.append([idx[j] for j in part.tolist()])
                fallback.extend(idx[j] for j in d.fallback.tolist())
            except _Unbatchable:
                fallback.extend(idx)
            except ReproError:
                # A row-dependent error (domain linearization, symbol
                # budget, …): each row reproduces its own outcome on the
                # scalar runtime, where errors attach to single rows.
                fallback.extend(idx)
    else:
        fallback.extend(range(len(rows)))

    for gi in sorted(fallback):
        stats.scalar_fallbacks += 1
        results[gi] = _run_scalar_row(program, gi, rows[gi], uncertainty_ulps,
                                      track_provenance=track_provenance)

    stats.elapsed_s = time.perf_counter() - t0
    return BatchRunResult(rows=[r for r in results if r is not None],
                          stats=stats)


def _int_param_positions(program) -> List[int]:
    from ..compiler import cast as A

    func = program.unit.func(program.entry)
    return [i for i, p in enumerate(func.params)
            if isinstance(p.type, A.CType) and p.type.is_integer()]


def _eval_cohort(program, idx: List[int], rows, uncertainty_ulps: float,
                 results, track_provenance: bool = False) -> None:
    """Run one same-path cohort vectorized and fill its rows' results.

    Raises :class:`CohortDivergence` (partition and retry), ``_Unbatchable``
    (shape prevents stacking) or a ``ReproError`` (whole cohort to scalar);
    in every raising case ``results`` is left untouched for these rows and
    the fresh context (including its statistics) is discarded.
    """
    from .form import BatchAffine, BatchContext
    from .runtime import BatchRuntime

    cfg = program.config
    n = len(idx)
    ctx = BatchContext(n, cfg.k, fusion=cfg.fusion,
                       decision_policy=cfg.decision_policy,
                       track_provenance=track_provenance)
    rt = BatchRuntime(ctx)

    from ..compiler import cast as A

    func = program.unit.func(program.entry)
    if any(len(rows[gi]) != len(func.params) for gi in idx):
        raise _Unbatchable("row arity mismatch")
    coerced: List[Any] = []
    array_params: List[str] = []
    for pos, p in enumerate(func.params):
        col = [rows[gi][pos] for gi in idx]
        if isinstance(p.type, A.CType) and p.type.is_integer():
            coerced.append(int(col[0]))  # uniform within the cohort
        else:
            origin = program.input_origin(p.name) if track_provenance \
                else None
            v = _stack_inputs(rt, col, uncertainty_ulps, origin)
            if isinstance(v, list):
                array_params.append(p.name)
            coerced.append(v)

    with current_tracer().span("batch:cohort") as sp:
        value = program._fn(rt, *coerced)
    if sp.recording:
        sp.set(rows=n, entry=program.entry,
               aa_ops=ctx.stats.total_ops(),
               ambiguous_branches=ctx.stats.ambiguous_branches)

    by_name = dict(zip((p.name for p in func.params), coerced))
    for j, gi in enumerate(idx):
        outputs = {name: _row_value(by_name[name], j)
                   for name in array_params}
        rv = _row_value(value, j)
        result = BatchRowResult(
            index=gi, ok=True,
            interval=rv if isinstance(rv, list) and len(rv) == 2
            and not isinstance(rv[0], list) else None,
            value=rv if isinstance(rv, (int, float, bool)) else None,
            outputs=outputs)
        if track_provenance and isinstance(value, BatchAffine):
            from ..obs.diag import explain_batch_row, shares_by_origin

            ex = explain_batch_row(value, j)
            result.width_shares = shares_by_origin(ex)
            result.width_radius = ex.radius
        results[gi] = result


def _stack_inputs(rt, col: List[Any], uncertainty_ulps: float,
                  origin: Optional[str] = None):
    """Stack one argument position across the cohort, mirroring the scalar
    ``Runtime.coerce_input`` traversal order so symbol ids line up."""
    first = col[0]
    if isinstance(first, (list, tuple)):
        length = len(first)
        if any(not isinstance(v, (list, tuple)) or len(v) != length
               for v in col):
            raise _Unbatchable("ragged array argument")
        return [_stack_inputs(rt, [v[i] for v in col], uncertainty_ulps,
                              origin)
                for i in range(length)]
    if all(isinstance(v, (int, float)) for v in col):
        return rt.input_rows([float(v) for v in col], uncertainty_ulps,
                             origin=origin)
    if all(isinstance(v, ValueRange) for v in col):
        return rt.input_box_rows([v.lo for v in col], [v.hi for v in col],
                                 origin=origin)
    raise _Unbatchable(
        f"cannot stack argument of type {type(first).__name__}")


def _row_value(value, j: int):
    """Extract row ``j``'s view of a batched value: affine forms become
    ``[lo, hi]``, nested lists recurse, plain scalars pass through."""
    from .form import BatchAffine

    if isinstance(value, BatchAffine):
        lo, hi, _valid = value.interval_rows()
        return [float(lo[j]), float(hi[j])]
    if isinstance(value, (list, tuple)):
        return [_row_value(v, j) for v in value]
    return value


def _scalar_value(value):
    """The scalar-path analogue of :func:`_row_value`."""
    if hasattr(value, "interval"):
        iv = value.interval()
        return [float(iv.lo), float(iv.hi)]
    if isinstance(value, (list, tuple)):
        return [_scalar_value(v) for v in value]
    return value


def _run_scalar_row(program, index: int, row: List[Any],
                    uncertainty_ulps: float,
                    track_provenance: bool = False) -> BatchRowResult:
    try:
        res = program(*row, uncertainty_ulps=uncertainty_ulps,
                      track_provenance=track_provenance)
    except ReproError as exc:
        return BatchRowResult(index=index, ok=False,
                              error=f"{type(exc).__name__}: {exc}",
                              fallback=True)
    func = program.unit.func(program.entry)
    outputs = {}
    for p in func.params:
        v = res.params.get(p.name)
        if isinstance(v, list):
            outputs[p.name] = _scalar_value(v)
    rv = _scalar_value(res.value)
    result = BatchRowResult(
        index=index, ok=True,
        interval=rv if isinstance(rv, list) and len(rv) == 2
        and not isinstance(rv[0], list) else None,
        value=rv if isinstance(rv, (int, float, bool)) else None,
        outputs=outputs, fallback=True)
    if track_provenance and hasattr(res.value, "coefficients"):
        from ..aa.explain import explain
        from ..obs.diag import shares_by_origin

        ex = explain(res.value)
        result.width_shares = shares_by_origin(ex)
        result.width_radius = ex.radius
    return result


"""Batched execution: one compiled program over N input boxes at once.

The vectorized affine kernels (:mod:`repro.aa.vectorized`) parallelize
*within* one evaluation — a single affine form's ``k`` coefficient slots
become one numpy lane set.  This package stacks *across* evaluations as
well: the per-value center scalars become ``(N,)`` vectors and the
coefficient arrays ``(N, k)`` matrices (:class:`~repro.batchrt.form.
BatchAffine`), so every affine operation over a batch of N input boxes is
a fixed sequence of row-broadcast numpy kernels instead of N Python-level
evaluations.

Control flow is handled by *cohort splitting*: each comparison is decided
per row; when rows disagree the batch is partitioned into same-decision
cohorts that re-run vectorized, and only rows whose branch is genuinely
undecidable under the STRICT policy fall back to the scalar
:class:`~repro.compiler.runtime.Runtime`.

The soundness contract (and the reason the kernels mirror the scalar
vectorized path branch for branch): every batched row's enclosure is
bit-identical to what the scalar vectorized path produces for that row —
with or without cohort splits, because per-row computations are
elementwise independent and branch decisions replay identically within a
same-decision cohort.

numpy is optional at import time; calling into the engine without it
raises a :class:`~repro.errors.CompileError` naming the ``[vector]``
extra.
"""

from __future__ import annotations

from .engine import (
    BatchRowResult,
    BatchRunResult,
    BatchRunStats,
    batchable_config,
    numpy_available,
    run_batch,
)

__all__ = [
    "BatchRowResult",
    "BatchRunResult",
    "BatchRunStats",
    "batchable_config",
    "numpy_available",
    "run_batch",
]

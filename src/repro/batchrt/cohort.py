"""Cohort splitting: how batched control flow diverges.

A batched comparison is decided per row.  When the rows agree the batch
continues as one vectorized evaluation; when they disagree the operation
raises :class:`CohortDivergence`, carrying the partition of this cohort's
rows into same-decision sub-cohorts (each re-runs vectorized from the
start — cheap, since decisions made before the divergence point were
uniform and therefore replay identically) plus the rows that must fall
back to the scalar runtime (STRICT-policy ambiguous branches, which the
scalar path turns into the proper :class:`~repro.errors.
AmbiguousComparisonError`).

Structural divergences use the same machinery: a division whose domain is
valid for some rows and invalid for others, or point for some rows and
linearized for others, splits the cohort so every sub-cohort takes a
single code path — which is what keeps each row's symbol bookkeeping
bit-identical to its scalar replay.
"""

from __future__ import annotations

from typing import List

__all__ = ["CohortDivergence"]


class CohortDivergence(Exception):
    """Raised by a batched op when rows take different paths.

    ``partitions`` holds local row-index arrays (indices into the cohort
    that raised, not the original batch); every partition is non-empty.
    ``fallback`` holds local row indices to evaluate on the scalar
    runtime.  At least two partitions, or one partition plus fallback
    rows, are always present — so splitting strictly shrinks cohorts and
    the engine's worklist terminates.
    """

    def __init__(self, partitions: List, fallback, what: str) -> None:
        self.partitions = [p for p in partitions if len(p)]
        self.fallback = fallback
        self.what = what
        sizes = [len(p) for p in self.partitions]
        super().__init__(
            f"cohort diverged on {what!r}: partitions {sizes}, "
            f"{len(fallback)} scalar-fallback row(s)")

"""Row-vectorized min-range linearization of ``1/x``.

Division dominates the batched runtime of the paper kernels (``luf``'s
elimination loop is nothing but divisions), and each division linearizes
its divisor — so this is the one linearization worth lifting off the
per-row scalar loop.  The code replays :func:`repro.aa.linearize.
linearize_inv` operation for operation: the same reflection for negative
domains, the same round-to-nearest slope, the same interval evaluations
of the deviation ``d(x) = 1/x − αx`` at both endpoints and at the clipped
critical-point enclosure, the same midpoint/half-width split — so every
lane is bit-identical to the scalar result.

The interval steps simplify because the (reflected) domain is strictly
positive and ``α < 0``: every quantity that feeds a min/max is strictly
positive (``d > 0``) or strictly nonpositive (``αx``), so numpy's
``minimum``/``maximum`` cannot disagree with Python's ``min``/``max`` on
NaN or signed-zero ties.  Rows where that argument breaks — a non-finite
or flushed-to-zero slope, or a NaN deviation hull — are patched through
the scalar function, which also reproduces its ``SoundnessError`` exactly.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - covered via engine availability gate
    np = None

from ..aa.linearize import linearize_inv
from .npops import (
    div_rd_v,
    div_ru_v,
    mul_rd_v,
    mul_ru_v,
    sqrt_rd_v,
    sqrt_ru_v,
    sub_rd_v,
    sub_ru_v,
)

__all__ = ["linearize_inv_rows"]


def _d_point(alpha, v):
    """``Interval.point(1.0)/point(v) - Interval.point(alpha)*point(v)``
    per row: all four directed-product candidates coincide for points."""
    r_lo = div_rd_v(1.0, v)
    r_hi = div_ru_v(1.0, v)
    m_lo = mul_rd_v(alpha, v)
    m_hi = mul_ru_v(alpha, v)
    return sub_rd_v(r_lo, m_hi), sub_ru_v(r_hi, m_lo)


def _d_interval(alpha, x1, x2):
    """The same deviation over the interval ``[x1, x2]`` (0 < x1 <= x2)."""
    r_lo = np.minimum(div_rd_v(1.0, x1), div_rd_v(1.0, x2))
    r_hi = np.maximum(div_ru_v(1.0, x1), div_ru_v(1.0, x2))
    m_lo = np.minimum(mul_rd_v(alpha, x1), mul_rd_v(alpha, x2))
    m_hi = np.maximum(mul_ru_v(alpha, x1), mul_ru_v(alpha, x2))
    return sub_rd_v(r_lo, m_hi), sub_ru_v(r_hi, m_lo)


def linearize_inv_rows(lo, hi):
    """Per-row ``linearize_inv(lo[i], hi[i])`` as three ``(N,)`` arrays.

    Callers guarantee no row's range contains zero (the batched ``div``
    splits domain-invalid rows off first).
    """
    neg = hi < 0.0
    with np.errstate(all="ignore"):
        # 1/x is odd: reflect negative domains onto the positive case and
        # negate zeta at the end, exactly as the scalar helper recurses.
        a = np.where(neg, -hi, lo)
        b = np.where(neg, -lo, hi)
        alpha = -1.0 / (b * b)
        bad = ~np.isfinite(alpha) | (alpha == 0.0)

        # Critical point x* = 1/sqrt(-alpha), as a sound enclosure.
        q_lo = div_rd_v(1.0, -alpha)
        q_hi = div_ru_v(1.0, -alpha)
        crit_lo = np.where(q_lo > 0.0, sqrt_rd_v(q_lo), 0.0)
        crit_hi = sqrt_ru_v(q_hi)

        da_lo, da_hi = _d_point(alpha, a)
        db_lo, db_hi = _d_point(alpha, b)
        dev_lo = np.minimum(da_lo, db_lo)
        dev_hi = np.maximum(da_hi, db_hi)

        c1 = np.maximum(crit_lo, a)
        c2 = np.minimum(crit_hi, b)
        has_crit = c2 >= c1
        dc_lo, dc_hi = _d_interval(alpha, c1, c2)
        dev_lo = np.where(has_crit, np.minimum(dev_lo, dc_lo), dev_lo)
        dev_hi = np.where(has_crit, np.maximum(dev_hi, dc_hi), dev_hi)
        bad |= np.isnan(dev_lo) | np.isnan(dev_hi)

        zeta = dev_lo + (dev_hi - dev_lo) / 2.0
        zeta = np.where(np.isfinite(zeta), zeta, dev_lo / 2.0 + dev_hi / 2.0)
        d1 = sub_ru_v(dev_hi, zeta)
        d2 = sub_ru_v(zeta, dev_lo)
        delta = np.where(d2 > d1, d2, d1)  # Python max(d1, d2)
        zeta = np.where(neg, -zeta, zeta)

    for i in np.flatnonzero(bad):
        # Degenerate slopes and invalid hulls take the scalar fallback
        # formulas (or raise the scalar SoundnessError) verbatim.
        alpha[i], zeta[i], delta[i] = linearize_inv(float(lo[i]),
                                                    float(hi[i]))
    return alpha, zeta, delta

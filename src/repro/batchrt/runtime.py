"""Batched runtime handed to generated code in place of ``Runtime``.

Generated functions only ever see the ``_rt`` protocol (constants, array
allocation, protect gathering, arithmetic dispatch, comparisons), so one
compiled program body runs unchanged over a whole cohort: every value
flowing through it is a :class:`~repro.batchrt.form.BatchAffine` instead
of a scalar affine form, and comparisons either return one Python bool
(all rows agree) or raise :class:`~repro.batchrt.cohort.CohortDivergence`
for the engine to split on.

Only AA mode with f64 vectorized kernels is supported here; the engine's
batchability gate routes everything else to the scalar path.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .form import BatchAffine, BatchContext, BatchProtect, _midpoint_rows

__all__ = ["BatchRuntime"]


class BatchRuntime:
    """Execution context for one same-path cohort of N input boxes."""

    mode = "aa"

    def __init__(self, ctx: BatchContext) -> None:
        self.ctx = ctx
        self.decision_policy = ctx.decision_policy
        self.stats = ctx.stats

    # -- value construction ---------------------------------------------------

    def const(self, value: float, exact: Optional[bool] = None,
              origin: Optional[str] = None) -> BatchAffine:
        return self.ctx.constant(value, exact=exact, provenance=origin)

    def interval_const(self, lo: float, hi: float,
                       origin: Optional[str] = None) -> BatchAffine:
        return self.ctx.from_interval(lo, hi, provenance=origin)

    def exact(self, value: float) -> BatchAffine:
        return self.ctx.exact(float(value))

    def input_rows(self, values, uncertainty_ulps: float = 1.0,
                   origin: Optional[str] = None) -> BatchAffine:
        return self.ctx.input_rows(values, uncertainty_ulps,
                                   provenance=origin)

    def input_box_rows(self, los, his,
                       origin: Optional[str] = None) -> BatchAffine:
        return self.ctx.input_box_rows(los, his, provenance=origin)

    def alloc_array(self, dims: Sequence[int]):
        if len(dims) == 1:
            return [self.exact(0.0) for _ in range(dims[0])]
        return [self.alloc_array(dims[1:]) for _ in range(dims[0])]

    def alloc_int_array(self, dims: Sequence[int]):
        if len(dims) == 1:
            return [0] * dims[0]
        return [self.alloc_int_array(dims[1:]) for _ in range(dims[0])]

    # -- priorities -------------------------------------------------------------

    def protect(self, *forms) -> BatchProtect:
        """Per-row symbol-id sets of the given batched variables.

        Mirrors ``Runtime.protect`` row by row — same per-form fragment
        caching, same largest-|coeff| insertion order, same ``k - 1`` cap —
        so each row's protected set equals the scalar gather's.
        """
        single = len(forms) == 1 and not isinstance(forms[0], (list, tuple))
        if single:
            cached = getattr(forms[0], "_pcache", None)
            if cached is not None:
                return cached
        else:
            key = self._protect_key(forms)
            memo = self._protect_memo
            if key in memo:
                return memo[key]

        n = self.ctx.n
        best = [dict() for _ in range(n)]

        def fragment(v):
            """Per-form list of {symbol id: |coeff|}, one dict per row."""
            frag = getattr(v, "_gcache", None)
            if frag is not None:
                return frag
            if not isinstance(v, BatchAffine):
                return None
            ids = v.ids
            mags = np.abs(v.coeffs)
            frag = []
            for i in range(n):
                mask = ids[i] != 0
                frag.append(dict(zip(ids[i][mask].tolist(),
                                     mags[i][mask].tolist())))
            try:
                object.__setattr__(v, "_gcache", frag)
            except (AttributeError, TypeError):
                pass
            return frag

        def gather(v) -> None:
            if isinstance(v, (list, tuple)):
                for item in v:
                    gather(item)
                return
            frag = fragment(v)
            if frag is None:
                return
            for i in range(n):
                b = best[i]
                for sid, mag in frag[i].items():
                    if mag > b.get(sid, -1.0):
                        b[sid] = mag

        for f in forms:
            gather(f)

        cap = max(1, self.ctx.k - 1)
        sets = []
        for b in best:
            if len(b) > cap:
                sets.append(frozenset(sorted(b, key=lambda s: -b[s])[:cap]))
            else:
                sets.append(frozenset(b))
        out = BatchProtect(sets)
        if single:
            try:
                object.__setattr__(forms[0], "_pcache", out)
            except (AttributeError, TypeError):
                pass
        else:
            memo = self._protect_memo
            memo[key] = out
            while len(memo) > 4:
                memo.pop(next(iter(memo)))
        return out

    @property
    def _protect_memo(self) -> dict:
        memo = getattr(self, "_protect_memo_store", None)
        if memo is None:
            memo = {}
            self._protect_memo_store = memo
        return memo

    @staticmethod
    def _protect_key(forms) -> tuple:
        flat = []

        def rec(v):
            if isinstance(v, (list, tuple)):
                for item in v:
                    rec(item)
            else:
                flat.append(v)

        for f in forms:
            rec(f)
        return tuple(flat)

    # -- arithmetic dispatch ----------------------------------------------------

    def add(self, a, b, protect=None, origin=None):
        return a.add(b, protect=protect, provenance=origin)

    def sub(self, a, b, protect=None, origin=None):
        return a.sub(b, protect=protect, provenance=origin)

    def mul(self, a, b, protect=None, origin=None):
        return a.mul(b, protect=protect, provenance=origin)

    def div(self, a, b, protect=None, origin=None):
        return a.div(b, protect=protect, provenance=origin)

    def neg(self, a):
        return a.neg()

    def sqrt(self, a, protect=None, origin=None):
        return a.sqrt(protect=protect, provenance=origin)

    def exp(self, a, protect=None, origin=None):
        return a.exp(protect=protect, provenance=origin)

    def log(self, a, protect=None, origin=None):
        return a.log(protect=protect, provenance=origin)

    def fabs(self, a):
        return a.abs_()

    def fmin(self, a, b):
        a, b = self._as_range(a), self._as_range(b)
        return a.min_with(b)

    def fmax(self, a, b):
        a, b = self._as_range(a), self._as_range(b)
        return a.max_with(b)

    # -- comparisons ------------------------------------------------------------

    def _as_range(self, x):
        if isinstance(x, (int, float)):
            return self.exact(float(x))
        return x

    def lt(self, a, b) -> bool:
        a, b = self._as_range(a), self._as_range(b)
        return a.compare_lt(b)

    def le(self, a, b) -> bool:
        a, b = self._as_range(a), self._as_range(b)
        return a.compare_le(b)

    def gt(self, a, b) -> bool:
        return self.lt(b, a)

    def ge(self, a, b) -> bool:
        return self.le(b, a)

    def eq(self, a, b) -> bool:
        """Per-row ``Runtime.eq``: definite for identical point ranges,
        disjoint ranges and invalid operands; central-midpoint fallback
        otherwise (policy-dependent, per row)."""
        a, b = self._as_range(a), self._as_range(b)
        alo, ahi, avalid = a.interval_rows()
        blo, bhi, bvalid = b.interval_rows()
        with np.errstate(all="ignore"):
            valid = avalid & bvalid
            both_point = (alo == ahi) & (blo == bhi)
            disjoint = (ahi < blo) | (bhi < alo)
            dt = valid & both_point & (alo == blo)
            df = (~valid
                  | (valid & both_point & (alo != blo))
                  | (valid & ~both_point & disjoint))
            central = _midpoint_rows(alo, ahi) == _midpoint_rows(blo, bhi)
        return a._decide_rows(dt, df, central, "==")

    def ne(self, a, b) -> bool:
        # A CohortDivergence raised inside eq propagates through the `not`
        # unchanged; the re-run cohorts decide eq uniformly.
        return not self.eq(a, b)

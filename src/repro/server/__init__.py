"""Sound-computation server: certified evaluation as a network service.

An asyncio daemon (:class:`SoundServer`) that serves ``compile`` / ``run``
(compile + evaluate on given input boxes) / ``stats`` / ``health`` /
``drain`` requests as newline-delimited JSON over TCP, through one shared
:class:`repro.service.CompileService` — so the content-addressed compile
cache and the worker process pool stay warm across millions of requests
instead of being rebuilt by every one-shot CLI invocation.

Layers (each its own module):

* :mod:`.protocol`   — framing, request parsing, structured error codes
* :mod:`.config`     — :class:`ServerConfig` tuning knobs
* :mod:`.admission`  — bounded queue + per-class concurrency limits
* :mod:`.core`       — the reusable op core (:class:`OpCore`): transport,
  op registry, admission, deadlines, tracing, drain — the building block
  the daemon *and* the fleet router (:mod:`repro.router`) are made of
* :mod:`.dispatcher` — inline (cache-hit) vs process-pool routing,
  per-request deadlines
* :mod:`.daemon`     — the server itself + :class:`ServerThread` embedding
* :mod:`.client`     — blocking :class:`ServerClient` library with bounded
  retry/backoff

Entry points: ``python -m repro serve`` / ``python -m repro request``,
``examples/serve_client.py``, ``benchmarks/bench_server_throughput.py``.
See README "Serving"/"Fleet serving" and the DESIGN.md addenda for the
architecture.
"""

from .admission import AdmissionController, Ticket
from .client import ServerClient, ServerError
from .config import ServerConfig
from .core import CoreThread, OpCore
from .daemon import ServerThread, SoundServer
from .dispatcher import Dispatcher, PreparedRequest
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    ProtocolError,
    Request,
    encode_frame,
    error_reply,
    ok_reply,
    parse_request,
)

__all__ = [
    "AdmissionController",
    "CoreThread",
    "Dispatcher",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "OPS",
    "OpCore",
    "PreparedRequest",
    "ProtocolError",
    "Request",
    "ServerClient",
    "ServerConfig",
    "ServerError",
    "ServerThread",
    "SoundServer",
    "Ticket",
    "encode_frame",
    "error_reply",
    "ok_reply",
    "parse_request",
]

"""The sound-computation server: an asyncio daemon over the service layer.

One :class:`SoundServer` owns one shared :class:`~repro.service.
CompileService` (content-addressed cache + stats) and one process pool, and
serves newline-delimited JSON requests over TCP — so the cache and the
workers stay warm across every connection instead of being rebuilt per
process the way the CLI and bench harness do.

The transport, op registry, admission control, deadlines, tracing and
drain machinery all live in the reusable :class:`~repro.server.core.
OpCore`; this module contributes only what is daemon-specific — the
compile/run/run_batch work ops routed through the :class:`.dispatcher.
Dispatcher` (inline cache hits vs. the process pool vs. the micro-batcher)
and the dispatcher's slice of the ``stats`` payload.

Request lifecycle::

    frame -> parse -> [control op: serve immediately]
                   -> prepare (validate, pick inline/pool route)
                   -> admission (bounded queue; full -> 'overloaded')
                   -> class slot wait (inline/pool semaphores)
                   -> execute (event loop or worker, with deadline)
                   -> reply (same connection, matched by id)

Requests on one connection are handled concurrently (a slow cold compile
does not block a hot cache lookup pipelined behind it); replies carry the
request id so clients can match them in any order.

Graceful drain: a ``drain`` request flips the server into draining mode —
new work is rejected with a ``draining`` reply, every already-admitted
request runs to completion and gets its reply, then the drain request
itself is answered and the server shuts down.  Nothing accepted is ever
dropped.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..obs.diag import WidthProfile
from ..obs.metrics import render_prometheus
from ..service.service import CompileService
from .config import ServerConfig
from .core import CoreThread, OpCore
from .dispatcher import Dispatcher, PreparedRequest
from .protocol import Request

__all__ = ["ServerThread", "SoundServer"]


class SoundServer(OpCore):
    """See the module docstring.  Typical use::

        server = SoundServer(ServerConfig(port=0, cache_dir=".repro-cache"))
        await server.start()
        print(server.port)
        await server.serve_forever()   # returns after a drain
    """

    span_prefix = "server"

    def __init__(self, config: Optional[ServerConfig] = None,
                 service: Optional[CompileService] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.service = service if service is not None else CompileService(
            cache_dir=self.config.cache_dir,
            maxsize=self.config.cache_maxsize)
        super().__init__(
            host=self.config.host,
            port=self.config.port,
            max_queue=self.config.max_queue,
            class_limits={
                "inline": self.config.inline_limit,
                "pool": self.config.pool_limit,
                # Coalescable requests wait concurrently for a window, so
                # their class must admit a full micro-batch at once.
                "batch": self.config.batch_max_rows,
                # Domain analysis queries: always cold-class (a query runs
                # many refinement waves even when the compile is cached),
                # with their own small slot pool so a burst of searches
                # cannot starve compile/run traffic out of the pool.
                "analyze": self.config.analyze_limit,
                # Autotuning sweeps: heaviest op of all (a whole candidate
                # space compiled and measured per request), serialized by
                # default.
                "tune": self.config.tune_limit,
            },
            default_deadline_s=self.config.default_deadline_s,
            drain_grace_s=self.config.drain_grace_s,
            max_frame_bytes=self.config.max_frame_bytes,
            trace_buffer=self.config.trace_buffer,
            trace_log=self.config.trace_log,
            trace_log_max_bytes=self.config.trace_log_max_bytes,
            stats=self.service.stats)
        self.dispatcher = Dispatcher(self.service, self.config)
        self.width_profile = WidthProfile()
        self._diag_seq = 0
        self.register_work("compile", "run", "run_batch", "analyze", "tune")
        self.register_control("diag", self.op_diag)

    # -- op-core hooks ---------------------------------------------------------------

    async def on_start(self) -> None:
        self.dispatcher.start()

    async def on_stop(self) -> None:
        self.dispatcher.stop()

    def prepare_work(self, request: Request) -> PreparedRequest:
        prepared = self.dispatcher.prepare(request)
        # Width-provenance sampling: every N-th run-family request *is*
        # executed with provenance tracking on (bit-identical results; the
        # recording happens beside the arithmetic, never in it).  The
        # micro-batch route is excluded — coalesced rows share one payload.
        every = self.config.diag_sample_every
        if every > 0 and request.op in ("run", "run_batch") \
                and prepared.route != "batch":
            self._diag_seq += 1
            if self._diag_seq % every == 0:
                prepared.payload["diag"] = True
        return prepared

    async def execute_work(self, prepared: PreparedRequest,
                           remaining_s: Optional[float]) -> Dict[str, Any]:
        result = await self.dispatcher.execute(prepared, remaining_s)
        if prepared.request.op in ("run", "run_batch"):
            self._record_diag(result.pop("width", None))
        return result

    def _record_diag(self, width: Optional[Dict[str, Any]]) -> None:
        """Fold one run's ``width`` section (if it was sampled) into the
        server-lifetime profile; unsampled requests only bump the count."""
        profile = self.width_profile
        if not width:
            profile.skip()
            return
        if "rows" in width:
            for row in width["rows"]:
                profile.record(row.get("shares") or {},
                               row.get("radius") or 0.0)
            if not width["rows"]:
                profile.skip()
        elif width.get("shares"):
            profile.record(width["shares"], width.get("radius") or 0.0)
        else:
            profile.skip()
        if width.get("n_absorptions"):
            profile.record_absorbed(width.get("absorbed") or {},
                                    width.get("absorbed_at") or {},
                                    width.get("n_absorptions", 0))

    def op_diag(self, request: Request) -> Dict[str, Any]:
        """The ``diag`` control op: the width-attribution profile this
        daemon accumulated from sampled runs (fleet-merged by the router)."""
        return {"width": self.width_profile.to_dict(),
                "sample_every": self.config.diag_sample_every}

    def op_metrics(self, request: Request) -> Dict[str, Any]:
        return {"text": render_prometheus(self.stats,
                                          server=self.server_section(),
                                          width=self.width_profile.to_dict()),
                "content_type": "text/plain; version=0.0.4"}

    def server_section(self) -> Dict[str, Any]:
        out = super().server_section()
        out.update(
            inline_served=self.dispatcher.inline_served,
            pool_submits=self.dispatcher.pool_submits,
            pool_abandoned=self.dispatcher.pool_abandoned,
            batch={
                "flushes": self.dispatcher.batcher.flushes,
                "coalesced_rows": self.dispatcher.batcher.coalesced_rows,
                "max_coalesced": self.dispatcher.batcher.max_coalesced,
                "window_s": self.config.batch_window_s,
            },
        )
        return out


class ServerThread(CoreThread):
    """A :class:`SoundServer` on a daemon thread with its own event loop.

    This is the embedding used by the blocking client world — tests, the
    throughput benchmark, and ``examples/serve_client.py`` — where the
    caller is synchronous code::

        with ServerThread(ServerConfig(port=0)) as srv:
            client = ServerClient(port=srv.port)
            ...

    ``stop()`` (also on context exit) requests shutdown and joins the
    thread; a client-initiated ``drain`` ends the loop the same way.
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 service: Optional[CompileService] = None) -> None:
        super().__init__(SoundServer(config, service=service))

"""The sound-computation server: an asyncio daemon over the service layer.

One :class:`SoundServer` owns one shared :class:`~repro.service.
CompileService` (content-addressed cache + stats) and one process pool, and
serves newline-delimited JSON requests over TCP — so the cache and the
workers stay warm across every connection instead of being rebuilt per
process the way the CLI and bench harness do.

Request lifecycle::

    frame -> parse -> [control op: serve immediately]
                   -> prepare (validate, pick inline/pool route)
                   -> admission (bounded queue; full -> 'overloaded')
                   -> class slot wait (inline/pool semaphores)
                   -> execute (event loop or worker, with deadline)
                   -> reply (same connection, matched by id)

Requests on one connection are handled concurrently (a slow cold compile
does not block a hot cache lookup pipelined behind it); replies carry the
request id so clients can match them in any order.

Graceful drain: a ``drain`` request flips the server into draining mode —
new work is rejected with a ``draining`` reply, every already-admitted
request runs to completion and gets its reply, then the drain request
itself is answered and the server shuts down.  Nothing accepted is ever
dropped.
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback
from collections import Counter
from typing import Any, Dict, Optional

from ..obs.export import TraceBuffer, TraceLog
from ..obs.metrics import render_prometheus
from ..obs.trace import Tracer, use_tracer
from ..service.service import CompileService
from .admission import AdmissionController
from .config import ServerConfig
from .dispatcher import Dispatcher
from .protocol import (
    CONTROL_OPS,
    E_DRAINING,
    E_INTERNAL,
    E_MALFORMED,
    E_OVERLOADED,
    ProtocolError,
    Request,
    encode_frame,
    error_reply,
    ok_reply,
    parse_request,
)

__all__ = ["ServerThread", "SoundServer"]


class SoundServer:
    """See the module docstring.  Typical use::

        server = SoundServer(ServerConfig(port=0, cache_dir=".repro-cache"))
        await server.start()
        print(server.port)
        await server.serve_forever()   # returns after a drain
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 service: Optional[CompileService] = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.service = service if service is not None else CompileService(
            cache_dir=self.config.cache_dir,
            maxsize=self.config.cache_maxsize)
        self.stats = self.service.stats
        self.dispatcher = Dispatcher(self.service, self.config)
        self.admission = AdmissionController(
            self.config.max_queue,
            {"inline": self.config.inline_limit,
             "pool": self.config.pool_limit,
             # Coalescable requests wait concurrently for a window, so
             # their class must admit a full micro-batch at once.
             "batch": self.config.batch_max_rows},
        )
        self.counters: Counter = Counter()
        self.trace_buffer = TraceBuffer(self.config.trace_buffer)
        self._trace_log: Optional[TraceLog] = None
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._started_at = 0.0
        self._started_wall = 0.0

    # -- lifecycle -------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._drained = asyncio.Event()
        self._stop_requested = asyncio.Event()
        if self.config.trace_log is not None:
            self._trace_log = TraceLog(self.config.trace_log)
        self.dispatcher.start()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.config.host,
            port=self.config.port, limit=self.config.max_frame_bytes)
        self._started_at = time.monotonic()
        self._started_wall = time.time()

    async def serve_forever(self) -> None:
        """Serve until a ``drain`` completes (or :meth:`request_stop`)."""
        assert self._server is not None, "server not started"
        await self._stop_requested.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (thread-unsafe form)."""
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def stop(self) -> None:
        """Immediate shutdown: close the listener and every connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        # Closing a writer EOFs its reader; let handlers unwind on their own
        # rather than be cancelled mid-read when the loop shuts down.
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        self.dispatcher.stop()
        if self._trace_log is not None:
            self._trace_log.close()

    # -- connection handling ---------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Frame exceeded the stream limit: we cannot resync a
                    # line protocol mid-frame, so reply and hang up.
                    self.counters["err:" + E_MALFORMED] += 1
                    await self._send(writer, lock, error_reply(
                        None, E_MALFORMED, "frame too large"))
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # client closed its write side
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_frame(line, writer, lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            # Half-close support: finish outstanding requests and flush
            # their replies before dropping the connection.
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            try:
                writer.close()
            except Exception:
                pass

    async def _send(self, writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    obj: Dict[str, Any]) -> None:
        async with lock:
            try:
                writer.write(encode_frame(obj))
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                pass  # client went away; its reply has nowhere to go

    # -- request handling ------------------------------------------------------------

    async def _handle_frame(self, line: bytes, writer: asyncio.StreamWriter,
                            lock: asyncio.Lock) -> None:
        t0 = time.monotonic()
        self.counters["requests_total"] += 1
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.counters["err:" + exc.code] += 1
            await self._send(writer, lock,
                             error_reply(None, exc.code, exc.message))
            return
        self.counters[f"op:{request.op}"] += 1
        if request.op in CONTROL_OPS:
            await self._handle_control(request, writer, lock)
            return
        reply = await self._handle_work(request, t0)
        self.stats.observe_latency(f"server:{request.op}",
                                   time.monotonic() - t0)
        if reply.get("ok"):
            self.counters["replies_ok"] += 1
        else:
            self.counters["err:" + reply["error"]["code"]] += 1
        await self._send(writer, lock, reply)

    async def _handle_work(self, request: Request,
                           t0: float) -> Dict[str, Any]:
        tracer = self._tracer_for(request)
        if tracer is None:
            return await self._execute_work(request, t0)
        # contextvars flow into everything this task awaits, so the
        # dispatcher, service, passes and runtime all see this tracer;
        # concurrent requests each get their own.
        with use_tracer(tracer):
            with tracer.span(f"server:{request.op}",
                             op=request.op) as root:
                reply = await self._execute_work(request, t0)
            ok = bool(reply.get("ok"))
            root.set(ok=ok)
            if ok:
                root.set(route=reply["result"].get("route"))
            else:
                root.set(error_code=reply["error"]["code"])
        self._export_spans(tracer)
        reply["trace_id"] = tracer.trace_id
        return reply

    def _tracer_for(self, request: Request) -> Optional[Tracer]:
        """A per-request tracer when the client asked for one (trace_id on
        the frame) or the server logs every request; None otherwise —
        the untraced hot path never touches the tracing machinery."""
        if request.trace_id is None and self._trace_log is None:
            return None
        return Tracer(trace_id=request.trace_id)

    def _export_spans(self, tracer: Tracer) -> None:
        spans = tracer.to_dicts()
        if not spans:
            return
        self.trace_buffer.extend(spans)
        if self._trace_log is not None:
            self._trace_log.write(spans)

    async def _execute_work(self, request: Request,
                            t0: float) -> Dict[str, Any]:
        if self._draining:
            return error_reply(request.id, E_DRAINING,
                               "server is draining; not accepting work")
        try:
            prepared = self.dispatcher.prepare(request)
        except ProtocolError as exc:
            return error_reply(request.id, exc.code, exc.message)
        ticket = self.admission.try_admit(prepared.route)
        if ticket is None:
            return error_reply(
                request.id, E_OVERLOADED,
                f"queue full ({self.admission.max_queue} admitted); "
                f"retry later")
        deadline_s = request.deadline_s \
            if request.deadline_s is not None \
            else self.config.default_deadline_s
        try:
            await ticket.acquire()
            remaining = None
            if deadline_s is not None:
                remaining = deadline_s - (time.monotonic() - t0)
            result = await self.dispatcher.execute(prepared, remaining)
            return ok_reply(request.id, result)
        except ProtocolError as exc:
            return error_reply(request.id, exc.code, exc.message)
        except asyncio.CancelledError:
            raise
        except Exception:
            return error_reply(request.id, E_INTERNAL,
                               traceback.format_exc(limit=4))
        finally:
            ticket.release()
            if self._draining and self.admission.admitted == 0:
                self._drained.set()

    # -- control ops -----------------------------------------------------------------

    async def _handle_control(self, request: Request,
                              writer: asyncio.StreamWriter,
                              lock: asyncio.Lock) -> None:
        try:
            if request.op == "health":
                reply = ok_reply(request.id, self._health())
            elif request.op == "stats":
                reply = ok_reply(request.id, self._stats())
            elif request.op == "trace":
                reply = ok_reply(request.id, self._trace(request))
            elif request.op == "metrics":
                reply = ok_reply(request.id, self._metrics())
            else:
                reply = ok_reply(request.id, await self._drain())
            if request.trace_id is not None:
                reply["trace_id"] = request.trace_id
            self.counters["replies_ok"] += 1
        except ProtocolError as exc:
            self.counters["err:" + exc.code] += 1
            reply = error_reply(request.id, exc.code, exc.message)
        except Exception:
            self.counters["err:" + E_INTERNAL] += 1
            reply = error_reply(request.id, E_INTERNAL,
                                traceback.format_exc(limit=4))
        await self._send(writer, lock, reply)
        if request.op == "drain" and reply.get("ok"):
            # The drain reply is flushed; now let serve_forever return.
            self._stop_requested.set()

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "admitted": self.admission.admitted,
            "queued": self.admission.queued,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    def _stats(self) -> Dict[str, Any]:
        return {
            "service": self.stats.to_dict(),
            "server": {
                "counters": dict(self.counters),
                "admission": self.admission.snapshot(),
                "inline_served": self.dispatcher.inline_served,
                "pool_submits": self.dispatcher.pool_submits,
                "pool_abandoned": self.dispatcher.pool_abandoned,
                "batch": {
                    "flushes": self.dispatcher.batcher.flushes,
                    "coalesced_rows": self.dispatcher.batcher.coalesced_rows,
                    "max_coalesced": self.dispatcher.batcher.max_coalesced,
                    "window_s": self.config.batch_window_s,
                },
                "draining": self._draining,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "started_at": round(self._started_wall, 3),
                "trace": {
                    "total": self.trace_buffer.total,
                    "dropped": self.trace_buffer.dropped,
                    "capacity": self.trace_buffer.capacity,
                },
            },
        }

    def _trace(self, request: Request) -> Dict[str, Any]:
        """The ``trace`` op: spans from the in-memory ring buffer,
        optionally filtered by ``trace_id`` and truncated to the newest
        ``limit``."""
        params = request.params
        trace_id = params.get("filter_trace_id") or request.trace_id
        limit = params.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            from .protocol import E_BAD_REQUEST

            raise ProtocolError(E_BAD_REQUEST,
                                "limit must be a non-negative integer")
        spans = self.trace_buffer.spans(trace_id=trace_id, limit=limit)
        return {
            "spans": spans,
            "total": self.trace_buffer.total,
            "dropped": self.trace_buffer.dropped,
        }

    def _metrics(self) -> Dict[str, Any]:
        """The ``metrics`` op: Prometheus text exposition of the service
        and server counters (the client serves/prints ``text`` as-is)."""
        server = self._stats()["server"]
        return {"text": render_prometheus(self.stats, server=server),
                "content_type": "text/plain; version=0.0.4"}

    async def _drain(self) -> Dict[str, Any]:
        """Reject new work, finish everything admitted, report, shut down."""
        self._draining = True
        if self.admission.admitted == 0:
            self._drained.set()
        try:
            await asyncio.wait_for(self._drained.wait(),
                                   timeout=self.config.drain_grace_s)
        except asyncio.TimeoutError:
            raise ProtocolError(
                E_INTERNAL,
                f"drain grace period ({self.config.drain_grace_s}s) "
                f"expired with {self.admission.admitted} request(s) "
                f"in flight")
        return {
            "drained": True,
            "completed_ok": self.counters["replies_ok"],
            "requests_total": self.counters["requests_total"],
            "outstanding": self.admission.admitted,
        }


class ServerThread:
    """A :class:`SoundServer` on a daemon thread with its own event loop.

    This is the embedding used by the blocking client world — tests, the
    throughput benchmark, and ``examples/serve_client.py`` — where the
    caller is synchronous code::

        with ServerThread(ServerConfig(port=0)) as srv:
            client = ServerClient(port=srv.port)
            ...

    ``stop()`` (also on context exit) requests shutdown and joins the
    thread; a client-initiated ``drain`` ends the loop the same way.
    """

    def __init__(self, config: Optional[ServerConfig] = None,
                 service: Optional[CompileService] = None) -> None:
        self.server = SoundServer(config, service=service)
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-sound-server")

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start in 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self.server.serve_forever()
        finally:
            await self.server.stop()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Server tuning knobs, all in one picklable dataclass."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .protocol import MAX_FRAME_BYTES

__all__ = ["ServerConfig"]


@dataclass
class ServerConfig:
    """Configuration of one :class:`repro.server.SoundServer`.

    ``port=0`` binds an ephemeral port (read it back from
    ``SoundServer.port`` after start — the CLI's ``--port-file`` exists for
    exactly this).  ``max_queue`` bounds *admitted* work requests (queued +
    executing); request number ``max_queue + 1`` gets an ``overloaded``
    reply instead of a buffer slot, which is what keeps memory bounded
    under flood.  ``pool_limit`` / ``inline_limit`` are per-class
    concurrency caps enforced by the admission controller on top of that
    single global bound.
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: compile cache shared by the event loop and the pool workers;
    #: ``None`` keeps caches per-process (workers still warm themselves).
    cache_dir: Optional[str] = None
    cache_maxsize: int = 256
    #: worker processes for cold compiles/evaluations (must be >= 1).
    pool_workers: int = 2
    #: bound on admitted (queued + in-flight) work requests.
    max_queue: int = 64
    #: concurrent cache-hit requests executed on the event loop.  These are
    #: cheap (pickle.loads + eval) but do block the loop, so the default
    #: serializes them; raise it only with care.
    inline_limit: int = 1
    #: concurrent requests outstanding on the process pool
    #: (default: ``pool_workers``).
    pool_limit: Optional[int] = None
    #: default per-request deadline when the client sends none.
    default_deadline_s: Optional[float] = None
    #: hard cap on how long ``drain`` waits for in-flight work.
    drain_grace_s: float = 60.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: JSONL file every traced request's spans are appended to (``None``
    #: keeps traces in memory only).  Requests without a ``trace_id`` are
    #: traced too when a log is configured.
    trace_log: Optional[str] = None
    #: rotate the trace log when it would exceed this many bytes (the old
    #: file moves to ``<trace_log>.1``).  ``None`` never rotates.
    trace_log_max_bytes: Optional[int] = None
    #: width-attribution sampling stride for the ``diag`` op: every N-th
    #: ``run`` request re-runs nothing — it *is* the request, executed with
    #: provenance tracking on (bit-identical results, small bookkeeping
    #: cost).  ``0`` disables sampling entirely.
    diag_sample_every: int = 16
    #: capacity of the in-memory span ring buffer (the ``trace`` op).
    trace_buffer: int = 4096
    #: micro-batching window for hot-path ``run`` requests: single-shot
    #: runs against a warm, batchable key are held up to this long and
    #: coalesced into one batched execution.  ``0`` disables coalescing.
    batch_window_s: float = 0.0
    #: flush a micro-batch as soon as it holds this many rows.
    batch_max_rows: int = 64
    #: concurrent domain analysis queries (the ``analyze`` op).  Each query
    #: occupies one pool worker for many refinement waves, so the default
    #: keeps search traffic from monopolizing the pool.
    analyze_limit: int = 2
    #: concurrent autotuning sweeps (the ``tune`` op).  A sweep compiles
    #: and runs dozens of candidate configurations on one pool worker, so
    #: the default serializes tunes — they are rare, heavy, and their
    #: winners persist anyway.
    tune_limit: int = 1

    def __post_init__(self) -> None:
        if self.trace_buffer < 1:
            raise ValueError("trace_buffer must be >= 1")
        if self.pool_workers < 1:
            raise ValueError("pool_workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.inline_limit < 1:
            raise ValueError("inline_limit must be >= 1")
        if self.pool_limit is None:
            self.pool_limit = self.pool_workers
        if self.pool_limit < 1:
            raise ValueError("pool_limit must be >= 1")
        if self.batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if self.analyze_limit < 1:
            raise ValueError("analyze_limit must be >= 1")
        if self.tune_limit < 1:
            raise ValueError("tune_limit must be >= 1")
        if self.batch_max_rows < 1:
            raise ValueError("batch_max_rows must be >= 1")
        if self.trace_log_max_bytes is not None \
                and self.trace_log_max_bytes < 1:
            raise ValueError("trace_log_max_bytes must be >= 1")
        if self.diag_sample_every < 0:
            raise ValueError("diag_sample_every must be >= 0")

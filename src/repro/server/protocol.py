"""Wire protocol of the sound-computation server.

One frame = one JSON object on one line (newline-delimited JSON over TCP).
Requests carry a caller-chosen ``id`` that is echoed verbatim on the reply,
so a client may pipeline many requests on one connection and match replies
out of order.

Request frame::

    {"id": 7, "op": "run", "source": "double f(...) {...}",
     "config": "f64a-dsnn", "k": 16, "args": [0.3, 0.2, 100],
     "deadline_s": 5.0}

Reply frames::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "overloaded",
                                     "message": "queue full (64 admitted)"}}

Error codes are a closed set (:data:`ERROR_CODES`): clients can switch on
them without parsing messages.  A frame that cannot be parsed at all is
answered with ``id: null`` and code ``malformed``; everything after the
request is identified carries its id, including structured compile errors
(code ``compile_error``).

Tracing and metrics ops
-----------------------

Any request may carry an optional ``trace_id`` (non-empty string, at most
128 chars).  For work ops the server records a span tree for the request
under that id — protocol handling, dispatch, compile passes, program
execution — into a bounded in-memory ring buffer (and a JSONL log when
``--trace-log`` is set); the id is echoed in the reply's ``trace_id``
field so the caller can correlate.  Two control ops expose the results:

``trace``
    ``{"id": 3, "op": "trace", "filter_trace_id": "...", "limit": 100}``
    returns ``{"spans": [...], "total": N, "dropped": M}`` — span dicts
    from the ring buffer (oldest first), optionally filtered to one trace
    and/or truncated to the newest ``limit``.

``metrics``
    returns ``{"text": "...", "content_type": "text/plain; version=0.0.4"}``
    — the server's counters, latency histograms and runtime op profile
    rendered in the Prometheus text exposition format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "CONTROL_OPS",
    "ERROR_CODES",
    "E_BAD_REQUEST",
    "E_COMPILE",
    "E_DEADLINE",
    "E_DRAINING",
    "E_INTERNAL",
    "E_MALFORMED",
    "E_OVERLOADED",
    "E_UNAVAILABLE",
    "MAX_FRAME_BYTES",
    "OPS",
    "ProtocolError",
    "Request",
    "encode_frame",
    "error_reply",
    "ok_reply",
    "parse_request",
]

#: Largest accepted frame (a request carrying a C source comfortably fits).
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Work ops go through admission control; control ops are always served.
OPS = ("compile", "run", "run_batch", "analyze", "tune", "stats", "health",
       "drain", "trace", "metrics")
CONTROL_OPS = ("stats", "health", "drain", "trace", "metrics")

E_MALFORMED = "malformed"            # frame is not a JSON object / too big
E_BAD_REQUEST = "bad_request"        # unknown op or invalid parameters
E_OVERLOADED = "overloaded"          # admission queue full; retry later
E_DRAINING = "draining"              # server is draining; no new work
E_DEADLINE = "deadline_exceeded"     # request deadline passed
E_COMPILE = "compile_error"          # the C program failed to compile
E_UNAVAILABLE = "unavailable"        # no healthy backend can take the work
E_INTERNAL = "internal"              # unexpected server-side failure

ERROR_CODES = (E_MALFORMED, E_BAD_REQUEST, E_OVERLOADED, E_DRAINING,
               E_DEADLINE, E_COMPILE, E_UNAVAILABLE, E_INTERNAL)


class ProtocolError(Exception):
    """A request-level failure with a structured error code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        self.code = code
        self.message = message
        super().__init__(f"{code}: {message}")


@dataclass
class Request:
    """A parsed request frame."""

    id: Any
    op: str
    params: Dict[str, Any] = field(default_factory=dict)
    deadline_s: Optional[float] = None
    #: caller-chosen trace id; the server records the request's span tree
    #: under it and echoes it on the reply.
    trace_id: Optional[str] = None
    #: span id of the caller's span this request is a child of — a router
    #: forwarding a traced request sets it so the shard's spans graft
    #: under the router's forwarding span (one more hop in the waterfall).
    parent_span: Optional[str] = None


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Serialize one frame: compact JSON + newline.

    ``allow_nan`` stays on (Python's ``Infinity``/``NaN`` extension):
    enclosures of diverging programs have infinite bounds, and Python's
    ``repr``-based float serialization round-trips doubles bit-exactly,
    which the soundness tests rely on.
    """
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def ok_reply(req_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": req_id, "ok": True, "result": result}


def error_reply(req_id: Any, code: str, message: str) -> Dict[str, Any]:
    assert code in ERROR_CODES, code
    return {"id": req_id, "ok": False,
            "error": {"code": code, "message": message}}


def parse_request(line: bytes, ops: tuple = OPS) -> Request:
    """Parse one frame into a :class:`Request`.

    ``ops`` is the set of op names this process serves (a router and a
    shard built on the same op core may expose different registries).
    Raises :class:`ProtocolError` with ``malformed`` (not a JSON object,
    bad encoding) or ``bad_request`` (unknown op, bad deadline).
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(E_MALFORMED,
                            f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(E_MALFORMED, f"bad JSON frame: {exc}")
    if not isinstance(data, dict):
        raise ProtocolError(E_MALFORMED,
                            f"frame must be a JSON object, got "
                            f"{type(data).__name__}")
    op = data.pop("op", None)
    if op not in ops:
        raise ProtocolError(E_BAD_REQUEST,
                            f"unknown op {op!r}; expected one of {ops}")
    req_id = data.pop("id", None)
    deadline = data.pop("deadline_s", None)
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or deadline <= 0 \
                or deadline != deadline:
            raise ProtocolError(E_BAD_REQUEST,
                                "deadline_s must be a positive number")
        deadline = float(deadline)
    trace_id = data.pop("trace_id", None)
    if trace_id is not None:
        if not isinstance(trace_id, str) or not trace_id \
                or len(trace_id) > 128:
            raise ProtocolError(E_BAD_REQUEST,
                                "trace_id must be a non-empty string "
                                "(at most 128 chars)")
    parent_span = data.pop("parent_span", None)
    if parent_span is not None:
        if not isinstance(parent_span, str) or not parent_span \
                or len(parent_span) > 128:
            raise ProtocolError(E_BAD_REQUEST,
                                "parent_span must be a non-empty string "
                                "(at most 128 chars)")
    return Request(id=req_id, op=op, params=data, deadline_s=deadline,
                   trace_id=trace_id, parent_span=parent_span)

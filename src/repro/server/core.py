"""The op core: a reusable "process that speaks newline-delimited JSON ops".

This module is the transport/dispatch machinery that used to be private to
the sound-computation daemon, extracted so that *any* service in the fleet
— the daemon itself, the consistent-hash router in :mod:`repro.router`,
test doubles — is one subclass away from a fully operable server with:

* newline-delimited JSON framing over asyncio TCP (one frame = one op),
* an **op registry** splitting *control* ops (always served, even while
  draining: ``health``/``stats``/``trace``/``metrics``/``drain``) from
  *work* ops (subject to admission control and deadlines),
* admission control: a global bounded queue plus per-class concurrency
  limits (reject-don't-buffer under flood),
* per-request deadlines anchored at frame arrival,
* per-request span tracing with cross-process/cross-hop grafting (the
  ``trace_id`` + ``parent_span`` frame fields), a bounded span ring
  buffer, and an optional JSONL trace log,
* graceful drain: accepted work always gets its reply, then the process
  exits cleanly.

Subclasses implement two hooks for work ops —

    def prepare_work(self, request) -> prepared   # .route names the class
    async def execute_work(self, prepared, remaining_s) -> result dict

— and may register extra control ops with :meth:`OpCore.register_control`
or override the built-in ``op_*`` handlers (the router, for example,
overrides ``op_stats`` to aggregate fleet-wide).  :class:`CoreThread`
embeds any core on a daemon thread with its own event loop, which is how
the blocking-client world (tests, benchmarks, examples) boots servers.
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback
from collections import Counter
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple, Union

from ..obs.export import TraceBuffer, TraceLog
from ..obs.metrics import render_prometheus
from ..obs.trace import Tracer, use_tracer
from ..service.stats import ServiceStats
from .admission import AdmissionController
from .protocol import (
    MAX_FRAME_BYTES,
    E_BAD_REQUEST,
    E_DRAINING,
    E_INTERNAL,
    E_MALFORMED,
    E_OVERLOADED,
    ProtocolError,
    Request,
    encode_frame,
    error_reply,
    ok_reply,
    parse_request,
)

__all__ = ["CoreThread", "OpCore"]

#: A control handler: sync or async, Request -> JSON-safe result dict.
ControlHandler = Callable[[Request],
                          Union[Dict[str, Any], Awaitable[Dict[str, Any]]]]


class OpCore:
    """See the module docstring.  Typical use::

        core = MyCore(...)          # an OpCore subclass
        await core.start()
        print(core.port)
        await core.serve_forever()  # returns after a drain
    """

    #: prefix of work-op root spans and latency probes ("server:run",
    #: "router:run", ...) — override per role.
    span_prefix = "server"

    def __init__(self, *,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 max_queue: int = 64,
                 class_limits: Optional[Dict[str, int]] = None,
                 default_deadline_s: Optional[float] = None,
                 drain_grace_s: float = 60.0,
                 max_frame_bytes: int = MAX_FRAME_BYTES,
                 trace_buffer: int = 4096,
                 trace_log: Optional[str] = None,
                 trace_log_max_bytes: Optional[int] = None,
                 stats: Optional[ServiceStats] = None) -> None:
        self.host = host
        self.requested_port = port
        self.default_deadline_s = default_deadline_s
        self.drain_grace_s = drain_grace_s
        self.max_frame_bytes = max_frame_bytes
        self.stats = stats if stats is not None else ServiceStats()
        self.admission = AdmissionController(
            max_queue, class_limits if class_limits else {"work": 8})
        self.counters: Counter = Counter()
        self.trace_buffer = TraceBuffer(trace_buffer)
        self._trace_log_path = trace_log
        self._trace_log_max_bytes = trace_log_max_bytes
        self._trace_log: Optional[TraceLog] = None
        self._control: Dict[str, ControlHandler] = {}
        self._work_ops: set = set()
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()
        self._conn_tasks: set = set()
        self._started_at = 0.0
        self._started_wall = 0.0
        self.register_control("health", self.op_health)
        self.register_control("stats", self.op_stats)
        self.register_control("trace", self.op_trace)
        self.register_control("metrics", self.op_metrics)
        self.register_control("drain", self.op_drain)

    # -- op registry -----------------------------------------------------------------

    def register_control(self, name: str, handler: ControlHandler) -> None:
        """Register/override a control op (served even while draining)."""
        self._control[name] = handler

    def register_work(self, *names: str) -> None:
        """Register work ops (admission-controlled; the :meth:`prepare_work`
        / :meth:`execute_work` hooks run them)."""
        self._work_ops.update(names)

    @property
    def op_names(self) -> Tuple[str, ...]:
        """Every op this core serves — the frame-level validation set."""
        return tuple(sorted(self._work_ops)) + tuple(sorted(self._control))

    # -- subclass hooks --------------------------------------------------------------

    def prepare_work(self, request: Request) -> Any:
        """Validate a work request; return a prepared object whose ``route``
        attribute names its admission class.  Raise :class:`ProtocolError`
        (``bad_request``) on invalid parameters."""
        raise NotImplementedError

    async def execute_work(self, prepared: Any,
                           remaining_s: Optional[float]) -> Dict[str, Any]:
        """Run one prepared work request; return the JSON-safe result."""
        raise NotImplementedError

    async def on_start(self) -> None:
        """Called from :meth:`start` before the listener binds."""

    async def on_stop(self) -> None:
        """Called from :meth:`stop` after connections are gone."""

    async def on_drained(self) -> Optional[Dict[str, Any]]:
        """Called once local in-flight work has finished during a drain,
        before the drain reply; the returned dict merges into it (a router
        drains its shards here)."""
        return None

    # -- lifecycle -------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actually-bound port (useful with ``port=0``)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self._draining

    async def start(self) -> None:
        self._drained = asyncio.Event()
        self._stop_requested = asyncio.Event()
        if self._trace_log_path is not None:
            self._trace_log = TraceLog(self._trace_log_path,
                                       max_bytes=self._trace_log_max_bytes)
        await self.on_start()
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host,
            port=self.requested_port, limit=self.max_frame_bytes)
        self._started_at = time.monotonic()
        self._started_wall = time.time()

    async def serve_forever(self) -> None:
        """Serve until a ``drain`` completes (or :meth:`request_stop`)."""
        assert self._server is not None, "server not started"
        await self._stop_requested.wait()
        await self.stop()

    def request_stop(self) -> None:
        """Ask :meth:`serve_forever` to return (thread-unsafe form)."""
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def stop(self) -> None:
        """Immediate shutdown: close the listener and every connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        # Closing a writer EOFs its reader; let handlers unwind on their own
        # rather than be cancelled mid-read when the loop shuts down.
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        await self.on_stop()
        if self._trace_log is not None:
            self._trace_log.close()

    # -- connection handling ---------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        self._conn_tasks.add(asyncio.current_task())
        lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Frame exceeded the stream limit: we cannot resync a
                    # line protocol mid-frame, so reply and hang up.
                    self.counters["err:" + E_MALFORMED] += 1
                    await self._send(writer, lock, error_reply(
                        None, E_MALFORMED, "frame too large"))
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # client closed its write side
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._handle_frame(line, writer, lock))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            # Half-close support: finish outstanding requests and flush
            # their replies before dropping the connection.
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
        finally:
            self._writers.discard(writer)
            self._conn_tasks.discard(asyncio.current_task())
            try:
                writer.close()
            except Exception:
                pass

    async def _send(self, writer: asyncio.StreamWriter, lock: asyncio.Lock,
                    obj: Dict[str, Any]) -> None:
        async with lock:
            try:
                writer.write(encode_frame(obj))
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                pass  # client went away; its reply has nowhere to go

    # -- request handling ------------------------------------------------------------

    async def _handle_frame(self, line: bytes, writer: asyncio.StreamWriter,
                            lock: asyncio.Lock) -> None:
        t0 = time.monotonic()
        self.counters["requests_total"] += 1
        try:
            request = parse_request(line, ops=self.op_names)
        except ProtocolError as exc:
            self.counters["err:" + exc.code] += 1
            await self._send(writer, lock,
                             error_reply(None, exc.code, exc.message))
            return
        self.counters[f"op:{request.op}"] += 1
        if request.op in self._control:
            await self._handle_control(request, writer, lock)
            return
        reply = await self._handle_work(request, t0)
        self.stats.observe_latency(f"{self.span_prefix}:{request.op}",
                                   time.monotonic() - t0)
        if reply.get("ok"):
            self.counters["replies_ok"] += 1
        else:
            self.counters["err:" + reply["error"]["code"]] += 1
        await self._send(writer, lock, reply)

    async def _handle_work(self, request: Request,
                           t0: float) -> Dict[str, Any]:
        tracer = self._tracer_for(request)
        if tracer is None:
            return await self._execute_work(request, t0)
        # contextvars flow into everything this task awaits, so the
        # dispatcher, service, passes and runtime all see this tracer;
        # concurrent requests each get their own.
        with use_tracer(tracer):
            with tracer.span(f"{self.span_prefix}:{request.op}",
                             op=request.op) as root:
                reply = await self._execute_work(request, t0)
            ok = bool(reply.get("ok"))
            root.set(ok=ok)
            if ok:
                root.set(route=reply["result"].get("route"))
            else:
                root.set(error_code=reply["error"]["code"])
        self._export_spans(tracer)
        reply["trace_id"] = tracer.trace_id
        return reply

    def _tracer_for(self, request: Request) -> Optional[Tracer]:
        """A per-request tracer when the client asked for one (trace_id on
        the frame) or the server logs every request; None otherwise —
        the untraced hot path never touches the tracing machinery.
        ``parent_span`` (set by a forwarding router) grafts this process's
        spans under the caller's span."""
        if request.trace_id is None and self._trace_log is None:
            return None
        return Tracer(trace_id=request.trace_id,
                      root_parent=request.parent_span)

    def _export_spans(self, tracer: Tracer) -> None:
        spans = tracer.to_dicts()
        if not spans:
            return
        self.trace_buffer.extend(spans)
        if self._trace_log is not None:
            self._trace_log.write(spans)

    async def _execute_work(self, request: Request,
                            t0: float) -> Dict[str, Any]:
        if self._draining:
            return error_reply(request.id, E_DRAINING,
                               "server is draining; not accepting work")
        try:
            prepared = self.prepare_work(request)
        except ProtocolError as exc:
            return error_reply(request.id, exc.code, exc.message)
        ticket = self.admission.try_admit(prepared.route)
        if ticket is None:
            return error_reply(
                request.id, E_OVERLOADED,
                f"queue full ({self.admission.max_queue} admitted); "
                f"retry later")
        deadline_s = request.deadline_s \
            if request.deadline_s is not None \
            else self.default_deadline_s
        try:
            await ticket.acquire()
            remaining = None
            if deadline_s is not None:
                remaining = deadline_s - (time.monotonic() - t0)
            result = await self.execute_work(prepared, remaining)
            return ok_reply(request.id, result)
        except ProtocolError as exc:
            return error_reply(request.id, exc.code, exc.message)
        except asyncio.CancelledError:
            raise
        except Exception:
            return error_reply(request.id, E_INTERNAL,
                               traceback.format_exc(limit=4))
        finally:
            ticket.release()
            if self._draining and self.admission.admitted == 0:
                self._drained.set()

    # -- control ops -----------------------------------------------------------------

    async def _handle_control(self, request: Request,
                              writer: asyncio.StreamWriter,
                              lock: asyncio.Lock) -> None:
        try:
            value = self._control[request.op](request)
            if asyncio.iscoroutine(value):
                value = await value
            reply = ok_reply(request.id, value)
            if request.trace_id is not None:
                reply["trace_id"] = request.trace_id
            self.counters["replies_ok"] += 1
        except ProtocolError as exc:
            self.counters["err:" + exc.code] += 1
            reply = error_reply(request.id, exc.code, exc.message)
        except Exception:
            self.counters["err:" + E_INTERNAL] += 1
            reply = error_reply(request.id, E_INTERNAL,
                                traceback.format_exc(limit=4))
        await self._send(writer, lock, reply)
        if request.op == "drain" and reply.get("ok"):
            # The drain reply is flushed; now let serve_forever return.
            self._stop_requested.set()

    def op_health(self, request: Request) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "admitted": self.admission.admitted,
            "queued": self.admission.queued,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    def server_section(self) -> Dict[str, Any]:
        """The process-level half of the ``stats`` payload; subclasses
        extend it with their own counters."""
        return {
            "counters": dict(self.counters),
            "admission": self.admission.snapshot(),
            "draining": self._draining,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "started_at": round(self._started_wall, 3),
            "trace": {
                "total": self.trace_buffer.total,
                "dropped": self.trace_buffer.dropped,
                "capacity": self.trace_buffer.capacity,
            },
        }

    def op_stats(self, request: Request) -> Dict[str, Any]:
        return {"service": self.stats.to_dict(),
                "server": self.server_section()}

    def op_trace(self, request: Request) -> Dict[str, Any]:
        """The ``trace`` op: spans from the in-memory ring buffer,
        optionally filtered by ``trace_id`` and truncated to the newest
        ``limit``."""
        params = request.params
        trace_id = params.get("filter_trace_id") or request.trace_id
        limit = params.get("limit")
        if limit is not None and (not isinstance(limit, int) or limit < 0):
            raise ProtocolError(E_BAD_REQUEST,
                                "limit must be a non-negative integer")
        spans = self.trace_buffer.spans(trace_id=trace_id, limit=limit)
        return {
            "spans": spans,
            "total": self.trace_buffer.total,
            "dropped": self.trace_buffer.dropped,
        }

    def op_metrics(self, request: Request) -> Dict[str, Any]:
        """The ``metrics`` op: Prometheus text exposition of the service
        and server counters (the client serves/prints ``text`` as-is)."""
        return {"text": render_prometheus(self.stats,
                                          server=self.server_section()),
                "content_type": "text/plain; version=0.0.4"}

    async def op_drain(self, request: Request) -> Dict[str, Any]:
        """Reject new work, finish everything admitted, report, shut down."""
        self._draining = True
        if self.admission.admitted == 0:
            self._drained.set()
        try:
            await asyncio.wait_for(self._drained.wait(),
                                   timeout=self.drain_grace_s)
        except asyncio.TimeoutError:
            raise ProtocolError(
                E_INTERNAL,
                f"drain grace period ({self.drain_grace_s}s) "
                f"expired with {self.admission.admitted} request(s) "
                f"in flight")
        extra = await self.on_drained()
        return {
            "drained": True,
            "completed_ok": self.counters["replies_ok"],
            "requests_total": self.counters["requests_total"],
            "outstanding": self.admission.admitted,
            **(extra or {}),
        }


class CoreThread:
    """An :class:`OpCore` on a daemon thread with its own event loop.

    This is the embedding used by the blocking client world — tests, the
    throughput benchmarks, and the examples — where the caller is
    synchronous code::

        with CoreThread(core) as srv:
            client = ServerClient(port=srv.port)
            ...

    ``stop()`` (also on context exit) requests shutdown and joins the
    thread; a client-initiated ``drain`` ends the loop the same way.
    """

    def __init__(self, core: OpCore) -> None:
        self.server = core
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"repro-{core.span_prefix}-core")

    def start(self) -> "CoreThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start in 30s")
        if self._startup_error is not None:
            raise RuntimeError("server failed to start") \
                from self._startup_error
        return self

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=timeout)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            await self.server.serve_forever()
        finally:
            await self.server.stop()

    def __enter__(self) -> "CoreThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Blocking client for the sound-computation server.

Dependency-free: one TCP socket, newline-delimited JSON frames, request ids
assigned per client.  A :class:`ServerClient` keeps one outstanding request
at a time (replies therefore arrive in order); run many clients — one per
thread — to load the server concurrently, which is exactly what
``benchmarks/bench_server_throughput.py`` does.

    from repro.server import ServerClient

    with ServerClient(port=8437) as c:
        r = c.run(source, config="f64a-dsnn", k=8, args=[0.3, 0.2, 100])
        print(r["interval"], r["acc_bits"])

Error replies raise :class:`ServerError` carrying the structured code
(``overloaded``, ``deadline_exceeded``, ``compile_error``, ...), so callers
can implement retry policies without string matching.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, Optional

from .protocol import encode_frame

__all__ = ["ServerClient", "ServerError"]


class ServerError(Exception):
    """An error reply from the server, with its structured code."""

    def __init__(self, code: str, message: str,
                 reply: Optional[Dict[str, Any]] = None) -> None:
        self.code = code
        self.message = message
        self.reply = reply
        super().__init__(f"{code}: {message}")


class ServerClient:
    """See the module docstring."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8437,
                 timeout: Optional[float] = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- connection ------------------------------------------------------------------

    def connect(self) -> "ServerClient":
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- frame I/O -------------------------------------------------------------------

    def send_raw(self, frame: Dict[str, Any]) -> None:
        """Send one frame without waiting for the reply (pipelining)."""
        self.connect()
        self._file.write(encode_frame(frame))
        self._file.flush()

    def read_reply(self) -> Dict[str, Any]:
        """Read one reply frame; raises ConnectionError on EOF."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def raw_request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send an arbitrary frame and return the raw reply dict (no
        error-to-exception translation) — protocol tests use this."""
        self.send_raw(frame)
        return self.read_reply()

    # -- the op API ------------------------------------------------------------------

    def request(self, op: str, deadline_s: Optional[float] = None,
                trace_id: Optional[str] = None,
                **params: Any) -> Dict[str, Any]:
        """Send one request; return ``result`` or raise :class:`ServerError`."""
        self._next_id += 1
        frame: Dict[str, Any] = {"id": self._next_id, "op": op, **params}
        if deadline_s is not None:
            frame["deadline_s"] = deadline_s
        if trace_id is not None:
            frame["trace_id"] = trace_id
        reply = self.raw_request(frame)
        if reply.get("id") != self._next_id:
            raise ServerError("internal",
                              f"reply id {reply.get('id')!r} does not match "
                              f"request id {self._next_id}", reply)
        if not reply.get("ok"):
            err = reply.get("error") or {}
            raise ServerError(err.get("code", "internal"),
                              err.get("message", "missing error body"),
                              reply)
        return reply["result"]

    def compile(self, source: str, config: Any = None, k: int = 16,
                entry: Optional[str] = None,
                deadline_s: Optional[float] = None,
                trace_id: Optional[str] = None,
                **params: Any) -> Dict[str, Any]:
        if config is not None:
            params["config"] = config
        return self.request("compile", deadline_s=deadline_s,
                            trace_id=trace_id, source=source,
                            k=k, entry=entry, **params)

    def run(self, source: str, args: Iterable[Any] = (),
            inputs: Optional[Dict[str, Any]] = None, config: Any = None,
            k: int = 16, entry: Optional[str] = None,
            uncertainty_ulps: float = 1.0, repeats: int = 1,
            deadline_s: Optional[float] = None,
            trace_id: Optional[str] = None,
            **params: Any) -> Dict[str, Any]:
        if config is not None:
            params["config"] = config
        return self.request(
            "run", deadline_s=deadline_s, trace_id=trace_id, source=source,
            k=k, entry=entry, args=list(args), inputs=dict(inputs or {}),
            uncertainty_ulps=uncertainty_ulps, repeats=repeats, **params)

    def run_batch(self, source: str, rows: Iterable[Iterable[Any]],
                  config: Any = None, k: int = 16,
                  entry: Optional[str] = None,
                  uncertainty_ulps: float = 1.0,
                  deadline_s: Optional[float] = None,
                  trace_id: Optional[str] = None,
                  **params: Any) -> Dict[str, Any]:
        """Run one program over many input boxes in a single request.

        ``rows`` is one positional-argument list per input box; the reply
        carries per-row enclosures plus batch statistics.
        """
        if config is not None:
            params["config"] = config
        return self.request(
            "run_batch", deadline_s=deadline_s, trace_id=trace_id,
            source=source, k=k, entry=entry,
            rows=[list(r) for r in rows],
            uncertainty_ulps=uncertainty_ulps, **params)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def health(self) -> Dict[str, Any]:
        return self.request("health")

    def drain(self) -> Dict[str, Any]:
        """Ask the server to finish accepted work and shut down."""
        return self.request("drain")

    def trace(self, trace_id: Optional[str] = None,
              limit: Optional[int] = None) -> Dict[str, Any]:
        """Fetch spans from the server's in-memory trace ring buffer.

        ``trace_id`` filters to one trace; ``limit`` keeps the newest N
        spans.  Returns ``{"spans": [...], "total": ..., "dropped": ...}``.
        """
        params: Dict[str, Any] = {}
        if trace_id is not None:
            params["filter_trace_id"] = trace_id
        if limit is not None:
            params["limit"] = limit
        return self.request("trace", **params)

    def metrics(self) -> str:
        """Fetch the Prometheus text exposition of the server's stats."""
        return self.request("metrics")["text"]

"""Blocking client for the sound-computation server.

Dependency-free: one TCP socket, newline-delimited JSON frames, request ids
assigned per client.  A :class:`ServerClient` keeps one outstanding request
at a time (replies therefore arrive in order); run many clients — one per
thread — to load the server concurrently, which is exactly what
``benchmarks/bench_server_throughput.py`` does.

    from repro.server import ServerClient

    with ServerClient(port=8437) as c:
        r = c.run(source, config="f64a-dsnn", k=8, args=[0.3, 0.2, 100])
        print(r["interval"], r["acc_bits"])

Error replies raise :class:`ServerError` carrying the structured code
(``overloaded``, ``deadline_exceeded``, ``compile_error``, ...), so callers
can implement retry policies without string matching — or let the client
do it: ``retries=N`` turns on bounded retry with exponential backoff and
full jitter for exactly the transient failures (``overloaded`` /
``unavailable`` replies, connection refused/lost — the connection is
re-established transparently).  Definitive answers (``bad_request``,
``compile_error``, ``deadline_exceeded``) never retry, and neither does
``drain`` (a lost drain reply must surface, not re-drain a new process).
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import Any, Dict, Iterable, List, Optional

from .protocol import encode_frame

__all__ = ["ServerClient", "ServerError"]

#: error codes worth retrying: the request never ran (admission rejected
#: it) or no backend could take it — a later attempt can succeed.
RETRYABLE_CODES = frozenset({"overloaded", "unavailable"})


class ServerError(Exception):
    """An error reply from the server, with its structured code."""

    def __init__(self, code: str, message: str,
                 reply: Optional[Dict[str, Any]] = None) -> None:
        self.code = code
        self.message = message
        self.reply = reply
        super().__init__(f"{code}: {message}")


class ServerClient:
    """See the module docstring."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8437,
                 timeout: Optional[float] = 60.0, retries: int = 0,
                 backoff_s: float = 0.05,
                 backoff_max_s: float = 2.0) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_max_s = backoff_max_s
        self.retried_total = 0
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # -- connection ------------------------------------------------------------------

    def connect(self) -> "ServerClient":
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port),
                                                  timeout=self.timeout)
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- frame I/O -------------------------------------------------------------------

    def send_raw(self, frame: Dict[str, Any]) -> None:
        """Send one frame without waiting for the reply (pipelining)."""
        self.connect()
        self._file.write(encode_frame(frame))
        self._file.flush()

    def read_reply(self) -> Dict[str, Any]:
        """Read one reply frame; raises ConnectionError on EOF."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def raw_request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """Send an arbitrary frame and return the raw reply dict (no
        error-to-exception translation) — protocol tests use this."""
        self.send_raw(frame)
        return self.read_reply()

    # -- the op API ------------------------------------------------------------------

    def request(self, op: str, deadline_s: Optional[float] = None,
                trace_id: Optional[str] = None,
                **params: Any) -> Dict[str, Any]:
        """Send one request; return ``result`` or raise :class:`ServerError`.

        With ``retries > 0``, transient failures (see
        :data:`RETRYABLE_CODES` and connection errors) are retried up to
        ``retries`` more times with exponential backoff and full jitter;
        a dropped connection is re-opened before the next attempt.
        """
        attempts = 1 if op == "drain" else self.retries + 1
        for attempt in range(attempts):
            try:
                return self._request_once(op, deadline_s, trace_id, params)
            except ServerError as exc:
                if exc.code not in RETRYABLE_CODES \
                        or attempt + 1 >= attempts:
                    raise
            except (ConnectionError, OSError):
                # The request may be half-written on the dead socket;
                # drop it so the next attempt starts a clean connection.
                self.close()
                if attempt + 1 >= attempts:
                    raise
            self.retried_total += 1
            self._backoff(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def _backoff(self, attempt: int) -> None:
        cap = min(self.backoff_max_s, self.backoff_s * (2 ** attempt))
        # Full jitter: desynchronizes the retry herd that a shard
        # failover or an overload burst creates across many clients.
        time.sleep(random.uniform(0.0, cap))

    def _request_once(self, op: str, deadline_s: Optional[float],
                      trace_id: Optional[str],
                      params: Dict[str, Any]) -> Dict[str, Any]:
        self._next_id += 1
        frame: Dict[str, Any] = {"id": self._next_id, "op": op, **params}
        if deadline_s is not None:
            frame["deadline_s"] = deadline_s
        if trace_id is not None:
            frame["trace_id"] = trace_id
        reply = self.raw_request(frame)
        if reply.get("id") != self._next_id:
            raise ServerError("internal",
                              f"reply id {reply.get('id')!r} does not match "
                              f"request id {self._next_id}", reply)
        if not reply.get("ok"):
            err = reply.get("error") or {}
            raise ServerError(err.get("code", "internal"),
                              err.get("message", "missing error body"),
                              reply)
        return reply["result"]

    def compile(self, source: str, config: Any = None, k: int = 16,
                entry: Optional[str] = None,
                deadline_s: Optional[float] = None,
                trace_id: Optional[str] = None,
                **params: Any) -> Dict[str, Any]:
        if config is not None:
            params["config"] = config
        return self.request("compile", deadline_s=deadline_s,
                            trace_id=trace_id, source=source,
                            k=k, entry=entry, **params)

    def run(self, source: str, args: Iterable[Any] = (),
            inputs: Optional[Dict[str, Any]] = None, config: Any = None,
            k: int = 16, entry: Optional[str] = None,
            uncertainty_ulps: float = 1.0, repeats: int = 1,
            deadline_s: Optional[float] = None,
            trace_id: Optional[str] = None,
            **params: Any) -> Dict[str, Any]:
        if config is not None:
            params["config"] = config
        return self.request(
            "run", deadline_s=deadline_s, trace_id=trace_id, source=source,
            k=k, entry=entry, args=list(args), inputs=dict(inputs or {}),
            uncertainty_ulps=uncertainty_ulps, repeats=repeats, **params)

    def run_batch(self, source: str, rows: Iterable[Iterable[Any]],
                  config: Any = None, k: int = 16,
                  entry: Optional[str] = None,
                  uncertainty_ulps: float = 1.0,
                  deadline_s: Optional[float] = None,
                  trace_id: Optional[str] = None,
                  **params: Any) -> Dict[str, Any]:
        """Run one program over many input boxes in a single request.

        ``rows`` is one positional-argument list per input box; the reply
        carries per-row enclosures plus batch statistics.
        """
        if config is not None:
            params["config"] = config
        return self.request(
            "run_batch", deadline_s=deadline_s, trace_id=trace_id,
            source=source, k=k, entry=entry,
            rows=[list(r) for r in rows],
            uncertainty_ulps=uncertainty_ulps, **params)

    def tune(self, source: str, args: Optional[List[Any]] = None,
             inputs: Optional[Dict[str, Any]] = None,
             budget: Optional[Dict[str, Any]] = None,
             seed: int = 0,
             config: Any = None, k: int = 16,
             entry: Optional[str] = None,
             uncertainty_ulps: float = 1.0,
             deadline_s: Optional[float] = None,
             trace_id: Optional[str] = None,
             **params: Any) -> Dict[str, Any]:
        """One autotuning sweep: candidate space around ``config``, scored
        by (width, float ops, wall), winner persisted server-side so later
        compiles of the same program transparently serve it.

        ``budget`` is a :class:`repro.tune.TuneBudget` dict; the request
        deadline is folded into its ``seconds`` server-side, so a slow
        sweep reports what it measured instead of timing out.
        """
        if config is not None:
            params["config"] = config
        return self.request(
            "tune", deadline_s=deadline_s, trace_id=trace_id,
            source=source, k=k, entry=entry,
            args=list(args or []), inputs=dict(inputs or {}),
            budget=dict(budget or {}), seed=seed,
            uncertainty_ulps=uncertainty_ulps, **params)

    def analyze(self, source: str, query: str, box: Dict[str, Any],
                eps: Optional[float] = None,
                fixed: Optional[Dict[str, Any]] = None,
                budget: Optional[Dict[str, Any]] = None,
                seed_point: Optional[Dict[str, float]] = None,
                config: Any = None, k: int = 16,
                entry: Optional[str] = None,
                pad_ulps: float = 1.0,
                deadline_s: Optional[float] = None,
                trace_id: Optional[str] = None,
                **params: Any) -> Dict[str, Any]:
        """One domain analysis query (``max_error`` / ``safe_box`` /
        ``unsafe_regions``) over an input box.

        ``box`` maps ranged parameters to ``[lo, hi]``, ``fixed`` pins
        the rest, ``budget`` is a :class:`repro.domain.RefinementBudget`
        dict.  The request deadline is folded into the budget server-side,
        so a slow query returns partial bounds instead of timing out.
        """
        if config is not None:
            params["config"] = config
        if eps is not None:
            params["eps"] = eps
        if seed_point is not None:
            params["seed_point"] = dict(seed_point)
        return self.request(
            "analyze", deadline_s=deadline_s, trace_id=trace_id,
            source=source, k=k, entry=entry, query=query,
            box={n: list(r) for n, r in box.items()},
            fixed=dict(fixed or {}), budget=dict(budget or {}),
            pad_ulps=pad_ulps, **params)

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def health(self) -> Dict[str, Any]:
        return self.request("health")

    def drain(self) -> Dict[str, Any]:
        """Ask the server to finish accepted work and shut down."""
        return self.request("drain")

    def trace(self, trace_id: Optional[str] = None,
              limit: Optional[int] = None) -> Dict[str, Any]:
        """Fetch spans from the server's in-memory trace ring buffer.

        ``trace_id`` filters to one trace; ``limit`` keeps the newest N
        spans.  Returns ``{"spans": [...], "total": ..., "dropped": ...}``.
        """
        params: Dict[str, Any] = {}
        if trace_id is not None:
            params["filter_trace_id"] = trace_id
        if limit is not None:
            params["limit"] = limit
        return self.request("trace", **params)

    def metrics(self) -> str:
        """Fetch the Prometheus text exposition of the server's stats."""
        return self.request("metrics")["text"]

    def diag(self) -> Dict[str, Any]:
        """Fetch the width-provenance diagnostics profile.

        Against a daemon: that process's sampled attribution profile.
        Against a router: the fleet rollup under the same ``"width"`` key,
        plus per-shard snapshots under ``"shards"``.
        """
        return self.request("diag")

"""Request routing: cache hits run inline, everything else goes to the pool.

The dispatcher owns the server's :class:`~concurrent.futures.
ProcessPoolExecutor` (the same worker setup the batch engine uses: each
worker holds a process-local :class:`~repro.service.CompileService` pointed
at the shared cache directory) and decides, per request, which side of the
latency cliff it lands on:

* **inline** — the compile key is already warm (in-memory LRU or disk
  shard).  Rebuilding a program is one ``pickle.loads`` + ``exec``, and
  evaluating the paper kernels is sub-millisecond, so these run directly on
  the event loop: no pool round-trip, no pickling the request twice.  This
  is what makes hot-cache throughput scale with the event loop instead of
  the pool.
* **pool** — a cold compile (or compile+evaluate) runs on a worker process
  with a per-request deadline enforced by ``asyncio.wait_for``.  The worker
  ships back, alongside the result, its stats delta and the freshly minted
  cache entry, which the dispatcher adopts into the parent's in-memory
  cache — so a cold key becomes inline-served for every later request even
  when no shared cache directory is configured.

A worker running past its deadline cannot be preempted through
``concurrent.futures``; the future is cancelled best-effort (which works
while it is still queued) and otherwise the worker finishes into a dropped
future while the client already holds a ``deadline_exceeded`` reply.  The
``pool_abandoned`` counter makes that visible.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..errors import DomainError, ReproError
from ..obs.trace import current_tracer, use_tracer
from ..service import engine as _engine
from ..service.jobs import execute_job, job_from_dict
from ..service.service import CompileService
from ..service.stats import ServiceStats
from .config import ServerConfig
from .protocol import (
    E_BAD_REQUEST,
    E_COMPILE,
    E_DEADLINE,
    ProtocolError,
    Request,
)

__all__ = ["Dispatcher", "PreparedRequest"]


class _Bucket:
    """One pending micro-batch: rows and their waiting futures."""

    __slots__ = ("payload", "rows", "waiters", "timer")

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.payload = payload       # the first request's run payload
        self.rows: list = []
        self.waiters: list = []
        self.timer = None


class _MicroBatcher:
    """Coalesces hot-path ``run`` requests into batched executions.

    Single-shot runs against the same warm (key, uncertainty) bucket that
    arrive within ``batch_window_s`` of each other are held and executed
    as one ``run_batch`` job on the event loop; each waiter gets back a
    run-style reply for its own row.  Soundness is untouched: the batched
    runtime's per-row enclosures are bit-identical to the scalar path.
    """

    def __init__(self, service: CompileService, config: ServerConfig) -> None:
        self.service = service
        self.config = config
        self._buckets: Dict[Tuple[str, float], _Bucket] = {}
        self.flushes = 0
        self.coalesced_rows = 0
        self.max_coalesced = 0

    async def submit(self, prepared: "PreparedRequest") -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        key = (prepared.key,
               float(prepared.payload.get("uncertainty_ulps", 1.0)))
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = _Bucket(prepared.payload)
            bucket.timer = loop.call_later(self.config.batch_window_s,
                                           self._flush, key)
        fut = loop.create_future()
        bucket.rows.append(list(prepared.payload.get("args", [])))
        bucket.waiters.append(fut)
        if len(bucket.rows) >= self.config.batch_max_rows:
            self._flush(key)
        return await fut

    def stop(self) -> None:
        """Flush every pending bucket (no admitted row is ever dropped)."""
        for key in list(self._buckets):
            self._flush(key)

    def _flush(self, key: Tuple[str, float]) -> None:
        bucket = self._buckets.pop(key, None)
        if bucket is None:
            return
        if bucket.timer is not None:
            bucket.timer.cancel()
        template = bucket.payload
        payload = {
            "kind": "run_batch",
            "source": template["source"],
            "config": template["config"],
            "entry": template["entry"],
            "rows": bucket.rows,
            "uncertainty_ulps": key[1],
            "tag": {},
        }
        n = len(bucket.rows)
        self.flushes += 1
        self.coalesced_rows += n
        self.max_coalesced = max(self.max_coalesced, n)
        try:
            value = execute_job(payload, self.service)
        except ReproError as exc:
            err = ProtocolError(E_COMPILE, str(exc))
            for fut in bucket.waiters:
                if not fut.done():
                    fut.set_exception(err)
            return
        except Exception as exc:  # pragma: no cover - defensive
            for fut in bucket.waiters:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for row, fut in zip(value["rows"], bucket.waiters):
            if fut.done():
                continue  # waiter already timed out
            if not row.get("ok"):
                fut.set_exception(ProtocolError(
                    E_COMPILE, row.get("error") or "row failed"))
                continue
            out: Dict[str, Any] = {
                "entry": value["entry"],
                "config": value["config"],
                "k": value["k"],
                "compile_s": value["compile_s"],
                "batched": True,
                "coalesced_rows": n,
            }
            for field in ("interval", "value", "outputs"):
                if field in row:
                    out[field] = row[field]
            fut.set_result(out)


def _server_pool_execute(payload: dict
                         ) -> Tuple[dict, float, ServiceStats, Any, list]:
    """Worker-side execution: the engine's job runner plus the cache entry
    the job produced (so the parent can warm its own in-memory cache) and
    the worker's recorded spans (so they merge into the request's trace)."""
    service = _engine._WORKER_SERVICE
    tracer = _engine.worker_tracer(payload)
    before = service.stats.snapshot()
    t0 = time.perf_counter()
    if tracer is not None:
        with use_tracer(tracer):
            value = execute_job(payload, service)
    else:
        value = execute_job(payload, service)
    elapsed = time.perf_counter() - t0
    service.stats.observe_latency(f"job:{payload['kind']}", elapsed)
    delta = ServiceStats.delta(before, service.stats)
    from ..compiler.config import CompilerConfig

    cfg = CompilerConfig.from_dict(payload["config"])
    key = cfg.cache_key(payload["source"], entry=payload["entry"])
    # Raw dict access: a plain .get() would inflate the hit counters with
    # bookkeeping lookups that no request made.
    entry = service.cache._mem.get(key)
    spans = tracer.to_dicts() if tracer is not None else []
    return value, elapsed, delta, entry, spans


@dataclass
class PreparedRequest:
    """A validated work request, ready to execute."""

    request: Request
    payload: Dict[str, Any]
    key: str
    route: str          # "inline" | "pool"


class Dispatcher:
    """Routes prepared requests; see the module docstring."""

    def __init__(self, service: CompileService,
                 config: ServerConfig) -> None:
        self.service = service
        self.config = config
        self._pool: Optional[ProcessPoolExecutor] = None
        self.batcher = _MicroBatcher(service, config)
        self.pool_submits = 0
        self.inline_served = 0
        self.pool_abandoned = 0

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        # The workers must use the *spawn* context: a forked worker
        # inherits every open fd, including the daemon's listening
        # socket once it is bound — an orphaned worker would then keep
        # the dead daemon's port accepting connections forever, hanging
        # routers and clients that should see connection-refused.
        # (Forking a threaded asyncio process is also unsafe per se.)
        self._pool = ProcessPoolExecutor(
            max_workers=self.config.pool_workers,
            mp_context=multiprocessing.get_context("spawn"),
            initializer=_engine._pool_init,
            initargs=(self.config.cache_dir, self.config.cache_maxsize),
        )

    def stop(self) -> None:
        self.batcher.stop()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # -- request preparation ---------------------------------------------------------

    def prepare(self, request: Request) -> PreparedRequest:
        """Validate params, build the job payload, and pick a route.

        Raises :class:`ProtocolError` (``bad_request``) on invalid
        parameters.  Routing is a point-in-time decision: a key warm at
        admission time is executed inline; the (rare) race where it gets
        evicted before execution degrades to an inline compile, never to a
        wrong answer.
        """
        params = dict(request.params)
        if "file" in params:
            raise ProtocolError(E_BAD_REQUEST,
                                "server requests must inline 'source'; "
                                "'file' is client-side only")
        params["kind"] = request.op
        try:
            job = job_from_dict(params)
            payload = job.to_payload()
            cfg = job.resolved_config()
            key = cfg.cache_key(job.source, entry=job.entry)
        except ProtocolError:
            raise
        except (ReproError, TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(E_BAD_REQUEST, f"invalid request: {exc}")
        if request.op in ("compile", "run", "run_batch") \
                and payload.get("resolve_tuned", True):
            # Tuned-config resolution happens here, once, at the routing
            # layer: the key must name the artifact that will actually be
            # served, or inline routing and worker cache adoption would
            # disagree with what compile_entry resolves to.
            resolved = self.service.resolve_config(job.source, cfg,
                                                   entry=job.entry)
            if resolved is not cfg:
                cfg = resolved
                payload["config"] = cfg.to_dict()
                payload["resolve_tuned"] = False
                key = cfg.cache_key(job.source, entry=job.entry)
        route = "inline" if key in self.service.cache else "pool"
        if request.op == "analyze":
            # Always cold-class: a query runs many refinement waves even
            # when its compile is cached, far too long for the event loop.
            # The "analyze" admission class caps concurrent searches.
            route = "analyze"
        if request.op == "tune":
            # A sweep compiles+runs a whole candidate space: always the
            # pool, in its own small admission class.
            route = "tune"
        if (route == "inline"
                and request.op == "run"
                and self.config.batch_window_s > 0
                and payload.get("repeats", 1) == 1
                and not payload.get("inputs")):
            from ..batchrt import batchable_config

            if batchable_config(cfg):
                route = "batch"
        return PreparedRequest(request=request, payload=payload, key=key,
                               route=route)

    # -- execution -------------------------------------------------------------------

    async def execute(self, prepared: PreparedRequest,
                      timeout_s: Optional[float]) -> Dict[str, Any]:
        """Run one prepared request; returns the JSON-safe result dict.

        Raises :class:`ProtocolError` with ``deadline_exceeded`` or
        ``compile_error``; anything else bubbles up as an internal error.
        """
        if timeout_s is not None and timeout_s <= 0:
            raise ProtocolError(E_DEADLINE, "deadline passed while queued")
        if prepared.route == "inline":
            return self._execute_inline(prepared)
        if prepared.route == "batch":
            return await self._execute_batch(prepared, timeout_s)
        if prepared.route == "analyze" and timeout_s is not None:
            # Fold the request deadline into the refinement budget (with
            # headroom for compile + result shipping) so the driver returns
            # its partial bounds instead of being killed by wait_for.
            budget = dict(prepared.payload.get("budget") or {})
            slack = timeout_s * 0.9
            budget["deadline_s"] = min(budget.get("deadline_s") or slack,
                                       slack)
            prepared.payload["budget"] = budget
        if prepared.route == "tune" and timeout_s is not None:
            # Same folding for a sweep: its wave loop checks the seconds
            # budget, so it reports a (smaller) sweep instead of dying.
            budget = dict(prepared.payload.get("budget") or {})
            slack = timeout_s * 0.9
            budget["seconds"] = min(budget.get("seconds") or slack, slack)
            prepared.payload["budget"] = budget
        return await self._execute_pool(prepared, timeout_s)

    def _execute_inline(self, prepared: PreparedRequest) -> Dict[str, Any]:
        self.inline_served += 1
        tracer = current_tracer()
        try:
            with tracer.span("dispatch:inline") as sp:
                value = execute_job(prepared.payload, self.service)
        except DomainError as exc:
            raise ProtocolError(E_BAD_REQUEST, str(exc))
        except ReproError as exc:
            raise ProtocolError(E_COMPILE, str(exc))
        sp.set(key=prepared.key[:16])
        return self._shape(prepared, value)

    async def _execute_batch(self, prepared: PreparedRequest,
                             timeout_s: Optional[float]) -> Dict[str, Any]:
        fut = asyncio.ensure_future(self.batcher.submit(prepared))
        try:
            out = await asyncio.wait_for(fut, timeout=timeout_s)
        except asyncio.TimeoutError:
            raise ProtocolError(E_DEADLINE,
                                f"not completed within {timeout_s:.3f}s")
        out["route"] = prepared.route
        out["cached"] = True
        return out

    async def _execute_pool(self, prepared: PreparedRequest,
                            timeout_s: Optional[float]) -> Dict[str, Any]:
        assert self._pool is not None, "dispatcher not started"
        self.pool_submits += 1
        loop = asyncio.get_running_loop()
        tracer = current_tracer()
        with tracer.span("dispatch:pool") as sp:
            payload = prepared.payload
            if tracer.enabled:
                payload = _engine.traced_payload(payload, tracer)
            future = loop.run_in_executor(self._pool, _server_pool_execute,
                                          payload)
            try:
                value, _elapsed, delta, entry, spans = await asyncio.wait_for(
                    future, timeout=timeout_s)
            except asyncio.TimeoutError:
                self.pool_abandoned += 1
                raise ProtocolError(
                    E_DEADLINE,
                    f"not completed within {timeout_s:.3f}s")
            except DomainError as exc:
                raise ProtocolError(E_BAD_REQUEST, str(exc))
            except ReproError as exc:
                raise ProtocolError(E_COMPILE, str(exc))
            self.service.stats.merge(delta)
            tracer.adopt(spans)
            if entry is not None:
                # Warm only the in-memory level: the worker already wrote
                # the shared disk shard when a cache_dir is configured.
                self.service.cache._mem_put(prepared.key, entry)
        sp.set(key=prepared.key[:16])
        return self._shape(prepared, value)

    # -- result shaping --------------------------------------------------------------

    def _shape(self, prepared: PreparedRequest,
               value: Dict[str, Any]) -> Dict[str, Any]:
        """JSON-safe reply body: drop process-internal payloads."""
        out = {k: v for k, v in value.items() if k != "unit_blob"}
        pipeline = out.get("pipeline")
        if pipeline is not None and hasattr(pipeline, "to_dict"):
            out["pipeline"] = pipeline.to_dict()
        out["route"] = prepared.route
        out["cached"] = prepared.route == "inline"
        return out

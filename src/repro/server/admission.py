"""Admission control: bounded queue + per-class concurrency limits.

Every work request must win a :class:`Ticket` before it may execute.
Admission is a synchronous decision on the event loop: if the number of
admitted-but-unfinished requests has reached ``max_queue``, the request is
rejected immediately (the server turns that into an ``overloaded`` reply)
— nothing is buffered, so a flood costs the server one reply per frame,
not memory.  An admitted request then waits (this wait *is* the bounded
queue) on its class semaphore — ``inline`` for cache hits executed on the
loop, ``pool`` for work dispatched to worker processes — so one class
cannot starve the other's concurrency budget.

Everything here runs on the event-loop thread; no locks are needed.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional

__all__ = ["AdmissionController", "Ticket"]


class Ticket:
    """Permission to run one request; must be released exactly once."""

    __slots__ = ("_controller", "cls", "_acquired", "_released")

    def __init__(self, controller: "AdmissionController", cls: str) -> None:
        self._controller = controller
        self.cls = cls
        self._acquired = False
        self._released = False

    async def acquire(self) -> None:
        """Wait for a concurrency slot in this ticket's class."""
        await self._controller._sems[self.cls].acquire()
        self._acquired = True
        self._controller._running[self.cls] += 1

    def release(self) -> None:
        if self._released:
            return
        self._released = True
        if self._acquired:
            self._controller._sems[self.cls].release()
            self._controller._running[self.cls] -= 1
        self._controller._admitted -= 1


class AdmissionController:
    """Tracks admitted requests against a global bound and class limits."""

    def __init__(self, max_queue: int, limits: Dict[str, int]) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = max_queue
        self.limits = dict(limits)
        self._sems = {cls: asyncio.Semaphore(n) for cls, n in limits.items()}
        self._running = {cls: 0 for cls in limits}
        self._admitted = 0
        self.admitted_total = 0
        self.rejected_total = 0

    def try_admit(self, cls: str) -> Optional[Ticket]:
        """Admit a request of class ``cls``, or return ``None`` when full."""
        if cls not in self._sems:
            raise KeyError(f"unknown admission class {cls!r}")
        if self._admitted >= self.max_queue:
            self.rejected_total += 1
            return None
        self._admitted += 1
        self.admitted_total += 1
        return Ticket(self, cls)

    @property
    def admitted(self) -> int:
        """Requests admitted and not yet finished (queued + running)."""
        return self._admitted

    @property
    def queued(self) -> int:
        return self._admitted - sum(self._running.values())

    def snapshot(self) -> Dict[str, object]:
        return {
            "admitted": self._admitted,
            "queued": self.queued,
            "running": dict(self._running),
            "max_queue": self.max_queue,
            "limits": dict(self.limits),
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
        }

"""Metrics for the compilation service layer.

One :class:`ServiceStats` object is shared by the cache and the batch engine
that sit inside a :class:`repro.service.CompileService`, so a single dump
answers both "how well is the cache doing" and "what happened to my jobs".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

__all__ = ["ServiceStats"]


@dataclass
class ServiceStats:
    """Counters exposed by the service layer.

    Cache side: ``hits`` / ``misses`` / ``evictions`` count lookups against
    the in-memory LRU; ``disk_hits`` is the subset of hits satisfied by the
    on-disk store; ``compile_s_saved`` accumulates the original compile time
    of every entry served from cache (an estimate of wall-clock avoided).

    Engine side: ``jobs_run`` / ``jobs_failed`` / ``jobs_timed_out`` /
    ``jobs_retried`` count batch-job outcomes.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    compile_s_saved: float = 0.0
    jobs_run: int = 0
    jobs_failed: int = 0
    jobs_timed_out: int = 0
    jobs_retried: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["hit_rate"] = round(self.hit_rate, 4)
        out["compile_s_saved"] = round(self.compile_s_saved, 6)
        return out

    def merge(self, other: "ServiceStats") -> None:
        """Fold another stats object (e.g. from a worker process) into this
        one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def dump_json(self, path: Optional[str] = None) -> str:
        """Serialize the counters as JSON; also write to ``path`` if given."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    def __str__(self) -> str:
        return (
            f"cache {self.hits}/{self.lookups} hits "
            f"({self.disk_hits} from disk, {self.evictions} evicted, "
            f"{self.compile_s_saved:.3f}s compile saved); "
            f"jobs {self.jobs_run} ok / {self.jobs_failed} failed / "
            f"{self.jobs_timed_out} timed out / {self.jobs_retried} retried"
        )

"""Metrics for the compilation service layer.

One :class:`ServiceStats` object is shared by the cache and the batch engine
that sit inside a :class:`repro.service.CompileService`, so a single dump
answers both "how well is the cache doing" and "what happened to my jobs".
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional

__all__ = ["ServiceStats"]


@dataclass
class ServiceStats:
    """Counters exposed by the service layer.

    Cache side: ``hits`` / ``misses`` / ``evictions`` count lookups against
    the in-memory LRU; ``disk_hits`` is the subset of hits satisfied by the
    on-disk store; ``compile_s_saved`` accumulates the original compile time
    of every entry served from cache (an estimate of wall-clock avoided).

    Engine side: ``jobs_run`` / ``jobs_failed`` / ``jobs_timed_out`` /
    ``jobs_retried`` count batch-job outcomes.

    Pipeline side: ``pass_s`` accumulates wall seconds per compiler pass
    over every non-cached compilation this service performed.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    compile_s_saved: float = 0.0
    jobs_run: int = 0
    jobs_failed: int = 0
    jobs_timed_out: int = 0
    jobs_retried: int = 0
    pass_s: Dict[str, float] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record_pipeline(self, report) -> None:
        """Fold one compilation's :class:`PipelineReport` timings in."""
        if report is None:
            return
        for name, seconds in report.timings().items():
            self.pass_s[name] = self.pass_s.get(name, 0.0) + seconds

    def to_dict(self) -> Dict[str, Any]:
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["hit_rate"] = round(self.hit_rate, 4)
        out["compile_s_saved"] = round(self.compile_s_saved, 6)
        out["pass_s"] = {k: round(v, 6) for k, v in sorted(self.pass_s.items())}
        return out

    def snapshot(self) -> "ServiceStats":
        """An independent copy (safe to diff against later)."""
        return copy.deepcopy(self)

    def merge(self, other: "ServiceStats") -> None:
        """Fold another stats object (e.g. from a worker process) into this
        one."""
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, dict):
                for k, v in theirs.items():
                    mine[k] = mine.get(k, 0.0) + v
            else:
                setattr(self, f.name, mine + theirs)

    @classmethod
    def delta(cls, before: "ServiceStats",
              after: "ServiceStats") -> "ServiceStats":
        """Counter-wise ``after - before`` (worker-process accounting)."""
        out = cls()
        for f in fields(cls):
            b = getattr(before, f.name)
            a = getattr(after, f.name)
            if isinstance(a, dict):
                diff = {k: v - b.get(k, 0.0) for k, v in a.items()
                        if v != b.get(k, 0.0)}
                setattr(out, f.name, diff)
            else:
                setattr(out, f.name, a - b)
        return out

    def dump_json(self, path: Optional[str] = None) -> str:
        """Serialize the counters as JSON; also write to ``path`` if given."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    def __str__(self) -> str:
        return (
            f"cache {self.hits}/{self.lookups} hits "
            f"({self.disk_hits} from disk, {self.evictions} evicted, "
            f"{self.compile_s_saved:.3f}s compile saved); "
            f"jobs {self.jobs_run} ok / {self.jobs_failed} failed / "
            f"{self.jobs_timed_out} timed out / {self.jobs_retried} retried"
        )

"""Metrics for the compilation service layer.

One :class:`ServiceStats` object is shared by the cache, the batch engine
and (new) the sound-computation server that sit inside or above a
:class:`repro.service.CompileService`, so a single dump answers "how well
is the cache doing", "what happened to my jobs" and "how fast are requests
being served".

Concurrency: the server mutates these counters from the asyncio event loop
while worker-completion callbacks and client threads read/merge them, so
every mutation goes through :meth:`ServiceStats.add` /
:meth:`ServiceStats.observe_latency` / :meth:`ServiceStats.merge` under an
internal re-entrant lock, and :meth:`ServiceStats.snapshot` returns an
atomic copy.  The lock never crosses process boundaries: pickling drops it
and unpickling re-creates a fresh one.
"""

from __future__ import annotations

import copy
import json
import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LatencyHistogram", "ServiceStats"]


def _log_spaced_bounds(lo: float = 1e-6, hi: float = 1e2,
                       per_decade: int = 8) -> Tuple[float, ...]:
    if not (0.0 < lo < hi):
        raise ValueError("bounds require 0 < lo < hi")
    decades = max(1, round(math.log10(hi / lo)))
    n = decades * per_decade
    return tuple(lo * 10.0 ** (i / per_decade) for i in range(n + 1))


class LatencyHistogram:
    """Fixed log-spaced wall-clock histogram (no dependencies).

    Buckets are upper bounds in seconds, 8 per decade from 1 microsecond to
    100 seconds (65 bounds) plus one overflow bucket.  Percentiles are
    reported as the upper bound of the bucket containing the requested
    rank, so they over- rather than under-state latency — the conservative
    direction for a p99 claim.
    """

    BOUNDS: Tuple[float, ...] = _log_spaced_bounds()

    __slots__ = ("counts", "count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.counts: List[int] = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        seconds = max(0.0, float(seconds))
        self.counts[bisect_left(self.BOUNDS, seconds)] += 1
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the ``q``-quantile sample."""
        if not self.count:
            return None
        rank = max(1, int(q * self.count + 0.9999999))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return self.BOUNDS[i] if i < len(self.BOUNDS) else self.max_s
        return self.max_s

    @property
    def mean_s(self) -> Optional[float]:
        return self.total_s / self.count if self.count else None

    def merge(self, other: "LatencyHistogram") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def minus(self, before: "LatencyHistogram") -> "LatencyHistogram":
        """Bucket-wise ``self - before`` (worker-delta accounting).

        ``min_s``/``max_s`` cannot be un-merged, so the delta keeps the
        observed extremes of ``self`` — still sound as an envelope.
        """
        out = LatencyHistogram()
        out.counts = [a - b for a, b in zip(self.counts, before.counts)]
        out.count = self.count - before.count
        out.total_s = self.total_s - before.total_s
        if out.count > 0:
            out.min_s = self.min_s
            out.max_s = self.max_s
        return out

    def to_dict(self) -> Dict[str, Any]:
        # Deltas from minus() can be degenerate: count == 0 with nonzero
        # total_s (and quantile() returning None).  Every derived figure
        # is therefore guarded on its own availability, never on count
        # alone, and total_s survives even when no sample count did.
        out: Dict[str, Any] = {"count": self.count}
        if self.total_s:
            out["total_s"] = round(self.total_s, 6)
        if self.count:
            out["mean_s"] = round(self.total_s / self.count, 6)
            if math.isfinite(self.min_s):
                out["min_s"] = round(self.min_s, 6)
            out["max_s"] = round(self.max_s, 6)
            for label, q in (("p50_s", 0.50), ("p90_s", 0.90),
                             ("p99_s", 0.99)):
                value = self.quantile(q)
                if value is not None:
                    out[label] = round(value, 6)
            out["buckets"] = [
                [round(self.BOUNDS[i], 9) if i < len(self.BOUNDS) else None, c]
                for i, c in enumerate(self.counts) if c
            ]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram from its :meth:`to_dict` form — the inverse
        direction fleet aggregation needs: a router merges the ``stats``
        snapshots its shards serve as JSON.

        Bucket bounds arrive rounded, so each one is snapped to the nearest
        canonical bound (the log-spaced grid is ~33% apart — far coarser
        than the rounding error); ``None`` is the overflow bucket.
        """
        out = cls()
        out.count = int(data.get("count", 0))
        out.total_s = float(data.get("total_s", 0.0))
        if "min_s" in data:
            out.min_s = float(data["min_s"])
        if "max_s" in data:
            out.max_s = float(data["max_s"])
        for bound, count in data.get("buckets", []):
            if bound is None:
                out.counts[-1] += int(count)
                continue
            i = min(bisect_left(cls.BOUNDS, float(bound)),
                    len(cls.BOUNDS) - 1)
            if i > 0 and abs(cls.BOUNDS[i - 1] - bound) \
                    < abs(cls.BOUNDS[i] - bound):
                i -= 1
            out.counts[i] += int(count)
        return out

    def summary(self) -> str:
        if not self.count:
            if self.total_s:
                return f"n=0 total={self.total_s * 1e3:.3f}ms"
            return "n=0"
        p50 = self.quantile(0.5)
        p99 = self.quantile(0.99)
        if p50 is None or p99 is None:  # degenerate delta: counts drained
            return f"n={self.count} total={self.total_s * 1e3:.3f}ms"
        return (f"n={self.count} p50={p50 * 1e3:.3f}ms "
                f"p99={p99 * 1e3:.3f}ms "
                f"max={self.max_s * 1e3:.3f}ms")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LatencyHistogram({self.summary()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return (self.counts == other.counts
                and self.total_s == other.total_s)

    # __slots__ classes pickle via getstate/setstate.
    def __getstate__(self):
        return (self.counts, self.count, self.total_s, self.min_s, self.max_s)

    def __setstate__(self, state):
        (self.counts, self.count, self.total_s,
         self.min_s, self.max_s) = state


@dataclass
class ServiceStats:
    """Counters exposed by the service layer.

    Cache side: ``hits`` / ``misses`` / ``evictions`` count lookups against
    the in-memory LRU; ``disk_hits`` is the subset of hits satisfied by the
    on-disk store; ``cache_errors`` counts corrupt/unreadable entries that
    were demoted to misses; ``compile_s_saved`` accumulates the original
    compile time of every entry served from cache (an estimate of
    wall-clock avoided).

    Engine side: ``jobs_run`` / ``jobs_failed`` / ``jobs_timed_out`` /
    ``jobs_retried`` count batch-job outcomes.

    Pipeline side: ``pass_s`` accumulates wall seconds per compiler pass
    over every non-cached compilation this service performed.

    Latency side: ``latency`` maps a probe name (``job:run``,
    ``server:compile``, ...) to a :class:`LatencyHistogram` of per-request
    wall-clock seconds.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    disk_hits: int = 0
    cache_errors: int = 0
    compile_s_saved: float = 0.0
    jobs_run: int = 0
    jobs_failed: int = 0
    jobs_timed_out: int = 0
    jobs_retried: int = 0
    # differential-fuzzer campaign counters (repro.fuzz)
    fuzz_seeds: int = 0
    fuzz_violations: int = 0
    fuzz_campaign_s: float = 0.0
    # batched-execution counters (repro.batchrt)
    batch_rows: int = 0
    batch_cohort_splits: int = 0
    batch_scalar_fallbacks: int = 0
    # domain-analysis counters (repro.domain)
    analyze_queries: int = 0
    analyze_boxes: int = 0
    analyze_waves: int = 0
    analyze_samples: int = 0
    analyze_undecided: int = 0
    # autotuning counters (repro.tune)
    tune_runs: int = 0
    tune_candidates: int = 0
    tune_persisted: int = 0
    tune_resolved: int = 0
    tune_sweep_s: float = 0.0
    pass_s: Dict[str, float] = field(default_factory=dict)
    ops: Dict[str, float] = field(default_factory=dict)
    latency: Dict[str, LatencyHistogram] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Not a dataclass field: fields()-driven code (to_dict/merge/delta)
        # never sees it, and pickling drops it (see __getstate__).
        self._lock = threading.RLock()

    # -- concurrency-safe mutation ---------------------------------------------------

    def add(self, name: str, amount: float = 1) -> None:
        """Atomically increment a scalar counter by ``amount``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def observe_latency(self, name: str, seconds: float) -> None:
        """Atomically record one wall-clock sample under probe ``name``."""
        with self._lock:
            hist = self.latency.get(name)
            if hist is None:
                hist = self.latency[name] = LatencyHistogram()
            hist.observe(seconds)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record_pipeline(self, report) -> None:
        """Fold one compilation's :class:`PipelineReport` timings in."""
        if report is None:
            return
        with self._lock:
            for name, seconds in report.timings().items():
                self.pass_s[name] = self.pass_s.get(name, 0.0) + seconds

    def record_ops(self, profile) -> None:
        """Fold one run's operation counters in — an
        :class:`repro.obs.profile.OpProfile` or a flat ``name -> count``
        dict (as shipped back in a worker delta)."""
        items = profile.counter_items() \
            if hasattr(profile, "counter_items") else profile
        if not items:
            return
        with self._lock:
            for name, n in items.items():
                self.ops[name] = self.ops.get(name, 0) + n

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            out = {f.name: getattr(self, f.name) for f in fields(self)}
            out["hit_rate"] = round(self.hit_rate, 4)
            out["compile_s_saved"] = round(self.compile_s_saved, 6)
            out["pass_s"] = {k: round(v, 6)
                             for k, v in sorted(self.pass_s.items())}
            out["ops"] = dict(sorted(self.ops.items()))
            out["latency"] = {k: v.to_dict()
                              for k, v in sorted(self.latency.items())}
            return out

    def snapshot(self) -> "ServiceStats":
        """An atomic, independent copy (safe to diff against later)."""
        with self._lock:
            return copy.deepcopy(self)

    def merge(self, other: "ServiceStats") -> None:
        """Fold another stats object (e.g. from a worker process) into this
        one."""
        with self._lock:
            for f in fields(self):
                mine = getattr(self, f.name)
                theirs = getattr(other, f.name)
                if isinstance(mine, dict):
                    for k, v in theirs.items():
                        if isinstance(v, LatencyHistogram):
                            if k not in mine:
                                mine[k] = LatencyHistogram()
                            mine[k].merge(v)
                        else:
                            mine[k] = mine.get(k, 0.0) + v
                else:
                    setattr(self, f.name, mine + theirs)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ServiceStats":
        """Rebuild stats from a :meth:`to_dict` snapshot (e.g. one fetched
        over the wire from a shard's ``stats`` op), so snapshots from many
        processes can be :meth:`merge`-d into a fleet rollup.

        Unknown/derived keys (``hit_rate``, future fields) are ignored, so
        rollups stay possible across minor version skew in a fleet.
        """
        out = cls()
        for f in fields(cls):
            if f.name not in data:
                continue
            value = data[f.name]
            if f.name == "latency":
                out.latency = {k: LatencyHistogram.from_dict(v)
                               for k, v in value.items()}
            elif isinstance(getattr(out, f.name), dict):
                setattr(out, f.name, dict(value))
            else:
                setattr(out, f.name, value)
        return out

    @classmethod
    def merged(cls, snapshots: "List[Dict[str, Any]]") -> "ServiceStats":
        """Fold many :meth:`to_dict` snapshots into one rollup object."""
        out = cls()
        for snap in snapshots:
            out.merge(cls.from_dict(snap))
        return out

    @classmethod
    def delta(cls, before: "ServiceStats",
              after: "ServiceStats") -> "ServiceStats":
        """Counter-wise ``after - before`` (worker-process accounting)."""
        out = cls()
        for f in fields(cls):
            b = getattr(before, f.name)
            a = getattr(after, f.name)
            if isinstance(a, dict):
                diff: Dict[str, Any] = {}
                for k, v in a.items():
                    if isinstance(v, LatencyHistogram):
                        d = v.minus(b.get(k, LatencyHistogram()))
                        if d.count:
                            diff[k] = d
                    elif v != b.get(k, 0.0):
                        diff[k] = v - b.get(k, 0.0)
                setattr(out, f.name, diff)
            else:
                setattr(out, f.name, a - b)
        return out

    def latency_summary(self) -> str:
        """One line per probe: ``name: n=... p50=... p99=...``."""
        with self._lock:
            return "\n".join(f"lat {name:<16} {hist.summary()}"
                             for name, hist in sorted(self.latency.items()))

    def dump_json(self, path: Optional[str] = None) -> str:
        """Serialize the counters as JSON; also write to ``path`` if given."""
        text = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as fh:
                fh.write(text + "\n")
        return text

    # -- pickling (the lock stays process-local) -------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __deepcopy__(self, memo) -> "ServiceStats":
        out = self.__class__()
        for f in fields(self):
            setattr(out, f.name, copy.deepcopy(getattr(self, f.name), memo))
        return out

    def __str__(self) -> str:
        return (
            f"cache {self.hits}/{self.lookups} hits "
            f"({self.disk_hits} from disk, {self.evictions} evicted, "
            f"{self.cache_errors} corrupt, "
            f"{self.compile_s_saved:.3f}s compile saved); "
            f"jobs {self.jobs_run} ok / {self.jobs_failed} failed / "
            f"{self.jobs_timed_out} timed out / {self.jobs_retried} retried"
        )

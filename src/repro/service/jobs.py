"""Job descriptions for the batch engine, and how to execute one.

Jobs are deliberately plain data (strings, numbers, dicts) so they cross
process boundaries and JSON files unchanged:

* :class:`CompileJob` — compile C source under one configuration.
* :class:`RunJob` — compile and execute on concrete inputs, with repeats
  (this is the shape of one benchmark point).

``execute_job`` is the single implementation used by the serial path, by
every pool worker, and by the CLI ``batch`` subcommand, which is what keeps
parallel results identical to serial ones: the math is the same code either
way, only the scheduling differs.
"""

from __future__ import annotations

import math
import statistics
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from ..compiler.config import CompilerConfig
from ..obs.profile import OpProfile, count_rounding
from ..obs.trace import current_tracer

__all__ = ["AnalyzeJob", "CompileJob", "RunJob", "RunBatchJob", "TuneJob",
           "JobResult", "job_from_dict", "jobs_from_json", "execute_job"]


def normalize_config(config: Union[None, str, Dict[str, Any], CompilerConfig],
                     k: int = 16,
                     int_params: Optional[Dict[str, int]] = None
                     ) -> CompilerConfig:
    """Accept the config spellings users have (paper string, dict, object,
    None) and return a CompilerConfig."""
    overrides: Dict[str, Any] = {}
    if int_params:
        overrides["int_params"] = dict(int_params)
    if config is None:
        return CompilerConfig(k=k, **overrides)
    if isinstance(config, str):
        return CompilerConfig.from_string(config, k=k, **overrides)
    if isinstance(config, dict):
        merged = dict(config)
        merged.setdefault("k", k)
        if int_params:
            merged.setdefault("int_params", dict(int_params))
        return CompilerConfig.from_dict(merged)
    return config


@dataclass
class CompileJob:
    """Compile ``source`` under ``config``; yields the generated program."""

    source: str
    config: Union[None, str, Dict[str, Any], CompilerConfig] = None
    k: int = 16
    entry: Optional[str] = None
    int_params: Dict[str, int] = field(default_factory=dict)
    tag: Dict[str, Any] = field(default_factory=dict)

    kind = "compile"

    def resolved_config(self) -> CompilerConfig:
        return normalize_config(self.config, k=self.k,
                                int_params=self.int_params)

    def to_payload(self) -> Dict[str, Any]:
        """A picklable/JSON-safe dict that fully describes this job."""
        return {
            "kind": self.kind,
            "source": self.source,
            "config": self.resolved_config().to_dict(),
            "entry": self.entry,
            "tag": dict(self.tag),
        }


@dataclass
class RunJob(CompileJob):
    """Compile and execute: positional ``args`` then keyword ``inputs``."""

    args: List[Any] = field(default_factory=list)
    inputs: Dict[str, Any] = field(default_factory=dict)
    uncertainty_ulps: float = 1.0
    repeats: int = 1
    # Whether the compile may be substituted by a persisted tuned winner.
    # The tuner's own sweep jobs turn this off: a candidate measurement
    # must run the exact configuration it names.
    resolve_tuned: bool = True

    kind = "run"

    def to_payload(self) -> Dict[str, Any]:
        payload = super().to_payload()
        payload.update(
            args=list(self.args),
            inputs=dict(self.inputs),
            uncertainty_ulps=self.uncertainty_ulps,
            repeats=self.repeats,
            resolve_tuned=self.resolve_tuned,
        )
        return payload


@dataclass
class RunBatchJob(CompileJob):
    """Compile once and execute over many input boxes (one positional
    argument list per row) on the batched vectorized runtime."""

    rows: List[List[Any]] = field(default_factory=list)
    uncertainty_ulps: float = 1.0

    kind = "run_batch"

    def to_payload(self) -> Dict[str, Any]:
        payload = super().to_payload()
        payload.update(
            rows=[list(r) for r in self.rows],
            uncertainty_ulps=self.uncertainty_ulps,
        )
        return payload


@dataclass
class AnalyzeJob(CompileJob):
    """Compile once and answer a domain analysis query over an input box.

    ``box`` maps ranged double parameters to ``[lo, hi]``; ``fixed``
    pins the remaining parameters.  ``resolved_config`` applies the
    analysis profile (STRICT + vectorized, see
    :func:`repro.domain.analysis_config`) *before* the cache key is
    computed, so every layer — in-process, dispatcher, router — keys the
    query to the same compiled artifact: one compile per query, and
    shard affinity with the program's other traffic.
    """

    query: str = "max_error"
    box: Dict[str, Any] = field(default_factory=dict)
    eps: Optional[float] = None
    fixed: Dict[str, Any] = field(default_factory=dict)
    budget: Dict[str, Any] = field(default_factory=dict)
    seed_point: Optional[Dict[str, float]] = None
    pad_ulps: float = 1.0

    kind = "analyze"

    def resolved_config(self) -> CompilerConfig:
        from ..domain import analysis_config

        return analysis_config(super().resolved_config())

    def to_payload(self) -> Dict[str, Any]:
        payload = super().to_payload()
        payload.update(
            query=self.query,
            box={k: list(v) if isinstance(v, (list, tuple)) else v
                 for k, v in self.box.items()},
            eps=self.eps,
            fixed=dict(self.fixed),
            budget=dict(self.budget),
            seed_point=dict(self.seed_point)
            if self.seed_point is not None else None,
            pad_ulps=self.pad_ulps,
        )
        return payload


@dataclass
class TuneJob(CompileJob):
    """Autotune one program: sweep a seeded candidate space, score by
    Pareto dominance over (width, float-ops, wall time), persist the
    winner in the service's :class:`repro.tune.TunedConfigStore`.

    ``config`` is the *base* configuration the sweep radiates from (also
    the one whose future compiles get transparently resolved to the
    winner).  ``resolved_config`` keeps the base config, so the fleet
    router keys a tune request exactly like the program's compile/run
    traffic — the tune lands on the shard whose cache (and tuned store)
    already serves that program.
    """

    args: List[Any] = field(default_factory=list)
    inputs: Dict[str, Any] = field(default_factory=dict)
    uncertainty_ulps: float = 1.0
    budget: Dict[str, Any] = field(default_factory=dict)
    seed: int = 0

    kind = "tune"

    def to_payload(self) -> Dict[str, Any]:
        payload = super().to_payload()
        payload.update(
            args=list(self.args),
            inputs=dict(self.inputs),
            uncertainty_ulps=self.uncertainty_ulps,
            budget=dict(self.budget),
            seed=self.seed,
        )
        return payload


@dataclass
class JobResult:
    """Outcome of one job, in submission order (``index`` is the position in
    the submitted batch)."""

    index: int
    kind: str
    ok: bool
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    timed_out: bool = False
    elapsed_s: float = 0.0

    def to_row(self) -> Dict[str, Any]:
        """JSON-safe summary (drops bulky fields like the pickled unit)."""
        value = self.value
        if isinstance(value, dict):
            value = {k: v for k, v in value.items() if k != "unit_blob"}
            pipeline = value.get("pipeline")
            if pipeline is not None and hasattr(pipeline, "to_dict"):
                value["pipeline"] = pipeline.to_dict()
        return {
            "index": self.index,
            "kind": self.kind,
            "ok": self.ok,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
            "elapsed_s": round(self.elapsed_s, 6),
            "error": self.error,
            "value": value,
        }


# -- JSON manifests ------------------------------------------------------------------


def job_from_dict(data: Dict[str, Any], base_dir: str = ".") -> CompileJob:
    """Build a job from one manifest entry.

    The entry carries either inline ``source`` or a ``file`` path (resolved
    against the manifest's directory).  ``kind`` defaults to ``compile``.
    """
    import os

    data = dict(data)
    kind = data.pop("kind", "compile")
    if "file" in data:
        path = data.pop("file")
        if not os.path.isabs(path):
            path = os.path.join(base_dir, path)
        with open(path) as fh:
            data["source"] = fh.read()
    if "source" not in data:
        raise ValueError("job needs either 'source' or 'file'")
    cls = {"compile": CompileJob, "run": RunJob,
           "run_batch": RunBatchJob, "analyze": AnalyzeJob,
           "tune": TuneJob}.get(kind)
    if cls is None:
        raise ValueError(f"unknown job kind {kind!r}")
    allowed = {f for f in cls.__dataclass_fields__}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown {kind} job fields: {sorted(unknown)}")
    return cls(**data)


def jobs_from_json(path: str) -> List[CompileJob]:
    """Load a jobs manifest: either a bare list of job entries or
    ``{"defaults": {...}, "jobs": [...]}`` where defaults fill missing
    fields."""
    import json
    import os

    with open(path) as fh:
        doc = json.load(fh)
    base_dir = os.path.dirname(os.path.abspath(path))
    defaults: Dict[str, Any] = {}
    entries = doc
    if isinstance(doc, dict):
        defaults = doc.get("defaults", {})
        entries = doc.get("jobs", [])
    if not isinstance(entries, list):
        raise ValueError("jobs manifest must be a list or have a 'jobs' list")
    jobs = []
    for entry in entries:
        merged = dict(defaults)
        merged.update(entry)
        jobs.append(job_from_dict(merged, base_dir=base_dir))
    return jobs


# -- execution -----------------------------------------------------------------------


def execute_job(payload: Dict[str, Any], service) -> Dict[str, Any]:
    """Run one job payload against a :class:`CompileService`; returns the
    picklable result value."""
    if payload["kind"] == "fuzz":
        # One differential-fuzzing seed: generate, compile at every matrix
        # point through this service's cache, check the agreement lattice.
        from ..fuzz.campaign import execute_fuzz_payload

        return execute_fuzz_payload(payload, service)
    cfg = CompilerConfig.from_dict(payload["config"])
    if payload["kind"] == "compile":
        return _execute_compile(payload, cfg, service)
    if payload["kind"] == "run":
        return _execute_run(payload, cfg, service)
    if payload["kind"] == "run_batch":
        return _execute_run_batch(payload, cfg, service)
    if payload["kind"] == "analyze":
        return _execute_analyze(payload, cfg, service)
    if payload["kind"] == "tune":
        return _execute_tune(payload, cfg, service)
    raise ValueError(f"unknown job kind {payload['kind']!r}")


def _execute_compile(payload, cfg: CompilerConfig, service) -> Dict[str, Any]:
    t0 = time.perf_counter()
    prog, entry = service.compile_entry(payload["source"], cfg,
                                        entry=payload["entry"])
    compile_s = time.perf_counter() - t0
    cfg = prog.config  # the tuned winner, when resolution substituted one
    return {
        "entry": entry.entry,
        "config": cfg.name,
        "k": cfg.k,
        "cache_key": entry.key,
        "compile_s": compile_s,
        "c_source": entry.c_source,
        "python_source": entry.python_source,
        "priority_map": dict(entry.priority_map),
        "analysis": str(prog.analysis_report) if prog.analysis_report else None,
        "unit_blob": entry.unit_blob,
        "pipeline": getattr(entry, "pipeline", None),
        "tag": payload.get("tag", {}),
    }


def _execute_run(payload, cfg: CompilerConfig, service) -> Dict[str, Any]:
    # Mirrors repro.bench.runner.run_config: the first execution provides
    # both the accuracy and the first timing sample; the median over all
    # samples is the reported runtime.
    from ..bench.runner import result_accuracy  # lazy: bench imports service

    t0 = time.perf_counter()
    prog = service.compile(payload["source"], cfg, entry=payload["entry"],
                           resolve_tuned=payload.get("resolve_tuned", True))
    compile_s = time.perf_counter() - t0
    cfg = prog.config  # the tuned winner, when resolution substituted one

    args = payload.get("args", [])
    inputs = payload.get("inputs", {})
    ulps = payload.get("uncertainty_ulps", 1.0)
    repeats = max(int(payload.get("repeats", 1)), 1)
    diag = bool(payload.get("diag"))
    tracer = current_tracer()
    # The first execution is the profiled one (it also provides the
    # accuracy sample); directed-rounding counting is only switched on
    # for traced runs — it is the one profiling hook with per-op cost.
    # A diag-sampled request tracks provenance on that same execution:
    # the arithmetic is bit-identical, only origins are recorded aside.
    with tracer.span("job:run", entry=payload["entry"] or prog.entry,
                     config=cfg.name) as sp:
        if tracer.enabled:
            with count_rounding() as rounding:
                res = prog(*args, uncertainty_ulps=ulps,
                           track_provenance=diag, **inputs)
        else:
            rounding = None
            res = prog(*args, uncertainty_ulps=ulps,
                       track_provenance=diag, **inputs)
    profile = OpProfile.capture(res.runtime, rounding=rounding)
    service.stats.record_ops(profile)
    if sp.recording:
        sp.set(op_profile=profile.to_dict())
        _attach_explain(sp, res.value, tracer.explain_top)
    acc = max(0.0, result_accuracy(res)) if cfg.mode != "float" \
        else float("nan")
    times = [res.elapsed_s]
    for _ in range(repeats - 1):
        times.append(prog(*args, uncertainty_ulps=ulps, **inputs).elapsed_s)

    value: Dict[str, Any] = {
        "op_profile": profile.to_dict(),
        "entry": prog.entry,
        "config": cfg.name,
        "k": cfg.k,
        "acc_bits": acc if not math.isnan(acc) else None,
        "runtime_s": statistics.median(times),
        "compile_s": compile_s,
        "times": times,
        "analysis": str(prog.analysis_report) if prog.analysis_report else None,
        "pass_s": prog.pipeline_report.timings()
        if prog.pipeline_report is not None else None,
        "tag": payload.get("tag", {}),
    }
    if res.value is not None and hasattr(res.value, "interval"):
        iv = res.value.interval()
        value["interval"] = [iv.lo, iv.hi]
    elif isinstance(res.value, (int, float)):
        value["value"] = res.value
    if diag:
        width = _width_section(res)
        if width is not None:
            value["width"] = width
    return value


def _width_section(res) -> Optional[Dict[str, Any]]:
    """The ``width`` block of a diag-sampled run result: origin -> share
    attribution of the returned enclosure, plus the run's condensation-loss
    books.  ``None`` when the result carries no affine form (float/interval
    modes, integer returns)."""
    out: Dict[str, Any] = {}
    value = res.value
    if value is not None and (hasattr(value, "coefficients")
                              or hasattr(value, "terms")):
        from ..aa.explain import explain
        from ..obs.diag import shares_by_origin

        try:
            ex = explain(value)
        except (TypeError, AttributeError):
            ex = None
        if ex is not None:
            out["shares"] = shares_by_origin(ex)
            out["radius"] = ex.radius
    factory = getattr(getattr(res.runtime, "ctx", None), "symbols", None)
    if factory is not None and getattr(factory, "n_absorptions", 0):
        out["absorbed"] = dict(factory.absorbed)
        out["absorbed_at"] = dict(factory.absorbed_at)
        out["n_absorptions"] = factory.n_absorptions
    return out or None


def _execute_run_batch(payload, cfg: CompilerConfig, service
                       ) -> Dict[str, Any]:
    t0 = time.perf_counter()
    prog = service.compile(payload["source"], cfg, entry=payload["entry"])
    compile_s = time.perf_counter() - t0
    cfg = prog.config  # the tuned winner, when resolution substituted one

    rows = payload.get("rows", [])
    ulps = payload.get("uncertainty_ulps", 1.0)
    diag = bool(payload.get("diag"))
    with current_tracer().span("job:run_batch",
                               entry=payload["entry"] or prog.entry,
                               config=cfg.name, rows=len(rows)):
        res = prog.run_batch(rows, uncertainty_ulps=ulps,
                             track_provenance=diag)
    st = res.stats
    service.stats.add("batch_rows", st.rows)
    service.stats.add("batch_cohort_splits", st.cohort_splits)
    service.stats.add("batch_scalar_fallbacks", st.scalar_fallbacks)
    service.stats.observe_latency("job:run_batch", st.elapsed_s)
    value = {
        "entry": prog.entry,
        "config": cfg.name,
        "k": cfg.k,
        "compile_s": compile_s,
        "rows": [r.to_dict() for r in res.rows],
        "batch_stats": st.to_dict(),
        "tag": payload.get("tag", {}),
    }
    if diag:
        # The attribution travels in a side section the daemon folds into
        # its profile and pops — row dicts stay wire-identical to an
        # unsampled reply.
        for row in value["rows"]:
            row.pop("width_shares", None)
            row.pop("width_radius", None)
        samples = [{"shares": r.width_shares, "radius": r.width_radius}
                   for r in res.rows if r.width_shares]
        if samples:
            value["width"] = {"rows": samples}
    return value


def _execute_analyze(payload, cfg: CompilerConfig, service) -> Dict[str, Any]:
    """One domain analysis query: compile once (through the cache), build
    the BnB driver, run the requested query."""
    from ..domain import BnBDriver, RefinementBudget, box_for_program
    from ..errors import DomainError

    t0 = time.perf_counter()
    # No tuned-config substitution here: the analysis profile pins the
    # exact configuration every layer keyed this query by.
    prog = service.compile(payload["source"], cfg, entry=payload["entry"],
                           resolve_tuned=False)
    compile_s = time.perf_counter() - t0

    query = payload.get("query", "max_error")
    box = box_for_program(prog, payload.get("box", {}))
    budget = RefinementBudget.from_dict(payload.get("budget", {}))
    driver = BnBDriver(prog, box,
                       fixed=payload.get("fixed") or {},
                       budget=budget,
                       pad_ulps=payload.get("pad_ulps", 1.0))
    eps = payload.get("eps")
    with current_tracer().span("job:analyze",
                               entry=payload["entry"] or prog.entry,
                               config=cfg.name, query=query) as sp:
        if query == "max_error":
            result = driver.max_error()
        elif query == "safe_box":
            if eps is None:
                raise DomainError("safe_box requires eps")
            result = driver.safe_box(eps, seed=payload.get("seed_point"))
        elif query == "unsafe_regions":
            if eps is None:
                raise DomainError("unsafe_regions requires eps")
            result = driver.unsafe_regions(eps)
        else:
            raise DomainError(f"unknown analyze query {query!r}")
        if sp.recording:
            st = result.stats
            sp.set(boxes=st.boxes, waves=st.waves, undecided=st.undecided)
    st = result.stats
    service.stats.add("analyze_queries", 1)
    service.stats.add("analyze_boxes", st.boxes)
    service.stats.add("analyze_waves", st.waves)
    service.stats.add("analyze_samples", st.samples)
    service.stats.add("analyze_undecided", st.undecided)
    service.stats.observe_latency("job:analyze", st.elapsed_s)
    return {
        "entry": prog.entry,
        "config": cfg.name,
        "k": cfg.k,
        "compile_s": compile_s,
        "query": query,
        "result": result.to_dict(),
        "tag": payload.get("tag", {}),
    }


def _execute_tune(payload, cfg: CompilerConfig, service) -> Dict[str, Any]:
    """One autotuning request: sweep → diagnose → persist, against this
    service's cache and tuned store."""
    from ..tune import TuneBudget, Tuner

    budget = TuneBudget.from_dict(payload.get("budget", {}))
    tuner = Tuner(service)
    t0 = time.perf_counter()
    result = tuner.tune(
        payload["source"], cfg,
        entry=payload["entry"],
        args=payload.get("args", []),
        inputs=payload.get("inputs", {}),
        uncertainty_ulps=payload.get("uncertainty_ulps", 1.0),
        budget=budget,
        seed=int(payload.get("seed", 0)),
    )
    service.stats.observe_latency("job:tune", time.perf_counter() - t0)
    return {
        "entry": payload["entry"] or result.entry,
        "config": cfg.name,
        "k": cfg.k,
        "result": result.to_dict(),
        "tag": payload.get("tag", {}),
    }


def _attach_explain(sp, value, top_k: int) -> None:
    """Width-provenance sampling: put the top-k ``aa.explain`` shares of
    the result on the run span, so a wide enclosure is attributable from
    the trace alone."""
    if not top_k or value is None:
        return
    if not (hasattr(value, "coefficients") or hasattr(value, "terms")):
        return
    try:
        from ..aa.explain import explain

        ex = explain(value)
    except (TypeError, AttributeError):
        return
    sp.set(explain={
        "radius": ex.radius,
        "n_symbols": ex.n_symbols,
        "top": [{"symbol": s.symbol_id,
                 "coefficient": s.coefficient,
                 "share": round(s.share, 4),
                 "provenance": s.provenance}
                for s in ex.top(top_k)],
    })

"""The compile service: SafeGen behind a content-addressed cache.

``CompileService.compile`` has the same signature spirit as
:func:`repro.compiler.compile_c` but consults the cache first; a hit skips
the whole parse→typecheck→TAC→ILP→codegen pipeline and rebuilds the runnable
program from the stored artifacts (pickled TAC unit + generated Python),
which is ~1000x cheaper than compiling.  ``ServiceStats`` records what the
cache did and what the batch engine ran.
"""

from __future__ import annotations

import pickle
import time
from typing import Any, Dict, List, Optional, Tuple, Union

from ..compiler.config import CompilerConfig
from ..compiler.driver import CompiledProgram, SafeGen
from ..obs.trace import current_tracer
from .cache import CacheEntry, CompileCache
from .jobs import CompileJob, JobResult, normalize_config
from .stats import ServiceStats

__all__ = ["CompileService"]


class CompileService:
    """A reusable compilation front-end with caching and batching.

    ``cache_dir=None`` keeps the cache purely in memory; pointing it at a
    directory makes compilations persistent across processes (the batch
    engine's workers share it the same way).
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 maxsize: int = 128,
                 cache: Optional[CompileCache] = None,
                 stats: Optional[ServiceStats] = None,
                 tuned: Optional[Any] = None) -> None:
        self.stats = stats if stats is not None else ServiceStats()
        self.cache = cache if cache is not None else CompileCache(
            maxsize=maxsize, cache_dir=cache_dir, stats=self.stats)
        if tuned is None and cache_dir is not None:
            # The tuned-config store rides in the cache directory, so every
            # process sharing the compile cache (pool workers, shard
            # daemons) transparently serves the same tuned winners.
            import os

            from ..tune.store import TunedConfigStore  # lazy: tune imports us

            tuned = TunedConfigStore(os.path.join(cache_dir, "tuned"))
        self.tuned = tuned

    # -- tuned-config resolution -------------------------------------------------------

    def resolve_config(self, source: str, cfg: CompilerConfig,
                       entry: Optional[str] = None) -> CompilerConfig:
        """Substitute the tuned winner for ``cfg`` when one is on record.

        A winner only applies when the *requested* config matches the base
        config the tuner swept from (ignoring ``source_name``, which names
        the file, not the configuration) — an explicit non-default request
        is always honored as asked.  Returns ``cfg`` unchanged otherwise.
        """
        if self.tuned is None:
            return cfg
        record = self.tuned.get(CompilerConfig.source_key(source, entry=entry))
        if record is None:
            return cfg
        asked = cfg.to_dict()
        base = dict(record.base_config)
        asked.pop("source_name", None)
        base.pop("source_name", None)
        if asked != base or record.config == record.base_config:
            return cfg
        from dataclasses import replace

        winner = CompilerConfig.from_dict(record.config)
        resolved = replace(winner, source_name=cfg.source_name)
        self.stats.add("tune_resolved")
        return resolved

    # -- single compilations ---------------------------------------------------------

    def compile(self, source: str,
                config: Union[None, str, Dict[str, Any], CompilerConfig] = None,
                k: int = 16, entry: Optional[str] = None,
                emit_after: Optional[Tuple[str, ...]] = None,
                resolve_tuned: bool = True,
                **overrides) -> CompiledProgram:
        """Cached equivalent of :func:`repro.compiler.compile_c`."""
        prog, _ = self.compile_entry(source, config, k=k, entry=entry,
                                     emit_after=emit_after,
                                     resolve_tuned=resolve_tuned, **overrides)
        return prog

    def compile_entry(self, source: str,
                      config: Union[None, str, Dict[str, Any],
                                    CompilerConfig] = None,
                      k: int = 16, entry: Optional[str] = None,
                      emit_after: Optional[Tuple[str, ...]] = None,
                      resolve_tuned: bool = True,
                      **overrides) -> Tuple[CompiledProgram, CacheEntry]:
        """Compile (or fetch) and also return the underlying cache entry.

        ``emit_after`` requests intermediate dumps; a cached entry missing a
        requested dump is recompiled and the entry updated in place, so the
        dumps round-trip through the cache on later lookups.

        ``resolve_tuned=True`` (the default) first consults the
        :class:`repro.tune.TunedConfigStore` and silently serves the tuned
        winner when the requested config is the one the tuner swept from;
        the tuner itself passes ``False`` so sweeps measure what they ask.
        """
        cfg = normalize_config(config, k=k)
        if overrides:
            from dataclasses import replace

            cfg = replace(cfg, **overrides)
        if resolve_tuned:
            cfg = self.resolve_config(source, cfg, entry=entry)
        wanted = tuple(emit_after) if emit_after else ()
        key = cfg.cache_key(source, entry=entry)
        tracer = current_tracer()
        with tracer.span("service:compile", config=cfg.name) as sp:
            cached = self.cache.get(key)
            if cached is not None:
                have = getattr(cached, "dumps", None) or {}
                if all(name in have for name in wanted):
                    try:
                        prog = self._rebuild(cfg, cached)
                        sp.set(cached=True)
                        return prog, cached
                    except Exception:
                        # The entry loaded but its payload is rotten (e.g. a
                        # truncated unit_blob): treat as a miss and recompile
                        # rather than surface cache damage to the caller.
                        self.stats.add("cache_errors")
                        self.cache.invalidate(key)
                        cached = None
            t0 = time.perf_counter()
            prog = SafeGen(cfg).compile(source, entry=entry,
                                        emit_after=wanted)
            compile_s = time.perf_counter() - t0
            sp.set(cached=False, compile_s=round(compile_s, 6))
        self.stats.record_pipeline(prog.pipeline_report)
        dumps = dict(prog.dumps)
        if cached is not None:
            # Keep dumps other callers already paid for.
            dumps = {**(getattr(cached, "dumps", None) or {}), **dumps}
        cache_entry = CacheEntry(
            key=key,
            entry=prog.entry,
            config=cfg.to_dict(),
            unit_blob=pickle.dumps(prog.unit,
                                   protocol=pickle.HIGHEST_PROTOCOL),
            python_source=prog.python_source,
            c_source=prog.c_source,
            priority_map=dict(prog.priority_map),
            report=prog.analysis_report,
            compile_s=compile_s,
            pipeline=prog.pipeline_report,
            dumps=dumps,
        )
        self.cache.put(key, cache_entry)
        return prog, cache_entry

    def program_from_entry(self, entry: CacheEntry,
                           config: Optional[CompilerConfig] = None
                           ) -> CompiledProgram:
        """Rebuild a runnable program from a cache entry (e.g. one produced
        by a worker process)."""
        cfg = config if config is not None \
            else CompilerConfig.from_dict(entry.config)
        return self._rebuild(cfg, entry)

    def _rebuild(self, cfg: CompilerConfig,
                 entry: CacheEntry) -> CompiledProgram:
        unit = pickle.loads(entry.unit_blob)
        # getattr: entries pickled by older versions lack the new fields.
        return CompiledProgram(cfg, unit, entry.entry, entry.python_source,
                               entry.c_source, dict(entry.priority_map),
                               entry.report,
                               pipeline_report=getattr(entry, "pipeline",
                                                       None),
                               dumps=dict(getattr(entry, "dumps", None)
                                          or {}))

    # -- batches ---------------------------------------------------------------------

    def run_batch(self, batch: List[CompileJob], jobs: int = 1,
                  timeout_s: Optional[float] = None,
                  retries: int = 0) -> List[JobResult]:
        """Execute a list of Compile/Run jobs, serially (``jobs<=1``,
        through this service's cache) or on a process pool sharing this
        service's disk cache directory."""
        from .engine import BatchEngine  # lazy: engine imports this module

        engine = BatchEngine(jobs=jobs, timeout_s=timeout_s, retries=retries,
                             service=self)
        return engine.run(batch)

    # -- metrics ---------------------------------------------------------------------

    def dump_stats(self, path: Optional[str] = None) -> str:
        return self.stats.dump_json(path)

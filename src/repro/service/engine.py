"""Parallel batch execution on a process pool, with timeout and retry.

Design notes:

* **Determinism.** Results come back as a list indexed exactly like the
  submitted batch, whatever order workers finish in, and every worker runs
  the same ``execute_job`` code as the serial path — so a parallel batch
  produces the same values as a serial one, just faster.
* **Per-job wall-clock timeout.** At most ``jobs`` futures are in flight at
  a time, so a submitted future starts essentially immediately and its
  deadline can be anchored at submission.  A worker stuck past its deadline
  cannot be cancelled through ``concurrent.futures``, so the engine marks
  the job timed out, *replaces the whole pool* (terminating the stuck
  process), and resubmits the innocent in-flight jobs without charging them
  an attempt.
* **Bounded retry.** A job that raises or times out is resubmitted up to
  ``retries`` extra times; transient failures (a worker OOM-killed, a
  flaky filesystem) get a second chance, deterministic failures surface as
  a failed :class:`JobResult` carrying the formatted exception.
* **Caching.** Each worker process keeps a process-local
  :class:`CompileService`; give the engine a ``cache_dir`` (or a service
  with one) and all workers share compilations through the content-addressed
  disk store.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.trace import Tracer, current_tracer, use_tracer
from .jobs import CompileJob, JobResult, execute_job
from .stats import ServiceStats

__all__ = ["BatchEngine"]

# Per-worker-process service, created by the pool initializer.
_WORKER_SERVICE = None


def _pool_init(cache_dir: Optional[str], maxsize: int) -> None:
    global _WORKER_SERVICE
    from .service import CompileService

    _WORKER_SERVICE = CompileService(cache_dir=cache_dir, maxsize=maxsize)


def worker_tracer(payload: dict) -> Optional[Tracer]:
    """Build the worker-side tracer for a payload carrying a ``__trace__``
    marker ({trace_id, parent_id}, injected by the submitting process).
    Pops the marker; returns None for untraced payloads."""
    trace = payload.pop("__trace__", None)
    if trace is None:
        return None
    return Tracer(trace_id=trace.get("trace_id"),
                  root_parent=trace.get("parent_id"))


def traced_payload(payload: dict, tracer) -> dict:
    """A copy of ``payload`` carrying the ``__trace__`` marker (the
    original is left untouched — it may be retried untraced)."""
    return {**payload, "__trace__": {"trace_id": tracer.trace_id,
                                     "parent_id": tracer.current_span_id}}


def _pool_execute(payload: dict
                  ) -> Tuple[dict, float, ServiceStats, List[dict]]:
    # Ship the cache-counter delta (and any recorded spans) back with the
    # result so the parent's stats and trace reflect what happened inside
    # the worker processes.
    tracer = worker_tracer(payload)
    before = _WORKER_SERVICE.stats.snapshot()
    t0 = time.perf_counter()
    if tracer is not None:
        with use_tracer(tracer):
            value = execute_job(payload, _WORKER_SERVICE)
    else:
        value = execute_job(payload, _WORKER_SERVICE)
    elapsed = time.perf_counter() - t0
    _WORKER_SERVICE.stats.observe_latency(f"job:{payload['kind']}", elapsed)
    delta = ServiceStats.delta(before, _WORKER_SERVICE.stats)
    spans = tracer.to_dicts() if tracer is not None else []
    return value, elapsed, delta, spans


class BatchEngine:
    """Run a batch of Compile/Run jobs; see the module docstring."""

    #: how often (seconds) in-flight futures are polled for deadlines
    _TICK = 0.05

    def __init__(self, jobs: int = 1,
                 timeout_s: Optional[float] = None,
                 retries: int = 0,
                 cache_dir: Optional[str] = None,
                 maxsize: int = 128,
                 service=None,
                 stats: Optional[ServiceStats] = None) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.maxsize = maxsize
        self.service = service
        if service is not None and cache_dir is None:
            cache_dir = service.cache.cache_dir
        self.cache_dir = cache_dir
        if stats is not None:
            self.stats = stats
        elif service is not None:
            self.stats = service.stats
        else:
            self.stats = ServiceStats()

    # -- entry point -----------------------------------------------------------------

    def run(self, batch: Sequence[CompileJob]) -> List[JobResult]:
        payloads = [job.to_payload() for job in batch]
        if self.jobs <= 1:
            return self._run_serial(payloads)
        return self._run_pool(payloads)

    # -- serial path -----------------------------------------------------------------

    def _run_serial(self, payloads: List[dict]) -> List[JobResult]:
        # In-process execution cannot preempt a running job, so timeouts are
        # only enforced on the pool path; retries still apply.
        service = self.service
        if service is None:
            from .service import CompileService

            service = CompileService(cache_dir=self.cache_dir,
                                     maxsize=self.maxsize,
                                     stats=self.stats)
            self.service = service
        results: List[JobResult] = []
        for index, payload in enumerate(payloads):
            attempt = 1
            while True:
                t0 = time.perf_counter()
                try:
                    value = execute_job(payload, service)
                except Exception:
                    if attempt <= self.retries:
                        attempt += 1
                        self.stats.add("jobs_retried")
                        continue
                    self.stats.add("jobs_failed")
                    results.append(JobResult(
                        index=index, kind=payload["kind"], ok=False,
                        error=traceback.format_exc(limit=8),
                        attempts=attempt,
                        elapsed_s=time.perf_counter() - t0))
                    break
                self.stats.add("jobs_run")
                elapsed = time.perf_counter() - t0
                self.stats.observe_latency(f"job:{payload['kind']}", elapsed)
                results.append(JobResult(
                    index=index, kind=payload["kind"], ok=True, value=value,
                    attempts=attempt, elapsed_s=elapsed))
                break
        return results

    # -- pool path -------------------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_pool_init,
            initargs=(self.cache_dir, self.maxsize),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        # shutdown(wait=False) alone leaves a hung worker running forever;
        # terminate whatever processes the executor still tracks.
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            if proc.is_alive():
                proc.terminate()
        for proc in processes:
            proc.join(timeout=2.0)

    def _run_pool(self, payloads: List[dict]) -> List[JobResult]:
        n = len(payloads)
        results: List[Optional[JobResult]] = [None] * n
        queue = deque((i, 1) for i in range(n))  # (index, attempt number)
        pool = self._new_pool()
        inflight: Dict[object, Tuple[int, int, Optional[float]]] = {}
        tracer = current_tracer()
        try:
            while queue or inflight:
                while queue and len(inflight) < self.jobs:
                    index, attempt = queue.popleft()
                    payload = payloads[index]
                    if tracer.enabled:
                        payload = traced_payload(payload, tracer)
                    future = pool.submit(_pool_execute, payload)
                    deadline = (time.monotonic() + self.timeout_s
                                if self.timeout_s else None)
                    inflight[future] = (index, attempt, deadline)
                done, _ = wait(set(inflight), timeout=self._TICK,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    index, attempt, _ = inflight.pop(future)
                    try:
                        value, elapsed, worker_delta, spans = future.result()
                        self.stats.merge(worker_delta)
                        tracer.adopt(spans)
                    except Exception as exc:
                        if attempt <= self.retries:
                            queue.append((index, attempt + 1))
                            self.stats.add("jobs_retried")
                        else:
                            self.stats.add("jobs_failed")
                            results[index] = JobResult(
                                index=index, kind=payloads[index]["kind"],
                                ok=False, attempts=attempt,
                                error="".join(traceback.format_exception_only(
                                    type(exc), exc)).strip())
                        continue
                    self.stats.add("jobs_run")
                    results[index] = JobResult(
                        index=index, kind=payloads[index]["kind"], ok=True,
                        value=value, attempts=attempt, elapsed_s=elapsed)
                pool = self._reap_expired(pool, inflight, queue, results,
                                          payloads)
        finally:
            self._kill_pool(pool)
        return [r for r in results if r is not None]

    def _reap_expired(self, pool, inflight, queue, results, payloads):
        """Handle in-flight jobs past their deadline; returns the (possibly
        replaced) pool."""
        if not inflight:
            return pool
        now = time.monotonic()
        expired = [f for f, (_, _, deadline) in inflight.items()
                   if deadline is not None and now > deadline
                   and not f.done()]
        if not expired:
            return pool
        expired_set = set(expired)
        for future, (index, attempt, _) in inflight.items():
            if future in expired_set:
                self.stats.add("jobs_timed_out")
                if attempt <= self.retries:
                    queue.append((index, attempt + 1))
                    self.stats.add("jobs_retried")
                else:
                    self.stats.add("jobs_failed")
                    results[index] = JobResult(
                        index=index, kind=payloads[index]["kind"], ok=False,
                        attempts=attempt, timed_out=True,
                        error=f"timed out after {self.timeout_s}s")
            else:
                # Innocent bystanders die with the pool; resubmit them
                # without charging an attempt.
                queue.appendleft((index, attempt))
        inflight.clear()
        self._kill_pool(pool)
        return self._new_pool()

"""Content-addressed compile cache: in-memory LRU over an optional disk store.

The key is ``CompilerConfig.cache_key(source, entry)`` — a SHA-256 over the
canonicalized C source, every config field (k, policies, int-params, ...),
the entry name, and ``repro.__version__`` — so a hit can only be served for
a byte-identical compilation question asked by the same code version.

What we store is everything needed to rebuild a :class:`CompiledProgram`
without re-running the pipeline: the pickled (already TAC-transformed)
translation unit, the generated Python and C sources, the priority map and
the analysis report.  Rebuilding is three orders of magnitude cheaper than
compiling (one ``pickle.loads`` plus one ``exec`` of the generated module).

The disk store is sharded two hex characters deep and written atomically
(temp file + ``os.replace``), so concurrent worker processes can share one
cache directory without locks: the worst case is two processes doing the
same compile and one rename winning, which is harmless because both wrote
identical content under a content-addressed name.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .stats import ServiceStats

__all__ = ["CacheEntry", "CompileCache"]

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


@dataclass
class CacheEntry:
    """One cached compilation, in rebuild-ready form."""

    key: str
    entry: str                 # resolved entry-function name
    config: Dict[str, Any]     # CompilerConfig.to_dict() of the compile
    unit_blob: bytes           # pickled TAC-form TranslationUnit
    python_source: str
    c_source: str
    priority_map: Dict[int, str] = field(default_factory=dict)
    report: Any = None         # AnalysisReport or None
    compile_s: float = 0.0     # what the original compile cost
    pipeline: Any = None       # PipelineReport or None
    # Intermediate dumps kept for --emit-after (pass name -> plain C text).
    dumps: Dict[str, str] = field(default_factory=dict)


class CompileCache:
    """LRU of :class:`CacheEntry` with an optional on-disk second level.

    ``get``/``put`` never raise on disk trouble: a corrupt or unreadable
    file is treated as a miss (and deleted best-effort), a failed write is
    ignored — the cache is an accelerator, not a source of truth.
    """

    def __init__(self, maxsize: int = 128,
                 cache_dir: Optional[str] = None,
                 stats: Optional[ServiceStats] = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.cache_dir = cache_dir
        self.stats = stats if stats is not None else ServiceStats()
        self._mem: "OrderedDict[str, CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._mem)

    def __contains__(self, key: str) -> bool:
        """True iff :meth:`get` would return an entry — a bare disk file is
        not enough, it must actually load (a corrupt shard is a miss).
        Hit/miss counters are untouched; a corrupt file found here still
        counts ``cache_errors`` and is unlinked, exactly as ``get`` would.
        The loaded entry is promoted into the memory LRU so the ``get``
        that typically follows does not re-read the disk."""
        if key in self._mem:
            return True
        entry = self._disk_get(key)
        if entry is None:
            return False
        self._mem_put(key, entry)
        return True

    # -- lookup ----------------------------------------------------------------------

    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
            self.stats.add("hits")
            self.stats.add("compile_s_saved", entry.compile_s)
            return entry
        entry = self._disk_get(key)
        if entry is not None:
            self._mem_put(key, entry)
            self.stats.add("hits")
            self.stats.add("disk_hits")
            self.stats.add("compile_s_saved", entry.compile_s)
            return entry
        self.stats.add("misses")
        return None

    def put(self, key: str, entry: CacheEntry) -> None:
        self._mem_put(key, entry)
        self._disk_put(key, entry)

    def invalidate(self, key: str) -> None:
        """Drop ``key`` from both levels (e.g. an entry whose payload turned
        out to be corrupt after a successful load)."""
        self._mem.pop(key, None)
        path = self._disk_path_if_exists(key)
        if path is not None:
            try:
                os.unlink(path)
            except OSError:
                pass

    def clear(self) -> None:
        self._mem.clear()

    # -- in-memory LRU ---------------------------------------------------------------

    def _mem_put(self, key: str, entry: CacheEntry) -> None:
        self._mem[key] = entry
        self._mem.move_to_end(key)
        while len(self._mem) > self.maxsize:
            self._mem.popitem(last=False)
            self.stats.add("evictions")

    # -- disk store ------------------------------------------------------------------

    def _disk_path(self, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, key[:2], key + ".pkl")

    def _disk_path_if_exists(self, key: str) -> Optional[str]:
        path = self._disk_path(key)
        return path if path is not None and os.path.exists(path) else None

    def _disk_get(self, key: str) -> Optional[CacheEntry]:
        path = self._disk_path_if_exists(key)
        if path is None:
            return None
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
            if not isinstance(entry, CacheEntry) or entry.key != key:
                raise ValueError("cache file does not match its key")
            return entry
        except Exception:
            # Truncated write, unpicklable class, wrong key: demote to a
            # miss, count it, and drop the file so it is not re-read.
            self.stats.add("cache_errors")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def _disk_put(self, key: str, entry: CacheEntry) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(entry, fh, protocol=_PICKLE_PROTO)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            self.stats.add("cache_errors")

"""Compilation service layer: compile cache + parallel batch execution.

This package turns the one-shot :class:`repro.SafeGen` compiler into a
reusable service:

* :class:`CompileService` — cached compilation front-end (in-memory LRU over
  an optional content-addressed on-disk store).
* :class:`BatchEngine` — run lists of :class:`CompileJob` / :class:`RunJob`
  serially or on a process pool, with per-job timeout and bounded retry,
  returning deterministically-ordered :class:`JobResult` lists.
* :class:`ServiceStats` — hit/miss/eviction and job counters, dumpable as
  JSON.

See DESIGN.md ("Service layer") for the cache-key recipe and the batching
model.
"""

from .cache import CacheEntry, CompileCache
from .engine import BatchEngine
from .jobs import (
    AnalyzeJob,
    CompileJob,
    JobResult,
    RunJob,
    RunBatchJob,
    TuneJob,
    execute_job,
    job_from_dict,
    jobs_from_json,
)
from .service import CompileService
from .stats import LatencyHistogram, ServiceStats

__all__ = [
    "AnalyzeJob",
    "BatchEngine",
    "CacheEntry",
    "CompileCache",
    "CompileJob",
    "CompileService",
    "JobResult",
    "LatencyHistogram",
    "RunBatchJob",
    "RunJob",
    "ServiceStats",
    "TuneJob",
    "execute_job",
    "job_from_dict",
    "jobs_from_json",
]

"""Trace exporters: JSONL files and a bounded in-memory ring buffer.

Two sinks cover the two consumption patterns:

* :class:`TraceLog` appends spans to a JSONL file (one span per line) —
  the durable artifact `repro trace show` renders and CI uploads.
* :class:`TraceBuffer` keeps the last ``capacity`` spans in memory — what
  the server's ``trace`` op serves, so a client can pull the span tree of
  a request it just made without the server touching disk.

:func:`check_spans` is the well-formedness gate the CI smoke (and the
tests) run over an exported trace: structural field checks, parent links
that resolve within the same trace, and acyclic nesting.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["TraceBuffer", "TraceLog", "check_spans", "load_trace"]


class TraceBuffer:
    """Bounded in-memory span store (newest ``capacity`` spans win)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._spans: deque = deque(maxlen=capacity)
        self.total = 0

    def extend(self, span_dicts: Iterable[Dict[str, Any]]) -> None:
        for span in span_dicts:
            self._spans.append(span)
            self.total += 1

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring bound since startup."""
        return self.total - len(self._spans)

    def spans(self, trace_id: Optional[str] = None,
              limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Stored spans, oldest first, optionally filtered by trace id and
        truncated to the newest ``limit``."""
        out = [s for s in self._spans
               if trace_id is None or s.get("trace_id") == trace_id]
        if limit is not None and limit >= 0:
            out = out[-limit:]
        return out


class TraceLog:
    """Append-only JSONL span sink with optional size-capped rotation.

    The file handle stays open (the server writes per request); ``close``
    is idempotent and writes after close are dropped silently so a drain
    race cannot take the server down.

    ``max_bytes`` caps the live file: when an append pushes it past the
    cap, the file rotates to ``<path>.1`` (replacing any previous
    rotation) and a fresh live file starts, so a long-lived daemon keeps
    at most ~2x ``max_bytes`` of spans on disk.  Rotation happens on the
    write boundary — individual spans are never split across files.
    """

    def __init__(self, path: str, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.path = path
        self.max_bytes = max_bytes
        self.rotations = 0
        self._fh = open(path, "a")
        self._size = self._fh.tell()

    def write(self, span_dicts: Iterable[Dict[str, Any]]) -> None:
        if self._fh is None:
            return
        for span in span_dicts:
            line = json.dumps(span, separators=(",", ":")) + "\n"
            nbytes = len(line.encode("utf-8"))
            if self.max_bytes is not None and self._size > 0 \
                    and self._size + nbytes > self.max_bytes:
                self._rotate()
            self._fh.write(line)
            self._size += nbytes
        self._fh.flush()

    def _rotate(self) -> None:
        import os

        self._fh.close()
        os.replace(self.path, self.path + ".1")
        self._fh = open(self.path, "a")
        self._size = 0
        self.rotations += 1

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    def __enter__(self) -> "TraceLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace file back into span dicts (blank lines skipped).

    Raises ``ValueError`` naming the offending line on malformed JSON.
    """
    spans = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSONL span: {exc}")
            if not isinstance(span, dict):
                raise ValueError(f"{path}:{lineno}: span must be an object")
            spans.append(span)
    return spans


def check_spans(spans: List[Dict[str, Any]]) -> List[str]:
    """Well-formedness problems of an exported trace (empty list = OK).

    Checks: required fields and their types, span-id uniqueness, parent
    links resolving to a span of the *same* trace, no parent cycles, and
    non-negative durations.
    """
    problems: List[str] = []
    by_id: Dict[str, Dict[str, Any]] = {}
    for i, span in enumerate(spans):
        where = f"span[{i}]"
        for fname in ("trace_id", "span_id", "name"):
            if not isinstance(span.get(fname), str) or not span.get(fname):
                problems.append(f"{where}: missing/empty {fname!r}")
        if not isinstance(span.get("wall_s"), (int, float)) \
                or span.get("wall_s", -1) < 0:
            problems.append(f"{where}: wall_s must be a non-negative number")
        if not isinstance(span.get("start_ts"), (int, float)):
            problems.append(f"{where}: start_ts must be a number")
        sid = span.get("span_id")
        if isinstance(sid, str) and sid:
            if sid in by_id:
                problems.append(f"{where}: duplicate span_id {sid!r}")
            by_id[sid] = span
    for i, span in enumerate(spans):
        parent = span.get("parent_id")
        if parent is None:
            continue
        ref = by_id.get(parent)
        if ref is None:
            problems.append(
                f"span[{i}] ({span.get('name')!r}): parent_id {parent!r} "
                f"does not name a span in this export")
        elif ref.get("trace_id") != span.get("trace_id"):
            problems.append(
                f"span[{i}] ({span.get('name')!r}): parent belongs to a "
                f"different trace")
    # Cycle check: follow parent links with a visited set per start.
    for i, span in enumerate(spans):
        seen = set()
        node = span
        while node is not None:
            sid = node.get("span_id")
            if sid in seen:
                problems.append(
                    f"span[{i}] ({span.get('name')!r}): parent cycle")
                break
            seen.add(sid)
            node = by_id.get(node.get("parent_id"))
    return problems

"""Observability for the sound-computation stack.

Dependency-free structured tracing (:mod:`.trace`), trace exporters
(:mod:`.export`), runtime operation profiling (:mod:`.profile`),
Prometheus text exposition (:mod:`.metrics`), and terminal waterfall
rendering (:mod:`.waterfall`).  See DESIGN.md § Observability for the
span model and the per-layer record inventory.
"""

from .diag import (
    WidthProfile,
    explain_batch_row,
    located_fraction,
    parse_origin,
    render_diag_report,
    shares_by_origin,
)
from .export import TraceBuffer, TraceLog, check_spans, load_trace
from .metrics import render_prometheus
from .profile import OpProfile, count_rounding
from .trace import (
    NULL_TRACER,
    DisabledSpan,
    Span,
    Tracer,
    current_tracer,
    new_trace_id,
    use_tracer,
)
from .waterfall import render_waterfall

__all__ = [
    "DisabledSpan",
    "NULL_TRACER",
    "OpProfile",
    "Span",
    "TraceBuffer",
    "TraceLog",
    "Tracer",
    "WidthProfile",
    "check_spans",
    "count_rounding",
    "current_tracer",
    "explain_batch_row",
    "load_trace",
    "located_fraction",
    "new_trace_id",
    "parse_origin",
    "render_diag_report",
    "render_prometheus",
    "render_waterfall",
    "shares_by_origin",
    "use_tracer",
]

"""Prometheus text exposition over the service and server counters.

:func:`render_prometheus` turns a :class:`~repro.service.stats.ServiceStats`
(plus, for a live server, the daemon's counter/admission snapshot) into the
Prometheus text exposition format, version 0.0.4 — dependency-free, and
conservative about conventions so standard scrapers ingest it unchanged:

* counters end in ``_total``; time counters in ``_seconds_total``,
* the latency histograms follow the ``_bucket{le=...}`` / ``_sum`` /
  ``_count`` cumulative-bucket contract with a closing ``+Inf`` bucket,
* every metric family gets exactly one ``# HELP`` / ``# TYPE`` block —
  even when many snapshots are merged into one exposition (the writer
  groups samples by family, so a fleet render never repeats headers),
* the label set per metric name is stable across renders (scrape
  continuity).

:func:`render_prometheus_fleet` is the multi-process form: given one
``stats`` snapshot per shard (as fetched from each shard's ``stats`` op)
it emits every family once with a ``shard`` label per sample, plus the
router's own counters under ``shard="router"`` and fleet-level gauges.
Summing a family over the ``shard`` label is the fleet rollup; the JSON
``stats`` op additionally serves a pre-merged rollup.

The renderer reads an atomic ``ServiceStats.snapshot()`` — callers may
pass a live object; it is snapshotted here.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["render_prometheus", "render_prometheus_fleet"]

_PREFIX = "repro"


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    return repr(v)


def _fmt_labels(labels: Optional[Dict[str, Any]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class _Writer:
    """Accumulates samples grouped by metric family.

    Families keep their first-seen order; calling :meth:`metric` again for
    the same family (a second shard's snapshot) appends samples without
    repeating the ``# HELP`` / ``# TYPE`` header — the dedupe that makes
    multi-snapshot aggregation valid exposition.  ``base_labels`` (e.g.
    ``{"shard": "0"}``) are stamped onto every sample.
    """

    def __init__(self, base_labels: Optional[Dict[str, str]] = None) -> None:
        self.base_labels = dict(base_labels or {})
        #: family name -> (mtype, help, [(suffix, labels, value), ...])
        self._families: Dict[str, Tuple[str, str, List[Tuple]]] = {}

    def metric(self, name: str, mtype: str, help_text: str,
               samples: List[Tuple],
               suffix_samples: bool = False) -> None:
        """Add samples to one family.  ``suffix_samples`` means the sample
        tuples are ``(suffix, labels, value)`` (histograms)."""
        if not samples:
            return
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = (mtype, help_text, [])
        rows = family[2]
        for sample in samples:
            if suffix_samples:
                suffix, labels, value = sample
            else:
                suffix, (labels, value) = "", sample
            if self.base_labels:
                labels = {**self.base_labels, **(labels or {})}
            rows.append((suffix, labels, value))

    def render(self) -> str:
        lines: List[str] = []
        for name, (mtype, help_text, rows) in self._families.items():
            full = f"{_PREFIX}_{name}"
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {mtype}")
            for suffix, labels, value in rows:
                lines.append(f"{full}{suffix}{_fmt_labels(labels)} "
                             f"{_fmt_value(value)}")
        return "\n".join(lines) + "\n"


def _histogram_samples(name_labels: Dict[str, str], hist) -> List[Tuple]:
    """Cumulative-bucket samples for one LatencyHistogram."""
    out: List[Tuple] = []
    cum = 0
    for i, count in enumerate(hist.counts):
        cum += count
        le = ("+Inf" if i >= len(hist.BOUNDS)
              else _fmt_value(float(hist.BOUNDS[i])))
        # Keep the exposition compact: only emit buckets that close a
        # count change, plus the mandatory +Inf terminator.
        if count or i >= len(hist.BOUNDS):
            out.append(("_bucket", {**name_labels, "le": le}, cum))
    out.append(("_sum", dict(name_labels), hist.total_s))
    out.append(("_count", dict(name_labels), hist.count))
    return out


def _render_service(w: _Writer, snap,
                    labels: Optional[Dict[str, str]] = None) -> None:
    """Emit one ServiceStats snapshot into ``w`` (labels per sample)."""
    base = dict(labels or {})

    def lbl(extra: Optional[Dict[str, Any]] = None):
        merged = {**base, **(extra or {})}
        return merged or None

    w.metric("cache_lookups_total", "counter",
             "Compile-cache lookups by outcome.",
             [(lbl({"outcome": "hit"}), snap.hits),
              (lbl({"outcome": "miss"}), snap.misses)])
    w.metric("cache_disk_hits_total", "counter",
             "Cache hits satisfied by the on-disk store.",
             [(lbl(), snap.disk_hits)])
    w.metric("cache_evictions_total", "counter",
             "In-memory LRU evictions.", [(lbl(), snap.evictions)])
    w.metric("cache_errors_total", "counter",
             "Corrupt/unreadable cache entries demoted to misses.",
             [(lbl(), snap.cache_errors)])
    w.metric("compile_seconds_saved_total", "counter",
             "Original compile seconds avoided by cache hits.",
             [(lbl(), snap.compile_s_saved)])
    w.metric("jobs_total", "counter", "Batch/server job outcomes.",
             [(lbl({"outcome": "run"}), snap.jobs_run),
              (lbl({"outcome": "failed"}), snap.jobs_failed),
              (lbl({"outcome": "timed_out"}), snap.jobs_timed_out),
              (lbl({"outcome": "retried"}), snap.jobs_retried)])
    w.metric("batch_rows_total", "counter",
             "Input boxes evaluated through the batched runtime.",
             [(lbl(), snap.batch_rows)])
    w.metric("batch_cohort_splits_total", "counter",
             "Cohort divergences during batched execution.",
             [(lbl(), snap.batch_cohort_splits)])
    w.metric("batch_scalar_fallbacks_total", "counter",
             "Batched rows that fell back to the scalar runtime.",
             [(lbl(), snap.batch_scalar_fallbacks)])
    w.metric("analyze_queries_total", "counter",
             "Domain analysis queries executed.",
             [(lbl(), snap.analyze_queries)])
    w.metric("analyze_boxes_total", "counter",
             "Subboxes evaluated by domain analysis refinement.",
             [(lbl(), snap.analyze_boxes)])
    w.metric("analyze_waves_total", "counter",
             "Domain analysis refinement waves (one batch per wave).",
             [(lbl(), snap.analyze_waves)])
    w.metric("analyze_undecided_total", "counter",
             "Subboxes left undecided (ambiguous control flow).",
             [(lbl(), snap.analyze_undecided)])
    w.metric("tune_runs_total", "counter",
             "Autotuning sweeps executed.", [(lbl(), snap.tune_runs)])
    w.metric("tune_candidates_total", "counter",
             "Candidate configurations measured by autotuning sweeps.",
             [(lbl(), snap.tune_candidates)])
    w.metric("tune_persisted_total", "counter",
             "Tuned winners persisted to the TunedConfigStore.",
             [(lbl(), snap.tune_persisted)])
    w.metric("tune_resolved_total", "counter",
             "Compiles transparently substituted with a tuned winner.",
             [(lbl(), snap.tune_resolved)])
    w.metric("tune_sweep_seconds_total", "counter",
             "Wall seconds spent sweeping candidate configurations.",
             [(lbl(), snap.tune_sweep_s)])
    if snap.pass_s:
        w.metric("pass_seconds_total", "counter",
                 "Wall seconds spent per compiler pass.",
                 [(lbl({"pass": name}), seconds)
                  for name, seconds in sorted(snap.pass_s.items())])
    ops = getattr(snap, "ops", None)
    if ops:
        w.metric("runtime_ops_total", "counter",
                 "Runtime operation counts (affine ops, symbol placements, "
                 "fusions, condensations, rounding emulations).",
                 [(lbl({"op": name}), count)
                  for name, count in sorted(ops.items())])
    if snap.latency:
        samples: List[Tuple] = []
        for probe, hist in sorted(snap.latency.items()):
            samples.extend(_histogram_samples(lbl({"probe": probe}) or {},
                                              hist))
        w.metric("latency_seconds", "histogram",
                 "Per-request wall-clock latency by probe.",
                 samples, suffix_samples=True)


def _render_server(w: _Writer, server: Dict[str, Any],
                   labels: Optional[Dict[str, str]] = None) -> None:
    """Emit one server/router counter snapshot into ``w``."""
    base = dict(labels or {})

    def lbl(extra: Optional[Dict[str, Any]] = None):
        merged = {**base, **(extra or {})}
        return merged or None

    counters = server.get("counters", {})
    w.metric("server_requests_total", "counter",
             "Frames received by the server.",
             [(lbl(), counters.get("requests_total", 0))])
    w.metric("server_replies_ok_total", "counter",
             "Successful replies sent.",
             [(lbl(), counters.get("replies_ok", 0))])
    op_samples = [(lbl({"op": key[3:]}), value)
                  for key, value in sorted(counters.items())
                  if key.startswith("op:")]
    w.metric("server_op_requests_total", "counter",
             "Requests by op.", op_samples)
    err_samples = [(lbl({"code": key[4:]}), value)
                   for key, value in sorted(counters.items())
                   if key.startswith("err:")]
    w.metric("server_errors_total", "counter",
             "Error replies by structured code.", err_samples)
    batch = server.get("batch", {})
    route_samples = []
    if "inline_served" in server or "pool_submits" in server or batch:
        route_samples = [
            (lbl({"route": "inline"}), server.get("inline_served", 0)),
            (lbl({"route": "pool"}), server.get("pool_submits", 0)),
            (lbl({"route": "batch"}), batch.get("coalesced_rows", 0))]
    w.metric("server_route_total", "counter",
             "Work requests by execution route.", route_samples)
    if batch:
        w.metric("server_batch_flushes_total", "counter",
                 "Micro-batch flushes (one batched execution each).",
                 [(lbl(), batch.get("flushes", 0))])
    if "pool_abandoned" in server:
        w.metric("server_pool_abandoned_total", "counter",
                 "Pool futures abandoned past their deadline.",
                 [(lbl(), server.get("pool_abandoned", 0))])
    admission = server.get("admission", {})
    if admission:
        w.metric("server_admitted_requests", "gauge",
                 "Admitted (queued + running) work requests.",
                 [(lbl(), admission.get("admitted", 0))])
        w.metric("server_queued_requests", "gauge",
                 "Admitted requests waiting for a class slot.",
                 [(lbl(), admission.get("queued", 0))])
        w.metric("server_admission_total", "counter",
                 "Admission decisions.",
                 [(lbl({"decision": "admitted"}),
                   admission.get("admitted_total", 0)),
                  (lbl({"decision": "rejected"}),
                   admission.get("rejected_total", 0))])
    w.metric("server_draining", "gauge",
             "1 while the server is draining.",
             [(lbl(), 1 if server.get("draining") else 0)])
    if "uptime_s" in server:
        w.metric("server_uptime_seconds", "gauge",
                 "Seconds since the server started.",
                 [(lbl(), server["uptime_s"])])
    if "started_at" in server:
        w.metric("server_start_time_seconds", "gauge",
                 "Unix time the server started.",
                 [(lbl(), server["started_at"])])
    trace = server.get("trace", {})
    if trace:
        w.metric("trace_spans_total", "counter",
                 "Spans recorded into the trace ring buffer.",
                 [(lbl(), trace.get("total", 0))])
        w.metric("trace_spans_dropped_total", "counter",
                 "Spans evicted from the trace ring buffer.",
                 [(lbl(), trace.get("dropped", 0))])


def _render_width(w: _Writer, width: Dict[str, Any],
                  labels: Optional[Dict[str, str]] = None,
                  top_n: int = 10) -> None:
    """Emit one WidthProfile snapshot: per-origin mean-share gauges for the
    heaviest origins plus the sampling and condensation-loss counters."""
    base = dict(labels or {})

    def lbl(extra: Optional[Dict[str, Any]] = None):
        merged = {**base, **(extra or {})}
        return merged or None

    n_sampled = width.get("n_sampled", 0)
    w.metric("width_requests_total", "counter",
             "Run requests seen by the width-provenance sampler.",
             [(lbl({"sampled": "yes"}), n_sampled),
              (lbl({"sampled": "no"}),
               width.get("n_requests", 0) - n_sampled)])
    if not n_sampled:
        return
    ranked = sorted(width.get("origins", {}).items(),
                    key=lambda kv: (-kv[1].get("share_sum", 0.0), kv[0]))
    w.metric("width_share", "gauge",
             "Mean share of enclosure radius attributed to a source origin "
             "over sampled runs (top origins only).",
             [(lbl({"origin": origin}),
               st.get("share_sum", 0.0) / n_sampled)
              for origin, st in ranked[:top_n]])
    loc = width.get("located_fraction")
    if loc is not None:
        w.metric("width_located_fraction", "gauge",
                 "Fraction of attributed radius carried by origins that "
                 "parse as concrete source positions.",
                 [(lbl(), loc)])
    w.metric("width_absorptions_total", "counter",
             "Condensation events recorded during sampled runs.",
             [(lbl(), width.get("n_absorptions", 0))])


def render_prometheus(stats, server: Optional[Dict[str, Any]] = None,
                      shard: Optional[str] = None,
                      width: Optional[Dict[str, Any]] = None) -> str:
    """Render ``stats`` (a ServiceStats) and an optional server snapshot
    (the dict the daemon's ``stats`` op returns under ``"server"``) as
    Prometheus text exposition.  ``shard`` stamps a ``shard`` label onto
    every sample (the per-process form of the fleet exposition); ``width``
    is an optional :meth:`repro.obs.diag.WidthProfile.to_dict` snapshot
    rendered as ``repro_width_share{origin=...}`` gauges."""
    snap = stats.snapshot() if hasattr(stats, "snapshot") else stats
    labels = {"shard": shard} if shard is not None else None
    w = _Writer()
    _render_service(w, snap, labels)
    if server:
        _render_server(w, server, labels)
    if width:
        _render_width(w, width, labels)
    return w.render()


def render_prometheus_fleet(
        shards: Dict[str, Tuple[Any, Optional[Dict[str, Any]]]],
        router: Optional[Tuple[Any, Optional[Dict[str, Any]]]] = None,
        fleet: Optional[Dict[str, Any]] = None) -> str:
    """One valid exposition over many processes.

    ``shards`` maps a shard id to ``(service_stats, server_section)`` —
    the two halves of that shard's ``stats`` op reply (``service_stats``
    may be a live/snapshotted ServiceStats or its ``to_dict`` form).
    ``router`` is the same pair for the router itself (labeled
    ``shard="router"``).  Every metric family is emitted exactly once,
    with a ``shard`` label per sample; ``fleet`` adds membership gauges
    (``healthy_shards`` / ``total_shards`` / ``ring_nodes``).
    """
    from ..service.stats import ServiceStats

    w = _Writer()
    for shard_id, (stats, server) in sorted(shards.items()):
        if isinstance(stats, dict):
            stats = ServiceStats.from_dict(stats)
        snap = stats.snapshot() if hasattr(stats, "snapshot") else stats
        labels = {"shard": str(shard_id)}
        _render_service(w, snap, labels)
        if server:
            _render_server(w, server, labels)
    if router is not None:
        stats, server = router
        if isinstance(stats, dict):
            stats = ServiceStats.from_dict(stats)
        snap = stats.snapshot() if hasattr(stats, "snapshot") else stats
        labels = {"shard": "router"}
        _render_service(w, snap, labels)
        if server:
            _render_server(w, server, labels)
    if fleet:
        w.metric("fleet_shards", "gauge",
                 "Fleet membership by health state.",
                 [({"state": "healthy"}, fleet.get("healthy_shards", 0)),
                  ({"state": "out"}, fleet.get("out_shards", 0))])
        w.metric("fleet_ring_nodes", "gauge",
                 "Shards currently owning ring slices.",
                 [(None, fleet.get("ring_nodes", 0))])
    return w.render()

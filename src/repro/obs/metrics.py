"""Prometheus text exposition over the service and server counters.

:func:`render_prometheus` turns a :class:`~repro.service.stats.ServiceStats`
(plus, for a live server, the daemon's counter/admission snapshot) into the
Prometheus text exposition format, version 0.0.4 — dependency-free, and
conservative about conventions so standard scrapers ingest it unchanged:

* counters end in ``_total``; time counters in ``_seconds_total``,
* the latency histograms follow the ``_bucket{le=...}`` / ``_sum`` /
  ``_count`` cumulative-bucket contract with a closing ``+Inf`` bucket,
* every metric gets exactly one ``# HELP`` / ``# TYPE`` block, and the
  label set per metric name is stable across renders (scrape continuity).

The renderer reads an atomic ``ServiceStats.snapshot()`` — callers may
pass a live object; it is snapshotted here.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["render_prometheus"]

_PREFIX = "repro"


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    return repr(v)


def _fmt_labels(labels: Optional[Dict[str, Any]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"'
                     for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def metric(self, name: str, mtype: str, help_text: str,
               samples: List[Tuple[Optional[Dict[str, Any]], float]],
               suffix_samples: bool = False) -> None:
        """One HELP/TYPE block plus its samples.  ``suffix_samples`` means
        the sample tuples are ``(suffix, labels, value)`` (histograms)."""
        if not samples:
            return
        full = f"{_PREFIX}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {mtype}")
        for sample in samples:
            if suffix_samples:
                suffix, labels, value = sample
                self.lines.append(
                    f"{full}{suffix}{_fmt_labels(labels)} "
                    f"{_fmt_value(value)}")
            else:
                labels, value = sample
                self.lines.append(
                    f"{full}{_fmt_labels(labels)} {_fmt_value(value)}")

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _histogram_samples(name_labels: Dict[str, str], hist) -> List[Tuple]:
    """Cumulative-bucket samples for one LatencyHistogram."""
    out: List[Tuple] = []
    cum = 0
    for i, count in enumerate(hist.counts):
        cum += count
        le = ("+Inf" if i >= len(hist.BOUNDS)
              else _fmt_value(float(hist.BOUNDS[i])))
        # Keep the exposition compact: only emit buckets that close a
        # count change, plus the mandatory +Inf terminator.
        if count or i >= len(hist.BOUNDS):
            out.append(("_bucket", {**name_labels, "le": le}, cum))
    out.append(("_sum", dict(name_labels), hist.total_s))
    out.append(("_count", dict(name_labels), hist.count))
    return out


def render_prometheus(stats, server: Optional[Dict[str, Any]] = None) -> str:
    """Render ``stats`` (a ServiceStats) and an optional server snapshot
    (the dict the daemon's ``stats`` op returns under ``"server"``) as
    Prometheus text exposition."""
    snap = stats.snapshot() if hasattr(stats, "snapshot") else stats
    w = _Writer()

    w.metric("cache_lookups_total", "counter",
             "Compile-cache lookups by outcome.",
             [({"outcome": "hit"}, snap.hits),
              ({"outcome": "miss"}, snap.misses)])
    w.metric("cache_disk_hits_total", "counter",
             "Cache hits satisfied by the on-disk store.",
             [(None, snap.disk_hits)])
    w.metric("cache_evictions_total", "counter",
             "In-memory LRU evictions.", [(None, snap.evictions)])
    w.metric("cache_errors_total", "counter",
             "Corrupt/unreadable cache entries demoted to misses.",
             [(None, snap.cache_errors)])
    w.metric("compile_seconds_saved_total", "counter",
             "Original compile seconds avoided by cache hits.",
             [(None, snap.compile_s_saved)])
    w.metric("jobs_total", "counter", "Batch/server job outcomes.",
             [({"outcome": "run"}, snap.jobs_run),
              ({"outcome": "failed"}, snap.jobs_failed),
              ({"outcome": "timed_out"}, snap.jobs_timed_out),
              ({"outcome": "retried"}, snap.jobs_retried)])
    w.metric("batch_rows_total", "counter",
             "Input boxes evaluated through the batched runtime.",
             [(None, snap.batch_rows)])
    w.metric("batch_cohort_splits_total", "counter",
             "Cohort divergences during batched execution.",
             [(None, snap.batch_cohort_splits)])
    w.metric("batch_scalar_fallbacks_total", "counter",
             "Batched rows that fell back to the scalar runtime.",
             [(None, snap.batch_scalar_fallbacks)])
    if snap.pass_s:
        w.metric("pass_seconds_total", "counter",
                 "Wall seconds spent per compiler pass.",
                 [({"pass": name}, seconds)
                  for name, seconds in sorted(snap.pass_s.items())])
    ops = getattr(snap, "ops", None)
    if ops:
        w.metric("runtime_ops_total", "counter",
                 "Runtime operation counts (affine ops, symbol placements, "
                 "fusions, condensations, rounding emulations).",
                 [({"op": name}, count)
                  for name, count in sorted(ops.items())])
    if snap.latency:
        samples: List[Tuple] = []
        for probe, hist in sorted(snap.latency.items()):
            samples.extend(_histogram_samples({"probe": probe}, hist))
        w.metric("latency_seconds", "histogram",
                 "Per-request wall-clock latency by probe.",
                 samples, suffix_samples=True)

    if server:
        counters = server.get("counters", {})
        w.metric("server_requests_total", "counter",
                 "Frames received by the server.",
                 [(None, counters.get("requests_total", 0))])
        w.metric("server_replies_ok_total", "counter",
                 "Successful replies sent.",
                 [(None, counters.get("replies_ok", 0))])
        op_samples = [({"op": key[3:]}, value)
                      for key, value in sorted(counters.items())
                      if key.startswith("op:")]
        w.metric("server_op_requests_total", "counter",
                 "Requests by op.", op_samples)
        err_samples = [({"code": key[4:]}, value)
                       for key, value in sorted(counters.items())
                       if key.startswith("err:")]
        w.metric("server_errors_total", "counter",
                 "Error replies by structured code.", err_samples)
        batch = server.get("batch", {})
        w.metric("server_route_total", "counter",
                 "Work requests by execution route.",
                 [({"route": "inline"}, server.get("inline_served", 0)),
                  ({"route": "pool"}, server.get("pool_submits", 0)),
                  ({"route": "batch"}, batch.get("coalesced_rows", 0))])
        if batch:
            w.metric("server_batch_flushes_total", "counter",
                     "Micro-batch flushes (one batched execution each).",
                     [(None, batch.get("flushes", 0))])
        w.metric("server_pool_abandoned_total", "counter",
                 "Pool futures abandoned past their deadline.",
                 [(None, server.get("pool_abandoned", 0))])
        admission = server.get("admission", {})
        if admission:
            w.metric("server_admitted_requests", "gauge",
                     "Admitted (queued + running) work requests.",
                     [(None, admission.get("admitted", 0))])
            w.metric("server_queued_requests", "gauge",
                     "Admitted requests waiting for a class slot.",
                     [(None, admission.get("queued", 0))])
            w.metric("server_admission_total", "counter",
                     "Admission decisions.",
                     [({"decision": "admitted"},
                       admission.get("admitted_total", 0)),
                      ({"decision": "rejected"},
                       admission.get("rejected_total", 0))])
        w.metric("server_draining", "gauge",
                 "1 while the server is draining.",
                 [(None, 1 if server.get("draining") else 0)])
        if "uptime_s" in server:
            w.metric("server_uptime_seconds", "gauge",
                     "Seconds since the server started.",
                     [(None, server["uptime_s"])])
        if "started_at" in server:
            w.metric("server_start_time_seconds", "gauge",
                     "Unix time the server started.",
                     [(None, server["started_at"])])
        trace = server.get("trace", {})
        if trace:
            w.metric("trace_spans_total", "counter",
                     "Spans recorded into the trace ring buffer.",
                     [(None, trace.get("total", 0))])
            w.metric("trace_spans_dropped_total", "counter",
                     "Spans evicted from the trace ring buffer.",
                     [(None, trace.get("dropped", 0))])
    return w.render()

"""Width-provenance diagnostics: source-level error attribution.

The compiler embeds an origin string — ``"<file>:<line>:<col> <op>"`` — in
every runtime call it generates; when a run tracks provenance, each noise
symbol created by the scalar or batched runtime carries the origin of the
operation that created it, and condensation records the radius it absorbed
per origin.  This module turns those raw records into answers:

* :func:`parse_origin` / :func:`located_fraction` — the origin grammar.
* :func:`explain_batch_row` — per-row radius decomposition of a
  :class:`~repro.batchrt.form.BatchAffine` (the batched analogue of
  :func:`repro.aa.explain.explain`).
* :class:`WidthProfile` — a mergeable, wire-serializable aggregator of
  per-request attributions (the shape :class:`repro.service.ServiceStats`
  uses), sampled off the hot path, served by the daemon's ``diag`` op and
  fleet-merged on the router.
* :func:`render_diag_report` — the ``repro diag`` terminal report joining
  the width profile with pipeline timings and service stats.
"""

from __future__ import annotations

import random
import re
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..fp import add_ru

__all__ = [
    "ORIGIN_RE",
    "WidthProfile",
    "explain_batch_row",
    "located_fraction",
    "parse_origin",
    "render_diag_report",
    "shares_by_origin",
]

#: ``"<file>:<line>:<col> <op>"`` — what the code generator emits.  The op
#: tail is free-form ("mul", "input x", "const", ...).
ORIGIN_RE = re.compile(r"^(.*):(\d+):(\d+)\s+(\S.*)$")


def parse_origin(origin: Optional[str]
                 ) -> Optional[Tuple[str, int, int, str]]:
    """``(file, line, col, op)`` for a well-formed origin string, else
    ``None`` (runtime-internal origins like ``"constant"`` or
    ``"ceres:round"`` don't parse — by design: they are not source
    positions)."""
    if not origin:
        return None
    m = ORIGIN_RE.match(origin)
    if m is None:
        return None
    return m.group(1), int(m.group(2)), int(m.group(3)), m.group(4)


def located_fraction(shares: Dict[str, float]) -> float:
    """The fraction of attribution mass carried by origins that parse as
    concrete source positions.  ``repro diag --min-located`` gates on this."""
    total = 0.0
    located = 0.0
    for origin, share in shares.items():
        total += share
        if parse_origin(origin) is not None:
            located += share
    return located / total if total > 0 else 0.0


def shares_by_origin(explanation) -> Dict[str, float]:
    """Collapse an :class:`~repro.aa.explain.Explanation` to an
    origin -> summed-share dict; anonymous symbols key as ``"ε<id>"``."""
    out: Dict[str, float] = {}
    for s in explanation.shares:
        key = s.provenance or f"ε{s.symbol_id}"
        out[key] = out.get(key, 0.0) + s.share
    return out


def explain_batch_row(form, row: int):
    """Radius decomposition of one row of a :class:`BatchAffine`.

    The batched context keeps per-row sid -> origin maps (row sids diverge
    because zero coefficients skip placement per row), so this is the exact
    analogue of ``explain(vec_affine)`` for that row.
    """
    from ..aa.explain import Explanation, SymbolShare

    ids = form.ids[row]
    coeffs = form.coeffs[row]
    radius = 0.0
    pairs = []
    for slot in range(len(ids)):
        sid = int(ids[slot])
        if sid == 0:
            continue
        c = float(coeffs[slot])
        radius = add_ru(radius, abs(c))
        pairs.append((sid, c))
    shares = [
        SymbolShare(
            symbol_id=sid, coefficient=c,
            share=abs(c) / radius if radius > 0 else 0.0,
            provenance=form.ctx.provenance_of_row(row, sid))
        for sid, c in pairs
    ]
    shares.sort(key=lambda s: -abs(s.coefficient))
    return Explanation(central=float(form.central[row]), radius=radius,
                       n_symbols=len(shares), shares=shares)


class WidthProfile:
    """Mergeable aggregate of per-request width attributions.

    Follows the :class:`~repro.service.ServiceStats` conventions: every
    mutation goes through a re-entrant lock, :meth:`to_dict` /
    :meth:`from_dict` round-trip the wire form a shard serves from its
    ``diag`` op, :meth:`merge` / :meth:`merged` fold shard snapshots into
    a fleet rollup, and pickling drops the lock.

    Per origin it keeps the summed share, summed absolute radius
    contribution, request count and maximum single-request share; a small
    seeded reservoir of whole per-request attributions rides along for
    drill-down.  Sampling policy lives with the caller (the service records
    every N-th request) — the profile only counts what it is given:
    :meth:`skip` for an unsampled request, :meth:`record` for a sampled one.
    """

    DEFAULT_RESERVOIR = 32

    def __init__(self, reservoir: int = DEFAULT_RESERVOIR) -> None:
        self._lock = threading.RLock()
        self.reservoir = int(reservoir)
        self.n_requests = 0
        self.n_sampled = 0
        # origin -> {"share_sum", "radius_sum", "count", "max_share"}
        self.origins: Dict[str, Dict[str, float]] = {}
        # condensation-loss books (victim origin / absorbing site)
        self.absorbed: Dict[str, float] = {}
        self.absorbed_at: Dict[str, float] = {}
        self.n_absorptions = 0
        self.samples: List[Dict[str, Any]] = []
        self._rng = random.Random(0x5AFE)

    # -- recording -------------------------------------------------------------

    def skip(self) -> None:
        """Count a request that ran without attribution (not sampled)."""
        with self._lock:
            self.n_requests += 1

    def record(self, shares: Dict[str, float], radius: float,
               label: Optional[str] = None) -> None:
        """Fold one sampled request's origin -> share dict in."""
        with self._lock:
            self.n_requests += 1
            self.n_sampled += 1
            for origin, share in shares.items():
                st = self.origins.get(origin)
                if st is None:
                    st = self.origins[origin] = {
                        "share_sum": 0.0, "radius_sum": 0.0,
                        "count": 0, "max_share": 0.0}
                st["share_sum"] += share
                st["radius_sum"] = add_ru(st["radius_sum"],
                                          abs(share * radius))
                st["count"] += 1
                if share > st["max_share"]:
                    st["max_share"] = share
            self._reservoir_add({"shares": dict(shares),
                                 "radius": float(radius),
                                 **({"label": label} if label else {})})

    def record_absorbed(self, absorbed: Dict[str, float],
                        absorbed_at: Dict[str, float],
                        n_absorptions: int = 0) -> None:
        """Fold one context's condensation-loss books in (the
        ``absorbed`` / ``absorbed_at`` dicts of a ``SymbolFactory`` or
        ``BatchContext``)."""
        with self._lock:
            for origin, amount in absorbed.items():
                self.absorbed[origin] = add_ru(
                    self.absorbed.get(origin, 0.0), amount)
            for site, amount in absorbed_at.items():
                self.absorbed_at[site] = add_ru(
                    self.absorbed_at.get(site, 0.0), amount)
            self.n_absorptions += int(n_absorptions)

    def record_explanation(self, explanation, label: Optional[str] = None
                           ) -> None:
        """Convenience: :meth:`record` an ``Explanation`` directly."""
        self.record(shares_by_origin(explanation), explanation.radius,
                    label=label)

    def _reservoir_add(self, sample: Dict[str, Any]) -> None:
        if len(self.samples) < self.reservoir:
            self.samples.append(sample)
            return
        j = self._rng.randrange(self.n_sampled)
        if j < self.reservoir:
            self.samples[j] = sample

    # -- views -----------------------------------------------------------------

    def top(self, n: int = 5) -> List[Tuple[str, float]]:
        """The ``n`` heaviest origins as ``(origin, mean share)`` over the
        sampled requests, heaviest first."""
        with self._lock:
            if not self.n_sampled:
                return []
            ranked = sorted(self.origins.items(),
                            key=lambda kv: (-kv[1]["share_sum"], kv[0]))
            return [(origin, st["share_sum"] / self.n_sampled)
                    for origin, st in ranked[:n]]

    def located_fraction(self) -> float:
        """Share mass attributed to concrete source positions, over all
        sampled requests."""
        with self._lock:
            return located_fraction({o: st["share_sum"]
                                     for o, st in self.origins.items()})

    # -- wire form ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "n_requests": self.n_requests,
                "n_sampled": self.n_sampled,
                "reservoir": self.reservoir,
                "origins": {o: dict(st)
                            for o, st in sorted(self.origins.items())},
                "absorbed": dict(sorted(self.absorbed.items())),
                "absorbed_at": dict(sorted(self.absorbed_at.items())),
                "n_absorptions": self.n_absorptions,
                "samples": [dict(s) for s in self.samples],
                "located_fraction": round(self.located_fraction(), 6),
                "top": [[o, round(share, 6)] for o, share in self.top(10)],
            }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WidthProfile":
        """Inverse of :meth:`to_dict`; derived keys (``top``,
        ``located_fraction``) are ignored."""
        out = cls(reservoir=int(data.get("reservoir",
                                         cls.DEFAULT_RESERVOIR)))
        out.n_requests = int(data.get("n_requests", 0))
        out.n_sampled = int(data.get("n_sampled", 0))
        for origin, st in data.get("origins", {}).items():
            out.origins[origin] = {
                "share_sum": float(st.get("share_sum", 0.0)),
                "radius_sum": float(st.get("radius_sum", 0.0)),
                "count": int(st.get("count", 0)),
                "max_share": float(st.get("max_share", 0.0)),
            }
        out.absorbed = {k: float(v)
                        for k, v in data.get("absorbed", {}).items()}
        out.absorbed_at = {k: float(v)
                           for k, v in data.get("absorbed_at", {}).items()}
        out.n_absorptions = int(data.get("n_absorptions", 0))
        out.samples = [dict(s) for s in data.get("samples", [])]
        return out

    def merge(self, other: "WidthProfile") -> None:
        """Fold another profile (e.g. a shard snapshot) into this one."""
        with self._lock:
            self.n_requests += other.n_requests
            self.n_sampled += other.n_sampled
            for origin, st in other.origins.items():
                mine = self.origins.get(origin)
                if mine is None:
                    self.origins[origin] = dict(st)
                else:
                    mine["share_sum"] += st["share_sum"]
                    mine["radius_sum"] = add_ru(mine["radius_sum"],
                                                st["radius_sum"])
                    mine["count"] += st["count"]
                    if st["max_share"] > mine["max_share"]:
                        mine["max_share"] = st["max_share"]
            self.record_absorbed(other.absorbed, other.absorbed_at,
                                 other.n_absorptions)
            # Samples interleave so both sides keep representation within
            # the bounded reservoir.
            combined: List[Dict[str, Any]] = []
            for i in range(max(len(self.samples), len(other.samples))):
                if i < len(self.samples):
                    combined.append(self.samples[i])
                if i < len(other.samples):
                    combined.append(other.samples[i])
            self.samples = combined[:self.reservoir]

    @classmethod
    def merged(cls, snapshots: Iterable[Dict[str, Any]]) -> "WidthProfile":
        """Fold many :meth:`to_dict` snapshots into one rollup (what the
        router's fleet ``diag`` op returns)."""
        out = cls()
        for snap in snapshots:
            out.merge(cls.from_dict(snap))
        return out

    # -- pickling (the lock stays process-local) ---------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state.pop("_rng", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._rng = random.Random(0x5AFE)

    def __str__(self) -> str:
        top = ", ".join(f"{o} ({share:.1%})" for o, share in self.top(3))
        return (f"width profile: {self.n_sampled}/{self.n_requests} "
                f"requests sampled; top: {top or '(none)'}")


def render_diag_report(profile: Dict[str, Any],
                       pipeline: Optional[Dict[str, Any]] = None,
                       stats: Optional[Dict[str, Any]] = None,
                       n: int = 10) -> str:
    """The ``repro diag`` terminal report.

    ``profile`` is a :meth:`WidthProfile.to_dict` snapshot; ``pipeline``
    an optional :meth:`PipelineReport.to_dict` (compile timings + origin
    rewrites); ``stats`` an optional :meth:`ServiceStats.to_dict` (cache /
    pool counters).  All three arrive as plain dicts so the same renderer
    serves local compiles, daemon snapshots and fleet rollups.
    """
    lines: List[str] = []
    n_req = profile.get("n_requests", 0)
    n_samp = profile.get("n_sampled", 0)
    lines.append(f"width attribution ({n_samp}/{n_req} requests sampled)")
    origins = profile.get("origins", {})
    ranked = sorted(origins.items(),
                    key=lambda kv: (-kv[1].get("share_sum", 0.0), kv[0]))
    if not ranked:
        lines.append("  (no sampled requests)")
    for origin, st in ranked[:n]:
        mean = st.get("share_sum", 0.0) / n_samp if n_samp else 0.0
        where = parse_origin(origin)
        tag = "" if where is not None else "  [runtime]"
        lines.append(
            f"  {mean:7.2%}  {origin}"
            f"  (peak {st.get('max_share', 0.0):.1%}, "
            f"n={int(st.get('count', 0))}){tag}")
    if len(ranked) > n:
        rest = sum(st.get("share_sum", 0.0)
                   for _, st in ranked[n:]) / max(n_samp, 1)
        lines.append(f"  ... {len(ranked) - n} more ({rest:.2%})")
    loc = profile.get("located_fraction")
    if loc is None:
        loc = located_fraction({o: st.get("share_sum", 0.0)
                                for o, st in origins.items()})
    lines.append(f"  located at source positions: {loc:.1%}")

    absorbed = profile.get("absorbed", {})
    if absorbed:
        lines.append("condensation losses (radius absorbed, by victim "
                     "origin)")
        for origin, amount in sorted(absorbed.items(),
                                     key=lambda kv: -kv[1])[:n]:
            lines.append(f"  {amount:12.6g}  {origin}")
        sites = profile.get("absorbed_at", {})
        if sites:
            lines.append("  absorbed at (top sites): " + ", ".join(
                f"{site} ({amount:.3g})"
                for site, amount in sorted(sites.items(),
                                           key=lambda kv: -kv[1])[:3]))

    if pipeline:
        lines.append("compile pipeline")
        for p in pipeline.get("passes", []):
            lines.append(f"  {p.get('name', '?'):<12} "
                         f"{p.get('wall_s', 0.0) * 1e3:9.3f} ms  "
                         f"fops {p.get('float_ops_after', 0)}")
        merges = pipeline.get("origin_merges", [])
        dropped = pipeline.get("origins_dropped", [])
        if merges:
            lines.append(
                "  cse merged origins: " + ", ".join(
                    f"{kept} <- {merged_}" for kept, merged_ in merges[:8])
                + (" ..." if len(merges) > 8 else ""))
        if dropped:
            lines.append(
                "  dte dropped origins: " + ", ".join(dropped[:8])
                + (" ..." if len(dropped) > 8 else ""))

    if stats:
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        lookups = hits + misses
        lines.append(
            f"service: cache {hits}/{lookups} hits, "
            f"{stats.get('jobs_run', 0)} jobs run, "
            f"{stats.get('jobs_failed', 0)} failed")
    return "\n".join(lines)

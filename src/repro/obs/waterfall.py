"""Terminal waterfall rendering of an exported span tree.

``repro trace show <file>`` pipes a JSONL trace through
:func:`render_waterfall`: spans are grouped per trace, nested by parent
links, and drawn as proportional bars on a shared time axis so the hot
pass (or the pool hop) is visible at a glance::

    trace 3f2a9c0d11aa20b4 (total 12.4 ms, 9 spans)
    server:run                [##########################..] 12.40ms
      dispatch:pool           [...#######################..] 11.02ms
        job:run               [....#####################...] 10.10ms
          pass:const_fold     [....##......................]  1.21ms

Orphan spans (parent not present in the export — e.g. a truncated ring
buffer) are promoted to roots rather than dropped, so partial traces
still render.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["render_waterfall"]

_BAR_WIDTH = 30


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _bar(start: float, duration: float, t0: float, total: float,
         width: int = _BAR_WIDTH) -> str:
    if total <= 0:
        return "[" + "#" * width + "]"
    lo = int(round((start - t0) / total * width))
    hi = int(round((start - t0 + duration) / total * width))
    lo = max(0, min(width, lo))
    hi = max(lo, min(width, hi))
    if hi == lo:
        hi = min(width, lo + 1)
    return "[" + "." * lo + "#" * (hi - lo) + "." * (width - hi) + "]"


def _children_index(spans: List[Dict[str, Any]]):
    by_id = {s.get("span_id"): s for s in spans}
    roots: List[Dict[str, Any]] = []
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is None or parent not in by_id:
            roots.append(span)
        else:
            children.setdefault(parent, []).append(span)
    key = lambda s: (s.get("start_ts", 0.0), s.get("span_id", ""))  # noqa: E731
    roots.sort(key=key)
    for kids in children.values():
        kids.sort(key=key)
    return roots, children


def _render_trace(trace_id: str, spans: List[Dict[str, Any]],
                  width: int) -> List[str]:
    roots, children = _children_index(spans)
    t0 = min(s.get("start_ts", 0.0) for s in spans)
    t1 = max(s.get("start_ts", 0.0) + s.get("wall_s", 0.0) for s in spans)
    total = max(t1 - t0, 0.0)
    lines = [f"trace {trace_id} (total {_fmt_duration(total)}, "
             f"{len(spans)} spans)"]
    name_width = max(
        (len(s.get("name", "")) + 2 * _depth(s, spans) for s in spans),
        default=0)
    name_width = min(max(name_width, 12), 48)

    def walk(span: Dict[str, Any], depth: int) -> None:
        name = "  " * depth + str(span.get("name", "?"))
        bar = _bar(span.get("start_ts", 0.0), span.get("wall_s", 0.0),
                   t0, total, width)
        dur = _fmt_duration(span.get("wall_s", 0.0))
        suffix = ""
        if span.get("error"):
            suffix = f"  !{span['error']}"
        attrs = span.get("attrs") or {}
        brief = {k: attrs[k] for k in ("route", "cached", "op", "entry")
                 if k in attrs}
        if brief:
            suffix += "  " + " ".join(f"{k}={v}" for k, v in brief.items())
        lines.append(f"{name:<{name_width}} {bar} {dur:>9}{suffix}")
        for child in children.get(span.get("span_id"), ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return lines


def _depth(span: Dict[str, Any], spans: List[Dict[str, Any]]) -> int:
    by_id = {s.get("span_id"): s for s in spans}
    depth, node, seen = 0, span, set()
    while True:
        parent = node.get("parent_id")
        if parent is None or parent not in by_id or parent in seen:
            return depth
        seen.add(parent)
        node = by_id[parent]
        depth += 1


def render_waterfall(spans: List[Dict[str, Any]],
                     width: int = _BAR_WIDTH) -> str:
    """Render span dicts (any number of traces) as an aligned text
    waterfall; traces are separated by blank lines, ordered by first
    span start time."""
    if not spans:
        return "(no spans)"
    by_trace: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        by_trace.setdefault(str(span.get("trace_id", "?")), []).append(span)
    ordered = sorted(
        by_trace.items(),
        key=lambda kv: min(s.get("start_ts", 0.0) for s in kv[1]))
    blocks = [_render_trace(tid, group, width) for tid, group in ordered]
    lines: List[str] = []
    for i, block in enumerate(blocks):
        if i:
            lines.append("")
        lines.extend(block)
    return "\n".join(lines)

"""Structured tracing: span trees with near-zero cost when disabled.

One :class:`Tracer` records one request's (or one CLI invocation's) span
tree.  A span is opened with a context manager and carries a trace id, its
own span id, its parent's span id, a wall-clock start timestamp, a
monotonic duration, and free-form JSON-safe attributes::

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span("server:run", op="run") as sp:
            ...
            sp.set(route="inline")
    spans = tracer.to_dicts()          # JSON-safe, ready for JSONL export

Layers that cannot be handed a tracer explicitly (the pass manager deep
inside a compile, the generated-program runtime) read the *ambient* tracer
from a :mod:`contextvars` variable via :func:`current_tracer`; the default
is a process-wide disabled tracer.  Context variables propagate correctly
into asyncio tasks and stay isolated between threads, which is exactly the
concurrency structure of the server.

Cost model: a **disabled** tracer hands out :class:`DisabledSpan` objects —
two ``perf_counter`` calls and one small allocation, no attribute storage,
no recording (~0.5 µs per span; see ``benchmarks/bench_obs_overhead.py``).
Spans always measure their duration even when disabled because the pass
manager derives :class:`~repro.compiler.passes.PipelineReport` wall times
from them.

Trace ids cross process boundaries: a worker-side tracer is constructed
with the parent's ``trace_id`` and the dispatching span's id as
``root_parent``, so worker spans merge into the parent's tree with correct
parent links (see ``Tracer.adopt``).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "DisabledSpan",
    "NULL_TRACER",
    "Span",
    "Tracer",
    "current_tracer",
    "new_trace_id",
    "use_tracer",
]


#: Per-process tracer numbering (itertools.count is atomic in CPython).
_TRACER_IDS = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, process-independent)."""
    return uuid.uuid4().hex[:16]


class DisabledSpan:
    """The span a disabled tracer hands out: times itself (callers such as
    the pass manager need the duration either way) but records nothing."""

    __slots__ = ("_t0", "wall_s")

    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    name = ""
    recording = False

    def __init__(self) -> None:
        self.wall_s = 0.0

    def __enter__(self) -> "DisabledSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        return False

    def set(self, **attrs: Any) -> None:
        """No-op: attributes are dropped when tracing is off."""


class Span:
    """One recorded operation; also its own context manager."""

    __slots__ = ("_tracer", "_t0", "trace_id", "span_id", "parent_id",
                 "name", "start_ts", "wall_s", "attrs", "error")

    recording = True

    def __init__(self, tracer: "Tracer", name: str,
                 parent_id: Optional[str], attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.trace_id = tracer.trace_id
        self.span_id = tracer._next_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start_ts = 0.0
        self.wall_s = 0.0
        self.attrs = attrs
        self.error: Optional[str] = None

    def __enter__(self) -> "Span":
        self._tracer._stack.append(self.span_id)
        self.start_ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self.error = exc_type.__name__
        stack = self._tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._record(self)
        return False

    def set(self, **attrs: Any) -> None:
        """Attach JSON-safe attributes (usable during *and* after the
        ``with`` block: spans are serialized at export time)."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ts": round(self.start_ts, 6),
            "wall_s": round(self.wall_s, 9),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Records one span tree; see the module docstring.

    ``enabled=False`` makes every :meth:`span` call return a fresh
    :class:`DisabledSpan` — the hot-path configuration.  ``root_parent``
    seeds the parent id of top-level spans (worker-side tracers use it to
    graft their spans under the dispatching span of the parent process).
    ``explain_top`` is the number of width-provenance shares the runtime
    layer attaches to run spans (0 disables the sampling).
    """

    __slots__ = ("enabled", "trace_id", "spans", "explain_top",
                 "_stack", "_seq", "_id_prefix")

    def __init__(self, trace_id: Optional[str] = None, enabled: bool = True,
                 root_parent: Optional[str] = None,
                 explain_top: int = 5) -> None:
        self.enabled = enabled
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.explain_top = explain_top
        self.spans: List[Any] = []
        self._stack: List[Optional[str]] = [root_parent]
        self._seq = 0
        # Span ids must stay unique when spans from other tracers merge into
        # this tree (pool workers, same-process adoption), so the prefix
        # bakes in the process id and a per-process tracer number.
        self._id_prefix = f"{os.getpid():x}.{next(_TRACER_IDS):x}"

    def _next_span_id(self) -> str:
        self._seq += 1
        return f"{self._id_prefix}.{self._seq:x}"

    def span(self, name: str, **attrs: Any):
        """Open a child span of whatever span is currently innermost."""
        if not self.enabled:
            return DisabledSpan()
        return Span(self, name, self._stack[-1], attrs)

    def _record(self, span: Span) -> None:
        self.spans.append(span)

    @property
    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span (None outside any span)."""
        return self._stack[-1]

    def adopt(self, span_dicts: Iterable[Dict[str, Any]]) -> None:
        """Merge already-serialized spans (e.g. shipped back from a pool
        worker) into this trace."""
        if not self.enabled:
            return
        self.spans.extend(span_dicts)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """All recorded spans as JSON-safe dicts, in completion order."""
        return [s if isinstance(s, dict) else s.to_dict()
                for s in self.spans]


#: The process-wide disabled tracer (the ambient default).
NULL_TRACER = Tracer(trace_id="", enabled=False, explain_top=0)

_CURRENT: contextvars.ContextVar[Optional[Tracer]] = \
    contextvars.ContextVar("repro_obs_tracer", default=None)


def current_tracer() -> Tracer:
    """The ambient tracer (the disabled tracer when none is active)."""
    tracer = _CURRENT.get()
    return tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer):
    """Make ``tracer`` the ambient tracer for the dynamic extent of the
    ``with`` block (asyncio-task- and thread-correct via contextvars)."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)

"""Runtime operation profiling: what did a sound computation *do*?

An :class:`OpProfile` is the per-run counter set the paper's cost analysis
(Section V) argues about, captured from a finished
:class:`~repro.compiler.runtime.Runtime`:

* affine operations (add/mul/div/sqrt) and their model flop count,
* symbol placements (fresh error symbols allocated by the factory),
* fusion work — symbols fused, direct-mapped slot conflicts, and
  condensation events (capacity-overflow fusions via ``select_victims``),
* ambiguous branch decisions, and
* directed-rounding emulations (the TwoSum/TwoProd software stand-ins for
  the hardware rounding modes, counted per operator class).

The affine counters ride on :class:`~repro.aa.context.AAStats`, which the
runtime maintains unconditionally — capturing them is free.  The
directed-rounding counters live in :mod:`repro.fp.rounding` behind a
module-level gate that costs one ``is None`` test per call when off; wrap
a run in :func:`count_rounding` to collect them (the service layer does
this whenever the run is traced).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..fp import rounding as _rounding

__all__ = ["OpProfile", "count_rounding"]


@contextmanager
def count_rounding():
    """Collect directed-rounding emulation counts for the enclosed code.

    Yields the live ``{"add": n, "mul": n, "div": n, "sqrt": n}`` dict
    (``add`` covers subtraction too: ``a - b`` rounds through the adder).
    Nesting restores the previous collector on exit.  The gate is a
    process-global, so concurrently profiled runs in one process would
    share a collector — the server serializes inline runs, and pool
    workers profile one job at a time.
    """
    counts = {"add": 0, "mul": 0, "div": 0, "sqrt": 0}
    prev = _rounding.set_rounding_profile(counts)
    try:
        yield counts
    finally:
        _rounding.set_rounding_profile(prev)


@dataclass
class OpProfile:
    """Operation counts of one program run (all JSON-safe)."""

    n_add: int = 0
    n_mul: int = 0
    n_div: int = 0
    n_sqrt: int = 0
    flops: int = 0
    symbols_placed: int = 0
    fused_symbols: int = 0
    conflicts: int = 0
    condensations: int = 0
    ambiguous_branches: int = 0
    #: directed-rounding emulations per operator class; ``None`` when the
    #: run was not wrapped in :func:`count_rounding`.
    rounding: Optional[Dict[str, int]] = field(default=None)

    @classmethod
    def capture(cls, runtime,
                rounding: Optional[Dict[str, int]] = None) -> "OpProfile":
        """Read the counters off a finished runtime (AA, IA or float mode;
        interval/float modes report zero affine work)."""
        stats = getattr(runtime, "stats", None)
        ctx = getattr(runtime, "ctx", None)
        symbols = 0
        if ctx is not None and getattr(ctx, "symbols", None) is not None:
            symbols = ctx.symbols.count
        return cls(
            n_add=getattr(stats, "n_add", 0),
            n_mul=getattr(stats, "n_mul", 0),
            n_div=getattr(stats, "n_div", 0),
            n_sqrt=getattr(stats, "n_sqrt", 0),
            flops=getattr(stats, "flops", 0),
            symbols_placed=symbols,
            fused_symbols=getattr(stats, "n_fused_symbols", 0),
            conflicts=getattr(stats, "n_conflicts", 0),
            condensations=getattr(stats, "n_condensations", 0),
            ambiguous_branches=getattr(stats, "ambiguous_branches", 0),
            rounding=dict(rounding) if rounding is not None else None,
        )

    @property
    def total_ops(self) -> int:
        return self.n_add + self.n_mul + self.n_div + self.n_sqrt

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "ops": {"add": self.n_add, "mul": self.n_mul,
                    "div": self.n_div, "sqrt": self.n_sqrt,
                    "total": self.total_ops},
            "flops": self.flops,
            "symbols_placed": self.symbols_placed,
            "fused_symbols": self.fused_symbols,
            "conflicts": self.conflicts,
            "condensations": self.condensations,
            "ambiguous_branches": self.ambiguous_branches,
        }
        if self.rounding is not None:
            out["rounding"] = dict(self.rounding)
        return out

    def counter_items(self) -> Dict[str, int]:
        """Flat ``name -> count`` view for metrics accumulation
        (:class:`~repro.service.stats.ServiceStats` ``ops`` field)."""
        out = {
            "aa_add": self.n_add, "aa_mul": self.n_mul,
            "aa_div": self.n_div, "aa_sqrt": self.n_sqrt,
            "flops": self.flops,
            "symbols_placed": self.symbols_placed,
            "fused_symbols": self.fused_symbols,
            "conflicts": self.conflicts,
            "condensations": self.condensations,
            "ambiguous_branches": self.ambiguous_branches,
        }
        if self.rounding:
            for op, n in self.rounding.items():
                out[f"rounding_{op}"] = n
        return {k: v for k, v in out.items() if v}

"""C backend: renders the transformed program as sound C (paper Fig. 2).

The output is the C a user of the original SafeGen would see: declarations
retyped to the affine types (``f64a``/``dda``) or interval types, every
floating-point operation replaced by a call into the affine library
(``aa_add_f64`` …), constants converted conservatively, and
``aa_prioritize`` calls injected where the static analysis protected a
variable's symbols.

This backend is for inspection/fidelity — the executable artifact in this
reproduction is the Python backend (see DESIGN.md).  It is nevertheless a
complete pretty-printer: the emitted C is syntactically valid against the
declarations in ``include/safegen_aa.h`` (shipped as documentation).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import UnsupportedFeatureError
from . import cast as A
from .constfold import _text_is_exact
from .typecheck import MATH_FUNCS

__all__ = ["generate_c"]

_TYPE_NAMES = {
    "aa-f64a": "f64a",
    "aa-dda": "dda",
    "ia-f64": "interval_f64",
    "ia-dd": "interval_dd",
    # "plain" renders the (TAC-transformed, analysis-annotated) program as
    # ordinary C with `#pragma safegen prioritize(...)` lines — the output
    # of the paper's preprocessing step (Figs. 6 and 7).
    "plain": "double",
}

_SUFFIX = {
    "aa-f64a": "f64",
    "aa-dda": "dd",
    "ia-f64": "i64",
    "ia-dd": "idd",
    "plain": "",
}


def generate_c(unit: A.TranslationUnit, flavor: str = "aa-f64a") -> str:
    """Render the transformed unit as C using the affine/interval library.

    ``flavor`` selects the numeric family: ``aa-f64a`` (default),
    ``aa-dda``, ``ia-f64`` or ``ia-dd``.
    """
    if flavor not in _TYPE_NAMES:
        raise ValueError(f"unknown flavor {flavor!r}")
    return _CGen(unit, flavor).module()


class _CGen:
    def __init__(self, unit: A.TranslationUnit, flavor: str) -> None:
        self.unit = unit
        self.flavor = flavor
        self.ty = _TYPE_NAMES[flavor]
        self.sfx = _SUFFIX[flavor]
        self.user_funcs = {f.name for f in unit.funcs}
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    # -- module -----------------------------------------------------------------

    @property
    def plain(self) -> bool:
        return self.flavor == "plain"

    def module(self) -> str:
        self.lines = [] if self.plain else [
            '#include "safegen_aa.h"',
            "",
        ]
        for f in self.unit.funcs:
            if f.body is None:
                continue
            self.function(f)
            self.emit("")
        return "\n".join(self.lines) + "\n"

    def type_str(self, t, name: str) -> str:
        """C declarator for (type, name) with double mapped to the sound type."""
        if isinstance(t, A.CType):
            base = self.ty if t.is_float() else t.kind
            return f"{base} {name}"
        if isinstance(t, A.PointerType):
            inner = self.type_str(t.pointee, f"*{name}")
            return inner
        if isinstance(t, A.ArrayType):
            dims = ""
            base = t
            while isinstance(base, A.ArrayType):
                dims += f"[{base.dim if base.dim is not None else ''}]"
                base = base.elem
            return f"{self.type_str(base, name)}{dims}"
        if isinstance(t, A.VectorType):
            return f"{self.ty} {name}[{t.lanes}]"
        raise UnsupportedFeatureError(f"type {t!r}")

    def function(self, f: A.FuncDef) -> None:
        params = ", ".join(self.type_str(p.type, p.name) for p in f.params)
        ret = self.type_str(f.return_type, "").strip() \
            if isinstance(f.return_type, A.CType) else "void"
        self.emit(f"{ret} {f.name}({params or 'void'}) {{")
        self.indent += 1
        for s in f.body.stmts:
            self.stmt(s)
        self.indent -= 1
        self.emit("}")

    # -- statements ----------------------------------------------------------------

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Compound):
            self.emit("{")
            self.indent += 1
            for sub in s.stmts:
                self.stmt(sub)
            self.indent -= 1
            self.emit("}")
            return
        if isinstance(s, A.Decl):
            self._maybe_prioritize(s)
            if isinstance(s.type, A.CType) and s.type.is_float():
                init = f" = {self.float_value(s.init)}" if s.init is not None else ""
                self.emit(f"{self.ty} {s.name}{init};")
            else:
                init = f" = {self.expr(s.init)}" if s.init is not None else ""
                self.emit(f"{self.type_str(s.type, s.name)}{init};")
            return
        if isinstance(s, A.ExprStmt):
            self._maybe_prioritize(s)
            e = s.expr
            if isinstance(e, A.Assign):
                is_float = isinstance(e.target.ty, A.CType) and e.target.ty.is_float()
                value = self.float_value(e.value) if is_float else self.expr(e.value)
                self.emit(f"{self.expr(e.target)} {e.op} {value};")
            else:
                self.emit(f"{self.expr(e)};")
            return
        if isinstance(s, A.If):
            self.emit(f"if ({self.expr(s.cond)}) {{")
            self._body(s.then)
            if s.els is not None:
                self.emit("} else {")
                self._body(s.els)
            self.emit("}")
            return
        if isinstance(s, A.For):
            init = self._inline_stmt(s.init) if s.init is not None else ""
            cond = self.expr(s.cond) if s.cond is not None else ""
            step = self.expr(s.step) if s.step is not None else ""
            self.emit(f"for ({init}; {cond}; {step}) {{")
            self._body(s.body)
            self.emit("}")
            return
        if isinstance(s, A.While):
            self.emit(f"while ({self.expr(s.cond)}) {{")
            self._body(s.body)
            self.emit("}")
            return
        if isinstance(s, A.DoWhile):
            self.emit("do {")
            self._body(s.body)
            self.emit(f"}} while ({self.expr(s.cond)});")
            return
        if isinstance(s, A.Return):
            self.emit("return;" if s.value is None
                      else f"return {self.ret_value(s.value)};")
            return
        if isinstance(s, A.Break):
            self.emit("break;")
            return
        if isinstance(s, A.Continue):
            self.emit("continue;")
            return
        if isinstance(s, A.Pragma):
            self.emit(f"#pragma safegen {s.kind}({s.arg})")
            return
        raise UnsupportedFeatureError(f"statement {type(s).__name__}")

    def ret_value(self, e: A.Expr) -> str:
        if isinstance(e.ty, A.CType) and e.ty.is_float():
            return self.float_value(e)
        return self.expr(e)

    def _body(self, s: A.Stmt) -> None:
        self.indent += 1
        if isinstance(s, A.Compound):
            for sub in s.stmts:
                self.stmt(sub)
        else:
            self.stmt(s)
        self.indent -= 1

    def _inline_stmt(self, s: A.Stmt) -> str:
        if isinstance(s, A.Decl):
            init = f" = {self.expr(s.init)}" if s.init is not None else ""
            return f"{self.type_str(s.type, s.name)}{init}"
        if isinstance(s, A.ExprStmt):
            return self.expr(s.expr)
        raise UnsupportedFeatureError("complex for-loop initializer")

    def _maybe_prioritize(self, s) -> None:
        prio = getattr(s, "prioritize", None)
        if prio is None:
            return
        if self.plain:
            self.emit(f"#pragma safegen prioritize({prio})")
        else:
            self.emit(f"aa_prioritize_{self.sfx}(&{prio});")

    # -- expressions ------------------------------------------------------------------

    def float_value(self, e: A.Expr) -> str:
        if self.plain:
            return self._plain_expr(e)
        if isinstance(e, A.FloatLit):
            if _text_is_exact(e):
                return f"aa_const_exact_{self.sfx}({e.text or repr(e.value)})"
            return f"aa_const_{self.sfx}({e.text or repr(e.value)})"
        if isinstance(e, A.IntLit):
            return f"aa_const_exact_{self.sfx}({float(e.value)!r})"
        if isinstance(e, A.IntervalLit):
            return f"aa_const_range_{self.sfx}({e.lo!r}, {e.hi!r})"
        if isinstance(e, A.BinOp) and e.op in ("+", "-", "*", "/"):
            fn = {"+": "add", "-": "sub", "*": "mul", "/": "div"}[e.op]
            return (f"aa_{fn}_{self.sfx}({self.float_value(e.lhs)}, "
                    f"{self.float_value(e.rhs)})")
        if isinstance(e, A.UnOp) and e.op == "-":
            return f"aa_neg_{self.sfx}({self.float_value(e.operand)})"
        if isinstance(e, A.Call) and e.name in MATH_FUNCS:
            args = ", ".join(self.float_value(a) for a in e.args)
            return f"aa_{e.name}_{self.sfx}({args})"
        if isinstance(e, A.Cast) and isinstance(e.to, A.CType) and e.to.is_float():
            if isinstance(e.expr.ty, A.CType) and e.expr.ty.is_integer():
                return f"aa_from_int_{self.sfx}({self.expr(e.expr)})"
            return self.float_value(e.expr)
        if isinstance(e.ty, A.CType) and e.ty.is_integer():
            return f"aa_from_int_{self.sfx}({self.expr(e)})"
        if isinstance(e, (A.Ident, A.Index)):
            return self.expr(e)
        if isinstance(e, A.Call):
            return self.expr(e)
        raise UnsupportedFeatureError(f"float expression {type(e).__name__}")

    def _plain_expr(self, e: A.Expr) -> str:
        """Ordinary C rendering (for the 'plain' annotated-source flavor)."""
        if isinstance(e, A.FloatLit):
            return e.text or repr(e.value)
        if isinstance(e, A.IntervalLit):
            mid = e.lo + (e.hi - e.lo) / 2.0
            return repr(mid)
        if isinstance(e, A.IntLit):
            return str(e.value)
        if isinstance(e, A.Ident):
            return e.name
        if isinstance(e, A.Index):
            return f"{self._plain_expr(e.base)}[{self._plain_expr(e.index)}]"
        if isinstance(e, A.BinOp):
            return (f"({self._plain_expr(e.lhs)} {e.op} "
                    f"{self._plain_expr(e.rhs)})")
        if isinstance(e, A.UnOp):
            if e.op in ("p++", "p--"):
                return f"{self._plain_expr(e.operand)}{e.op[1:]}"
            return f"{e.op}({self._plain_expr(e.operand)})"
        if isinstance(e, A.Call):
            args = ", ".join(self._plain_expr(a) for a in e.args)
            return f"{e.name}({args})"
        if isinstance(e, A.Cast):
            return f"(({e.to}){self._plain_expr(e.expr)})"
        if isinstance(e, A.Assign):
            return (f"{self._plain_expr(e.target)} {e.op} "
                    f"{self._plain_expr(e.value)}")
        if isinstance(e, A.Cond):
            return (f"({self._plain_expr(e.cond)} ? "
                    f"{self._plain_expr(e.then)} : "
                    f"{self._plain_expr(e.els)})")
        raise UnsupportedFeatureError(f"expression {type(e).__name__}")

    def expr(self, e: A.Expr) -> str:
        if self.plain:
            return self._plain_expr(e)
        if isinstance(e, A.IntLit):
            return str(e.value)
        if isinstance(e, A.FloatLit):
            return self.float_value(e)
        if isinstance(e, A.IntervalLit):
            return self.float_value(e)
        if isinstance(e, A.Ident):
            return e.name
        if isinstance(e, A.Index):
            return f"{self.expr(e.base)}[{self.expr(e.index)}]"
        if isinstance(e, A.BinOp):
            lf = isinstance(e.lhs.ty, A.CType) and e.lhs.ty.is_float()
            rf = isinstance(e.rhs.ty, A.CType) and e.rhs.ty.is_float()
            if e.op in ("<", "<=", ">", ">=", "==", "!=") and (lf or rf):
                fn = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
                      "==": "eq", "!=": "ne"}[e.op]
                return (f"aa_cmp_{fn}_{self.sfx}({self.float_value(e.lhs)}, "
                        f"{self.float_value(e.rhs)})")
            if e.op in ("+", "-", "*", "/") and (
                (isinstance(e.ty, A.CType) and e.ty.is_float()) or lf or rf
            ):
                return self.float_value(e)
            return f"({self.expr(e.lhs)} {e.op} {self.expr(e.rhs)})"
        if isinstance(e, A.UnOp):
            if e.op == "-" and isinstance(e.ty, A.CType) and e.ty.is_float():
                return self.float_value(e)
            if e.op in ("p++", "p--"):
                return f"{self.expr(e.operand)}{e.op[1:]}"
            if e.op in ("++", "--"):
                return f"{e.op}{self.expr(e.operand)}"
            return f"{e.op}({self.expr(e.operand)})"
        if isinstance(e, A.Call):
            if e.name in MATH_FUNCS:
                return self.float_value(e)
            args = ", ".join(
                self.float_value(a)
                if isinstance(a.ty, A.CType) and a.ty.is_float()
                else self.expr(a)
                for a in e.args
            )
            return f"{e.name}({args})"
        if isinstance(e, A.Assign):
            return f"{self.expr(e.target)} {e.op} {self.expr(e.value)}"
        if isinstance(e, A.Cast):
            return self.float_value(e) \
                if isinstance(e.to, A.CType) and e.to.is_float() \
                else f"(({e.to}){self.expr(e.expr)})"
        if isinstance(e, A.Cond):
            return (f"({self.expr(e.cond)} ? {self.expr(e.then)} : "
                    f"{self.expr(e.els)})")
        raise UnsupportedFeatureError(f"expression {type(e).__name__}")

"""SIMD intrinsics: recognition and SIMD-to-C lowering.

The paper's SafeGen accepts SIMD intrinsics in the *input* function and uses
IGen's SIMD-to-C compiler as a preprocessing step to scalarize the ones it
has no hand-optimized affine implementation for (Section IV-B).  This module
is that preprocessing step: it rewrites vector declarations into scalar
arrays and expands every intrinsic into per-lane scalar expressions, after
which the normal affine transformation applies.

Supported subset (the AVX/SSE double-precision core):

========================  =============================================
intrinsic                  lowering (lane i)
========================  =============================================
``_mm256_set1_pd(s)``      ``s``
``_mm256_setzero_pd()``    ``0.0``
``_mm256_set_pd(a..d)``    ``args[lanes-1-i]`` (intel reversed order)
``_mm256_loadu_pd(p)``     ``p[i]``
``_mm256_storeu_pd(p,v)``  ``p[i] = v_i``
``_mm256_add_pd(x,y)``     ``x_i + y_i``  (sub/mul/div alike)
``_mm256_sqrt_pd(x)``      ``sqrt(x_i)``
``_mm256_fmadd_pd(a,b,c)`` ``a_i * b_i + c_i``
``_mm256_max_pd(x,y)``     ``fmax(x_i, y_i)`` (min alike)
========================  =============================================

plus the ``_mm_..._pd`` 2-lane (SSE2) variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import UnsupportedFeatureError
from . import cast as A

__all__ = ["INTRINSIC_SIGNATURES", "lower_simd", "IntrinsicSig"]

_D = A.CType("double")
_V4 = A.VectorType(_D, 4)
_V2 = A.VectorType(_D, 2)
_VOID = A.CType("void")
_PD = A.PointerType(_D)


@dataclass(frozen=True)
class IntrinsicSig:
    params: Tuple[object, ...]
    result: object
    op: str  # semantic tag used by the lowering


def _sigs_for(prefix: str, vec: A.VectorType) -> Dict[str, IntrinsicSig]:
    lanes = vec.lanes
    return {
        f"{prefix}_set1_pd": IntrinsicSig((_D,), vec, "set1"),
        f"{prefix}_setzero_pd": IntrinsicSig((), vec, "setzero"),
        f"{prefix}_set_pd": IntrinsicSig((_D,) * lanes, vec, "set"),
        f"{prefix}_loadu_pd": IntrinsicSig((_PD,), vec, "load"),
        f"{prefix}_load_pd": IntrinsicSig((_PD,), vec, "load"),
        f"{prefix}_storeu_pd": IntrinsicSig((_PD, vec), _VOID, "store"),
        f"{prefix}_store_pd": IntrinsicSig((_PD, vec), _VOID, "store"),
        f"{prefix}_add_pd": IntrinsicSig((vec, vec), vec, "+"),
        f"{prefix}_sub_pd": IntrinsicSig((vec, vec), vec, "-"),
        f"{prefix}_mul_pd": IntrinsicSig((vec, vec), vec, "*"),
        f"{prefix}_div_pd": IntrinsicSig((vec, vec), vec, "/"),
        f"{prefix}_sqrt_pd": IntrinsicSig((vec,), vec, "sqrt"),
        f"{prefix}_fmadd_pd": IntrinsicSig((vec, vec, vec), vec, "fmadd"),
        f"{prefix}_max_pd": IntrinsicSig((vec, vec), vec, "fmax"),
        f"{prefix}_min_pd": IntrinsicSig((vec, vec), vec, "fmin"),
    }


INTRINSIC_SIGNATURES: Dict[str, IntrinsicSig] = {}
INTRINSIC_SIGNATURES.update(_sigs_for("_mm256", _V4))
INTRINSIC_SIGNATURES.update(_sigs_for("_mm", _V2))


def lower_simd(unit: A.TranslationUnit) -> A.TranslationUnit:
    """Scalarize all SIMD intrinsics in-place and return the unit."""
    for f in unit.funcs:
        if f.body is None:
            continue
        lowerer = _Lowerer()
        for p in f.params:
            if isinstance(p.type, A.VectorType):
                lowerer.vectors[p.name] = p.type.lanes
                p.type = A.ArrayType(_D, p.type.lanes)
        f.body = lowerer.stmt(f.body)
    return unit


class _Lowerer:
    def __init__(self) -> None:
        self.vectors: Dict[str, int] = {}

    # -- statements ------------------------------------------------------------

    def stmt(self, s: A.Stmt) -> A.Stmt:
        if isinstance(s, A.Compound):
            out: List[A.Stmt] = []
            for sub in s.stmts:
                lowered = self.stmt(sub)
                if isinstance(lowered, list):
                    out.extend(lowered)
                else:
                    out.append(lowered)
            return A.Compound(loc=s.loc, stmts=out)
        if isinstance(s, A.Decl):
            return self._decl(s)
        if isinstance(s, A.ExprStmt):
            return self._expr_stmt(s)
        if isinstance(s, A.If):
            s.then = self._as_single(self.stmt(s.then))
            if s.els is not None:
                s.els = self._as_single(self.stmt(s.els))
            return s
        if isinstance(s, A.For):
            if s.init is not None:
                s.init = self._as_single(self.stmt(s.init))
            s.body = self._as_single(self.stmt(s.body))
            return s
        if isinstance(s, (A.While, A.DoWhile)):
            s.body = self._as_single(self.stmt(s.body))
            return s
        return s

    @staticmethod
    def _as_single(s) -> A.Stmt:
        if isinstance(s, list):
            return A.Compound(stmts=s)
        return s

    def _decl(self, s: A.Decl):
        if not isinstance(s.type, A.VectorType):
            return s
        lanes = s.type.lanes
        self.vectors[s.name] = lanes
        decl = A.Decl(loc=s.loc, name=s.name, type=A.ArrayType(_D, lanes))
        if s.init is None:
            return decl
        stmts: List[A.Stmt] = [decl]
        for i in range(lanes):
            lane_val = self.lane(s.init, i, lanes)
            target = A.Index(loc=s.loc, base=A.Ident(loc=s.loc, name=s.name),
                             index=A.IntLit(loc=s.loc, value=i))
            stmts.append(A.ExprStmt(
                loc=s.loc,
                expr=A.Assign(loc=s.loc, op="=", target=target, value=lane_val),
            ))
        return stmts

    def _expr_stmt(self, s: A.ExprStmt):
        e = s.expr
        # store intrinsic
        if isinstance(e, A.Call) and e.name in INTRINSIC_SIGNATURES \
                and INTRINSIC_SIGNATURES[e.name].op == "store":
            lanes = INTRINSIC_SIGNATURES[e.name].params[1].lanes
            addr, vec = e.args
            stmts: List[A.Stmt] = []
            for i in range(lanes):
                target = self._element(addr, i, s.loc)
                stmts.append(A.ExprStmt(loc=s.loc, expr=A.Assign(
                    loc=s.loc, op="=", target=target,
                    value=self.lane(vec, i, lanes))))
            return stmts
        # vector assignment: v = <vector expr>
        if isinstance(e, A.Assign) and isinstance(e.target, A.Ident) \
                and e.target.name in self.vectors:
            lanes = self.vectors[e.target.name]
            if e.op != "=":
                raise UnsupportedFeatureError(
                    "compound assignment on vector variables is not supported"
                )
            stmts = []
            for i in range(lanes):
                target = A.Index(loc=s.loc,
                                 base=A.Ident(loc=s.loc, name=e.target.name),
                                 index=A.IntLit(loc=s.loc, value=i))
                stmts.append(A.ExprStmt(loc=s.loc, expr=A.Assign(
                    loc=s.loc, op="=", target=target,
                    value=self.lane(e.value, i, lanes))))
            return stmts
        return s

    # -- lane expansion -----------------------------------------------------------

    def lane(self, e: A.Expr, i: int, lanes: int) -> A.Expr:
        """The scalar expression for lane ``i`` of vector expression ``e``."""
        loc = e.loc
        if isinstance(e, A.Ident):
            if e.name not in self.vectors:
                raise UnsupportedFeatureError(
                    f"line {loc[0]}: {e.name!r} used as a vector but not "
                    "declared as one"
                )
            return A.Index(loc=loc, base=A.Ident(loc=loc, name=e.name),
                           index=A.IntLit(loc=loc, value=i))
        if isinstance(e, A.UnOp) and e.op == "-":
            return A.UnOp(loc=loc, op="-", operand=self.lane(e.operand, i, lanes))
        if isinstance(e, A.Call) and e.name in INTRINSIC_SIGNATURES:
            sig = INTRINSIC_SIGNATURES[e.name]
            op = sig.op
            if op == "set1":
                return e.args[0]
            if op == "setzero":
                return A.FloatLit(loc=loc, value=0.0, text="0.0")
            if op == "set":
                return e.args[lanes - 1 - i]  # Intel argument order
            if op == "load":
                return self._element(e.args[0], i, loc)
            if op in ("+", "-", "*", "/"):
                return A.BinOp(loc=loc, op=op,
                               lhs=self.lane(e.args[0], i, lanes),
                               rhs=self.lane(e.args[1], i, lanes))
            if op == "sqrt":
                return A.Call(loc=loc, name="sqrt",
                              args=[self.lane(e.args[0], i, lanes)])
            if op == "fmadd":
                return A.BinOp(
                    loc=loc, op="+",
                    lhs=A.BinOp(loc=loc, op="*",
                                lhs=self.lane(e.args[0], i, lanes),
                                rhs=self.lane(e.args[1], i, lanes)),
                    rhs=self.lane(e.args[2], i, lanes))
            if op in ("fmin", "fmax"):
                return A.Call(loc=loc, name=op,
                              args=[self.lane(e.args[0], i, lanes),
                                    self.lane(e.args[1], i, lanes)])
            raise UnsupportedFeatureError(
                f"line {loc[0]}: intrinsic {e.name} not supported"
            )
        raise UnsupportedFeatureError(
            f"line {loc[0]}: cannot scalarize vector expression "
            f"{type(e).__name__}"
        )

    @staticmethod
    def _element(addr: A.Expr, i: int, loc) -> A.Expr:
        """Lower an address expression to the element at offset ``i``."""
        if isinstance(addr, A.UnOp) and addr.op == "&" \
                and isinstance(addr.operand, A.Index):
            base = addr.operand
            return A.Index(loc=loc, base=base.base, index=A.BinOp(
                loc=loc, op="+", lhs=base.index, rhs=A.IntLit(loc=loc, value=i)))
        if isinstance(addr, A.Ident):
            return A.Index(loc=loc, base=addr, index=A.IntLit(loc=loc, value=i))
        if isinstance(addr, A.BinOp) and addr.op == "+":
            # p + j  ->  p[j + i]
            return A.Index(loc=loc, base=addr.lhs, index=A.BinOp(
                loc=loc, op="+", lhs=addr.rhs, rhs=A.IntLit(loc=loc, value=i)))
        raise UnsupportedFeatureError(
            f"line {loc[0]}: unsupported address expression for SIMD load/store"
        )

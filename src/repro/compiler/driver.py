"""The SafeGen driver: the full compilation pipeline (paper Fig. 1 + Fig. 6).

    C source
      → parse (clexer/cparser)
      → SIMD-to-C lowering (simd)
      → semantic analysis (typecheck)
      → sound constant folding (constfold)
      → three-address code (tac)
      → sound TAC optimizations (cse, dte — unless ``opt=False``)
      → [prioritize] unroll → DAG → reuse candidates → max-reuse ILP →
        per-op pragmas (repro.analysis)
      → code generation (codegen_py for execution, codegen_c for display)

The pipeline is a sequence of registered passes run by
:class:`repro.compiler.passes.PassManager`; every compile carries a
:class:`PipelineReport` with per-pass wall time and node/float-op counts.
Use :func:`compile_c` for the one-call form, or :class:`SafeGen` to keep a
configured compiler around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from ..errors import CompileError
from ..obs.trace import current_tracer
from . import cast as A
from .config import CompilerConfig
from .passes import AnalysisReport, AnalyzePass, PassManager, \
    PipelineReport, FRONTEND
from .runtime import Runtime

__all__ = ["SafeGen", "CompiledProgram", "ProgramResult", "compile_c",
           "BatchCompiler", "AnalysisReport", "PipelineReport"]


@dataclass
class ProgramResult:
    """Result of running a compiled program once.

    ``value`` is the function's return value (an affine form / interval for
    float-returning functions).  ``params`` maps parameter names to the
    (coerced, possibly mutated) argument values — output arrays are read
    from here.  ``runtime`` exposes the context and statistics.
    """

    value: Any
    params: Dict[str, Any]
    runtime: Runtime
    elapsed_s: float = 0.0

    def interval(self):
        if hasattr(self.value, "interval"):
            return self.value.interval()
        return self.value

    def acc_bits(self) -> float:
        from ..aa import acc_bits

        return acc_bits(self.value)

    @property
    def stats(self):
        return self.runtime.stats


class CompiledProgram:
    """A sound, runnable program produced by SafeGen.

    Calling the program runs the generated Python against a *fresh* runtime:
    plain floats (and nested lists of floats) are converted to sound inputs
    carrying one error symbol of ``uncertainty_ulps`` ulps each, matching
    the paper's experimental setup; affine/interval values pass through.
    """

    def __init__(self, config: CompilerConfig, unit: A.TranslationUnit,
                 entry: str, python_source: str, c_source: str,
                 priority_map: Dict[int, str],
                 report: Optional[AnalysisReport],
                 pipeline_report: Optional[PipelineReport] = None,
                 dumps: Optional[Dict[str, str]] = None,
                 diagnostics: Optional[List[str]] = None) -> None:
        self.config = config
        self.unit = unit
        self.entry = entry
        self.python_source = python_source
        self.c_source = c_source
        self.priority_map = priority_map
        self.analysis_report = report
        self.pipeline_report = pipeline_report
        self.dumps = dumps if dumps is not None else {}
        self.diagnostics = diagnostics if diagnostics is not None else []
        namespace: Dict[str, Any] = {}
        exec(compile(python_source, f"<safegen:{entry}>", "exec"), namespace)
        self._namespace = namespace
        self._fn = namespace[entry]
        self._params = [p.name for p in unit.func(entry).params]

    def make_runtime(self, track_provenance: bool = False) -> Runtime:
        return Runtime(
            mode=self.config.runtime_mode(),
            ctx=self.config.make_context(track_provenance=track_provenance),
            decision_policy=self.config.decision_policy,
        )

    def input_origin(self, param_name: str) -> str:
        """The provenance string attached to one input's error symbol.

        Parameters carry no own source location, so inputs anchor at the
        function definition: ``"<src>:<line>:<col> input <name>"``.
        """
        func = self.unit.func(self.entry)
        line, col = getattr(func, "loc", (0, 0)) or (0, 0)
        src = self.config.source_name or "<src>"
        return f"{src}:{line}:{col} input {param_name}"

    def __call__(self, *args, uncertainty_ulps: float = 1.0,
                 runtime: Optional[Runtime] = None,
                 track_provenance: bool = False, **kwargs) -> ProgramResult:
        rt = runtime if runtime is not None \
            else self.make_runtime(track_provenance=track_provenance)
        bound: Dict[str, Any] = {}
        if len(args) > len(self._params):
            raise TypeError(
                f"{self.entry}() takes {len(self._params)} arguments, "
                f"got {len(args)}"
            )
        for name, value in zip(self._params, args):
            bound[name] = value
        for name, value in kwargs.items():
            if name not in self._params:
                raise TypeError(f"{self.entry}() has no parameter {name!r}")
            if name in bound:
                raise TypeError(f"duplicate argument {name!r}")
            bound[name] = value
        missing = [p for p in self._params if p not in bound]
        if missing:
            raise TypeError(f"missing arguments: {', '.join(missing)}")
        func = self.unit.func(self.entry)
        coerced: Dict[str, Any] = {}
        for p in func.params:
            v = bound[p.name]
            if isinstance(p.type, A.CType) and p.type.is_integer():
                coerced[p.name] = int(v)
            else:
                coerced[p.name] = rt.coerce_input(
                    v, uncertainty_ulps, origin=self.input_origin(p.name))
        with current_tracer().span(f"exec:{self.entry}") as sp:
            value = self._fn(rt, *(coerced[p] for p in self._params))
        if sp.recording:
            stats = rt.stats
            sp.set(mode=self.config.runtime_mode(),
                   aa_ops=stats.total_ops(),
                   fused_symbols=stats.n_fused_symbols,
                   condensations=getattr(stats, "n_condensations", 0))
        return ProgramResult(value=value, params=coerced, runtime=rt,
                             elapsed_s=sp.wall_s)

    def run_batch(self, rows, uncertainty_ulps: float = 1.0,
                  track_provenance: bool = False):
        """Evaluate this program over many input boxes at once.

        ``rows`` is a sequence of positional-argument lists, one per input
        box.  Batchable configurations (AA mode, f64, vectorized kernels,
        non-RANDOM fusion, numpy present) run on the row-vectorized batched
        runtime with cohort splitting; anything else loops over the scalar
        runtime.  Returns a :class:`repro.batchrt.BatchRunResult`.
        """
        from ..batchrt import run_batch as _run_batch

        return _run_batch(self, rows, uncertainty_ulps=uncertainty_ulps,
                          track_provenance=track_provenance)


class SafeGen:
    """The SafeGen source-to-source compiler (Sound Affine Generator)."""

    def __init__(self, config: Optional[CompilerConfig] = None) -> None:
        self.config = config if config is not None else CompilerConfig()

    def compile(self, source: str, entry: Optional[str] = None,
                emit_after: Optional[Iterable[str]] = None
                ) -> CompiledProgram:
        """Compile C source into a sound runnable program.

        ``entry`` names the function to expose (default: the last function
        defined with a body).  ``emit_after`` names passes whose
        intermediate output should be kept on ``CompiledProgram.dumps``.
        """
        manager = PassManager.for_config(self.config, emit_after=emit_after)
        state, report = manager.run(source, entry=entry)
        if state.python_source is None or state.c_source is None:
            raise CompileError(
                "pipeline produced no output (missing codegen passes?)")
        return CompiledProgram(self.config, state.unit, state.entry,
                               state.python_source, state.c_source,
                               state.priority_map, state.analysis_report,
                               pipeline_report=report, dumps=state.dumps,
                               diagnostics=state.diagnostics)

    def annotate(self, source: str, entry: Optional[str] = None) -> str:
        """Run only the preprocessing of Fig. 6 and return the input program
        (in TAC form) annotated with ``#pragma safegen prioritize`` lines —
        the paper's Fig. 7 output."""
        from .codegen_c import generate_c

        passes = list(FRONTEND) + [AnalyzePass(force=True)]
        manager = PassManager(self.config, passes=passes)
        state, _ = manager.run(source, entry=entry)
        return generate_c(state.unit, "plain")


class BatchCompiler:
    """SafeGen behind the service layer: cached, optionally parallel.

    A thin facade over :class:`repro.service.CompileService` +
    :class:`repro.service.BatchEngine` for callers that think in terms of
    the compiler rather than the service: ``compile`` is a drop-in cached
    :meth:`SafeGen.compile`, ``compile_many`` fans a list of compilation
    requests out over a process pool (``jobs > 1``) and returns
    :class:`CompiledProgram` objects in request order.  Parallel workers
    write through to the shared cache entries, so the parent's cache is warm
    afterwards.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 maxsize: int = 128) -> None:
        from ..service import CompileService

        self.jobs = jobs
        self.service = CompileService(cache_dir=cache_dir, maxsize=maxsize)

    @property
    def stats(self):
        return self.service.stats

    def compile(self, source: str,
                config: Optional[str | CompilerConfig] = None,
                k: int = 16, entry: Optional[str] = None,
                **overrides) -> CompiledProgram:
        return self.service.compile(source, config, k=k, entry=entry,
                                    **overrides)

    def compile_many(self, requests: List[Any],
                     jobs: Optional[int] = None) -> List[CompiledProgram]:
        """Compile a batch.  Each request is a C source string, a
        ``(source, config)`` / ``(source, config, k)`` tuple, or a
        :class:`repro.service.CompileJob`."""
        from ..service import BatchEngine, CacheEntry, CompileJob

        batch: List[CompileJob] = []
        for req in requests:
            if isinstance(req, CompileJob):
                batch.append(req)
            elif isinstance(req, str):
                batch.append(CompileJob(source=req))
            else:
                source, config, *rest = req
                batch.append(CompileJob(source=source, config=config,
                                        k=rest[0] if rest else 16))
        n_jobs = self.jobs if jobs is None else jobs
        engine = BatchEngine(jobs=n_jobs, service=self.service)
        results = engine.run(batch)
        programs: List[CompiledProgram] = []
        for job, result in zip(batch, results):
            if not result.ok:
                raise CompileError(
                    f"batch compile failed for job {result.index}: "
                    f"{result.error}")
            value = result.value
            cfg = job.resolved_config()
            cache_entry = CacheEntry(
                key=cfg.cache_key(job.source, entry=job.entry),
                entry=value["entry"],
                config=cfg.to_dict(),
                unit_blob=value["unit_blob"],
                python_source=value["python_source"],
                c_source=value["c_source"],
                priority_map=dict(value["priority_map"]),
                report=None,
                compile_s=value["compile_s"],
                pipeline=value.get("pipeline"),
            )
            # Warm the parent cache with what the workers produced; prefer
            # an existing entry (it carries the full analysis report).
            existing = self.service.cache.get(cache_entry.key) \
                if cache_entry.key in self.service.cache else None
            if existing is not None:
                cache_entry = existing
            else:
                self.service.cache.put(cache_entry.key, cache_entry)
            programs.append(self.service.program_from_entry(cache_entry, cfg))
        return programs


def compile_c(source: str, config: Optional[str | CompilerConfig] = None,
              k: int = 16, entry: Optional[str] = None,
              **overrides) -> CompiledProgram:
    """One-call convenience: C source in, sound runnable program out.

    ``config`` may be a paper-style string (``"f64a-dspv"``, ``"ia-f64"``)
    or a :class:`CompilerConfig`; remaining keyword arguments override
    config fields.
    """
    if config is None:
        cfg = CompilerConfig(k=k, **overrides)
    elif isinstance(config, str):
        cfg = CompilerConfig.from_string(config, k=k, **overrides)
    else:
        cfg = config
    return SafeGen(cfg).compile(source, entry=entry)

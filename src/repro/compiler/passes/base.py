"""Pass-manager foundations: compilation state, the pass protocol, and
per-pass instrumentation.

The SafeGen pipeline (paper Fig. 1 + Fig. 6) is expressed as a sequence of
:class:`Pass` objects transforming one shared :class:`CompilationState`.
Each pass is timed and measured (AST/TAC node count and floating-point
operation count before/after); the measurements accumulate into a
:class:`PipelineReport` that rides on :class:`CompiledProgram`, in
``BenchResult`` rows, and in ``ServiceStats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .. import cast as A
from ..tac import _is_float_op

__all__ = [
    "AnalysisReport",
    "CompilationState",
    "Pass",
    "PassReport",
    "PipelineReport",
    "unit_metrics",
]


@dataclass
class AnalysisReport:
    """What the static analysis did (Section VI) — attached to programs
    compiled with prioritization."""

    dag_nodes: int = 0
    candidates: int = 0
    total_profit: int = 0
    annotated_statements: int = 0
    solver: str = "none"
    feasible: bool = False

    def __str__(self) -> str:
        if not self.feasible:
            return "analysis: no beneficial prioritization found"
        return (
            f"analysis: {self.dag_nodes} nodes, {self.candidates} reuse "
            f"candidates, profit {self.total_profit}, "
            f"{self.annotated_statements} ops annotated ({self.solver})"
        )


@dataclass
class CompilationState:
    """Everything the pipeline knows about one compilation in flight.

    Passes mutate this in place: the frontend fills ``unit`` and resolves
    ``entry``; transformation passes rewrite ``unit``; the analysis pass
    fills ``priority_map``/``analysis_report``; the codegens fill
    ``python_source``/``c_source``.  ``dumps`` collects the intermediate
    program text after passes named in the manager's ``emit_after`` set
    (the CLI's ``--emit-after``), and ``diagnostics`` collects free-form
    notes passes want surfaced (e.g. what an optimization removed).
    """

    source: str
    config: Any
    entry: Optional[str] = None
    unit: Optional[A.TranslationUnit] = None
    priority_map: Dict[int, str] = field(default_factory=dict)
    analysis_report: Optional[AnalysisReport] = None
    python_source: Optional[str] = None
    c_source: Optional[str] = None
    diagnostics: List[str] = field(default_factory=list)
    dumps: Dict[str, str] = field(default_factory=dict)
    # Provenance bookkeeping for the width diagnostics: CSE appends
    # (kept_origin, merged_origin) pairs when it folds a duplicate
    # expression into an earlier one; DTE appends the origins of the
    # declarations it strips.  Origins are "<line>:<col>" source positions.
    origin_merges: List[Tuple[str, str]] = field(default_factory=list)
    origins_dropped: List[str] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.diagnostics.append(message)


class Pass:
    """One pipeline stage.  Subclasses set ``name`` (the registry key used
    by ``CompilerConfig.passes`` and ``--passes``) and implement
    :meth:`run`, mutating the state in place."""

    name: str = "?"

    def run(self, state: CompilationState) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<pass {self.name}>"


def unit_metrics(unit: Optional[A.TranslationUnit]) -> Tuple[int, int]:
    """(AST node count, floating-point operation count) of a unit.

    The float-op count is the number of expression nodes the TAC/analysis
    layers treat as one affine-library call at run time (``_is_float_op``);
    it is only meaningful once types are annotated, and 0 before parsing.
    """
    if unit is None:
        return 0, 0
    nodes = 0
    float_ops = 0
    stack: List[Any] = [unit]
    while stack:
        node = stack.pop()
        nodes += 1
        if isinstance(node, A.Expr) and _is_float_op(node):
            float_ops += 1
        for f in getattr(node, "__dataclass_fields__", {}):
            v = getattr(node, f)
            if isinstance(v, A.Node):
                stack.append(v)
            elif isinstance(v, list):
                stack.extend(item for item in v if isinstance(item, A.Node))
    return nodes, float_ops


@dataclass
class PassReport:
    """Instrumentation for one executed pass."""

    name: str
    wall_s: float = 0.0
    nodes_before: int = 0
    nodes_after: int = 0
    float_ops_before: int = 0
    float_ops_after: int = 0

    @property
    def nodes_delta(self) -> int:
        return self.nodes_after - self.nodes_before

    @property
    def float_ops_delta(self) -> int:
        return self.float_ops_after - self.float_ops_before

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_s": round(self.wall_s, 6),
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "float_ops_before": self.float_ops_before,
            "float_ops_after": self.float_ops_after,
        }


@dataclass
class PipelineReport:
    """The per-pass instrumentation of one full compilation."""

    passes: List[PassReport] = field(default_factory=list)
    # Where optimization passes rewrote provenance: CSE merge pairs
    # (kept_origin, merged_origin) and the origins DTE dropped outright.
    origin_merges: List[Tuple[str, str]] = field(default_factory=list)
    origins_dropped: List[str] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return sum(p.wall_s for p in self.passes)

    @property
    def float_ops(self) -> int:
        """Float-op count of the final program (0 when nothing ran)."""
        return self.passes[-1].float_ops_after if self.passes else 0

    @property
    def float_ops_removed(self) -> int:
        """Float ops eliminated after TAC introduced them (optimization
        wins; constant folding removes ops *before* TAC counts them)."""
        removed = 0
        for p in self.passes:
            if p.float_ops_after < p.float_ops_before:
                removed += p.float_ops_before - p.float_ops_after
        return removed

    def timings(self) -> Dict[str, float]:
        """Pass name -> wall seconds (summed over duplicate names)."""
        out: Dict[str, float] = {}
        for p in self.passes:
            out[p.name] = out.get(p.name, 0.0) + p.wall_s
        return out

    def pass_report(self, name: str) -> Optional[PassReport]:
        for p in self.passes:
            if p.name == name:
                return p
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "total_s": round(self.total_s, 6),
            "passes": [p.to_dict() for p in self.passes],
            "origin_merges": [list(pair) for pair in self.origin_merges],
            "origins_dropped": list(self.origins_dropped),
        }

    def __str__(self) -> str:
        width = max([len(p.name) for p in self.passes] + [4])
        lines = [f"{'pass'.ljust(width)}  {'ms':>9}  {'nodes':>7}  "
                 f"{'fops':>5}  {'Δfops':>5}"]
        for p in self.passes:
            lines.append(
                f"{p.name.ljust(width)}  {p.wall_s * 1e3:>9.3f}  "
                f"{p.nodes_after:>7}  {p.float_ops_after:>5}  "
                f"{p.float_ops_delta:>+5}")
        lines.append(f"{'total'.ljust(width)}  {self.total_s * 1e3:>9.3f}")
        return "\n".join(lines)

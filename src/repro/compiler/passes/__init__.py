"""Pass-manager architecture for the SafeGen pipeline.

Importing this package registers the builtin stage passes (``stages``) and
the sound TAC optimizations (``optim``) in the pass registry.
"""

from .base import AnalysisReport, CompilationState, Pass, PassReport, \
    PipelineReport, unit_metrics
from .manager import BACKEND, FRONTEND, OPTIMIZATIONS, PassManager, \
    available_passes, default_pipeline, register_pass, resolve_pass
from .optim import CsePass, DeadTempPass
from .stages import AnalyzePass, CodegenCPass, CodegenPyPass, ConstFoldPass, \
    ParsePass, RenamePass, RetypecheckPass, SimdPass, TacPass, \
    TypecheckPass, c_flavor

__all__ = [
    "AnalysisReport",
    "AnalyzePass",
    "BACKEND",
    "CodegenCPass",
    "CodegenPyPass",
    "CompilationState",
    "ConstFoldPass",
    "CsePass",
    "DeadTempPass",
    "FRONTEND",
    "OPTIMIZATIONS",
    "ParsePass",
    "Pass",
    "PassManager",
    "PassReport",
    "PipelineReport",
    "RenamePass",
    "RetypecheckPass",
    "SimdPass",
    "TacPass",
    "TypecheckPass",
    "available_passes",
    "c_flavor",
    "default_pipeline",
    "register_pass",
    "resolve_pass",
    "unit_metrics",
]

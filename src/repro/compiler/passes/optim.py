"""Sound TAC-level optimization passes: CSE and dead-temporary elimination.

Both passes run on the TAC form (one float op per statement) and preserve
the rounding behaviour of every value the program still computes:

* **CSE** replaces a float operation whose operator and operands are
  syntactically identical to one already available with a copy of the
  earlier result.  Re-running an identical rounded operation is
  bit-identical to reusing its result, so the replacement is exact — and
  in the affine world it is an improvement beyond speed, because the reused
  result carries the *same* noise symbols instead of fresh ones, keeping
  correlations that subtraction can cancel.  No commutative reordering is
  attempted; only literally identical operand lists match.

* **DTE** removes declarations whose value is never read.  Only
  side-effect-free initializers are eligible: division, ``sqrt`` and
  ``log`` can raise on invalid ranges at affine-evaluation time, so
  statements containing them are kept even when dead.

Neither pass touches statements carrying a ``prioritize`` annotation —
those anchor the analysis/runtime protection protocol.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import cast as A
from ..tac import _is_float_op
from ..typecheck import MATH_FUNCS
from .base import CompilationState, Pass
from .manager import register_pass

__all__ = ["CsePass", "DeadTempPass"]

_DOUBLE = A.CType("double")

# Calls that cannot raise for any finite input range (``sqrt``/``log`` have
# domain errors; division can hit a zero-straddling range).
_SAFE_CALLS = frozenset({"fabs", "fmin", "fmax", "exp"})


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------

def _root_name(e: A.Expr) -> Optional[str]:
    """The variable a store/increment ultimately writes through."""
    while isinstance(e, (A.Index, A.UnOp, A.Cast)):
        if isinstance(e, A.Index):
            e = e.base
        elif isinstance(e, A.UnOp):
            e = e.operand
        else:
            e = e.expr
    return e.name if isinstance(e, A.Ident) else None


_MUTATING_UNOPS = ("++", "--", "p++", "p--", "&")


def assigned_names(node, acc: Optional[Set[str]] = None) -> Set[str]:
    """Every name a statement subtree may write (or alias via ``&``)."""
    if acc is None:
        acc = set()
    if isinstance(node, A.Decl):
        acc.add(node.name)
    elif isinstance(node, A.Assign):
        name = _root_name(node.target)
        if name is not None:
            acc.add(name)
    elif isinstance(node, A.UnOp) and node.op in _MUTATING_UNOPS:
        name = _root_name(node.operand)
        if name is not None:
            acc.add(name)
    for f in getattr(node, "__dataclass_fields__", {}):
        v = getattr(node, f)
        if isinstance(v, A.Node):
            assigned_names(v, acc)
        elif isinstance(v, list):
            for item in v:
                if isinstance(item, A.Node):
                    assigned_names(item, acc)
    return acc


def _has_impure_call(node) -> bool:
    """Whether the subtree calls anything outside the math whitelist."""
    if isinstance(node, A.Call) and node.name not in MATH_FUNCS:
        return True
    for f in getattr(node, "__dataclass_fields__", {}):
        v = getattr(node, f)
        if isinstance(v, A.Node) and _has_impure_call(v):
            return True
        if isinstance(v, list):
            for item in v:
                if isinstance(item, A.Node) and _has_impure_call(item):
                    return True
    return False


# ---------------------------------------------------------------------------
# common-subexpression elimination
# ---------------------------------------------------------------------------

# An availability entry: expression key -> (holder variable, operand names,
# source location of the defining expression).
_Env = Dict[tuple, Tuple[str, Set[str], tuple]]


def _loc_str(loc) -> str:
    """A ``"<line>:<col>"`` rendering of an AST location tuple."""
    line, col = loc or (0, 0)
    return f"{line}:{col}"


def _operand_key(e: A.Expr) -> Optional[tuple]:
    """Key for a *simple* operand; None disqualifies the expression.

    Literal keys use ``float.hex`` so that ``0.0`` and ``-0.0`` (equal under
    ``==`` but not bit-identical) never match each other.
    """
    if isinstance(e, A.Ident):
        return ("id", e.name)
    if isinstance(e, A.IntLit):
        return ("int", e.value)
    if isinstance(e, A.FloatLit):
        return ("flt", float(e.value).hex())
    if isinstance(e, A.IntervalLit):
        return ("ivl", float(e.lo).hex(), float(e.hi).hex())
    return None


def _expr_key(e: A.Expr) -> Optional[Tuple[tuple, Set[str]]]:
    """(key, operand names) for a pure float op over simple operands."""
    if isinstance(e, A.BinOp):
        lhs, rhs = _operand_key(e.lhs), _operand_key(e.rhs)
        if lhs is None or rhs is None:
            return None
        key = ("bin", e.op, lhs, rhs)
        operands = [e.lhs, e.rhs]
    elif isinstance(e, A.UnOp):
        op = _operand_key(e.operand)
        if op is None:
            return None
        key = ("un", e.op, op)
        operands = [e.operand]
    elif isinstance(e, A.Call):
        arg_keys = [_operand_key(a) for a in e.args]
        if any(k is None for k in arg_keys):
            return None
        key = ("call", e.name, tuple(arg_keys))
        operands = list(e.args)
    else:
        return None
    names = {o.name for o in operands if isinstance(o, A.Ident)}
    return key, names


def _kill(env: _Env, names: Set[str]) -> None:
    if not names:
        return
    for key in [k for k, (holder, used, _loc) in env.items()
                if holder in names or (used & names)]:
        del env[key]


class _Cse:
    """One function's CSE walk.  ``env`` maps available-expression keys to
    the variable holding the result; control flow copies and kills it."""

    def __init__(self) -> None:
        self.replaced = 0
        # (kept_origin, merged_origin) "<line>:<col>" pairs, one per reuse —
        # the width diagnostics use these to explain why a source position
        # never appears in the noise-symbol provenance.
        self.merges: List[Tuple[str, str]] = []

    def block(self, stmts: List[A.Stmt], env: _Env) -> None:
        for s in stmts:
            self.stmt(s, env)

    def stmt(self, s: A.Stmt, env: _Env) -> None:
        if isinstance(s, A.Compound):
            # Post-alpha-rename names are function-unique, so nested blocks
            # share the enclosing environment.
            self.block(s.stmts, env)
        elif isinstance(s, A.Decl):
            self._decl(s, env)
        elif isinstance(s, A.ExprStmt):
            self._expr_stmt(s, env)
        elif isinstance(s, A.If):
            _kill(env, assigned_names(s.cond))
            self.stmt(s.then, dict(env))
            if s.els is not None:
                self.stmt(s.els, dict(env))
            _kill(env, assigned_names(s))
        elif isinstance(s, (A.For, A.While, A.DoWhile)):
            # The body may run many times: anything the loop writes is
            # unavailable both inside (back-edge) and after it.
            _kill(env, assigned_names(s))
            self.stmt(s.body, dict(env))
        # Return/Break/Continue/Pragma: nothing to do (post-TAC their
        # expressions are simple).

    def _decl(self, s: A.Decl, env: _Env) -> None:
        if s.init is None:
            return
        if _has_impure_call(s.init):
            env.clear()
            return
        if not _is_float_op(s.init) or s.prioritize is not None:
            return
        keyed = _expr_key(s.init)
        if keyed is None:
            return
        key, operand_names = keyed
        hit = env.get(key)
        if hit is not None:
            self.merges.append((_loc_str(hit[2]), _loc_str(s.init.loc)))
            ident = A.Ident(loc=s.init.loc, name=hit[0])
            ident.ty = s.init.ty
            s.init = ident
            s.stmt_id = None
            self.replaced += 1
        elif isinstance(s.type, A.CType) and s.type.is_float():
            env[key] = (s.name, operand_names, s.init.loc)

    def _expr_stmt(self, s: A.ExprStmt, env: _Env) -> None:
        e = s.expr
        if _has_impure_call(e):
            env.clear()
            return
        if not isinstance(e, A.Assign):
            _kill(env, assigned_names(e))
            return
        target_name = e.target.name if isinstance(e.target, A.Ident) else None
        if _is_float_op(e.value) and s.prioritize is None:
            keyed = _expr_key(e.value)
            if keyed is not None:
                key, operand_names = keyed
                hit = env.get(key)
                if hit is not None and hit[0] != target_name:
                    self.merges.append(
                        (_loc_str(hit[2]), _loc_str(e.value.loc)))
                    ident = A.Ident(loc=e.value.loc, name=hit[0])
                    ident.ty = e.value.ty
                    e.value = ident
                    s.stmt_id = None
                    self.replaced += 1
                    _kill(env, assigned_names(s))
                    return
                _kill(env, assigned_names(s))
                if target_name is not None and \
                        target_name not in operand_names and \
                        isinstance(e.target.ty, A.CType) and \
                        e.target.ty.is_float():
                    env[key] = (target_name, operand_names, e.value.loc)
                return
        _kill(env, assigned_names(s))


@register_pass("cse")
class CsePass(Pass):
    """Common-subexpression elimination over pure float ops (TAC form)."""

    def run(self, state: CompilationState) -> None:
        total = 0
        for f in state.unit.funcs:
            if f.body is None:
                continue
            walker = _Cse()
            walker.block(f.body.stmts, {})
            total += walker.replaced
            state.origin_merges.extend(walker.merges)
        if total:
            state.note(f"cse: reused {total} redundant float op(s)")


# ---------------------------------------------------------------------------
# dead-temporary elimination
# ---------------------------------------------------------------------------

def _count_ident_uses(node, acc: Dict[str, int]) -> None:
    if isinstance(node, A.Ident):
        acc[node.name] = acc.get(node.name, 0) + 1
    for f in getattr(node, "__dataclass_fields__", {}):
        v = getattr(node, f)
        if isinstance(v, A.Node):
            _count_ident_uses(v, acc)
        elif isinstance(v, list):
            for item in v:
                if isinstance(item, A.Node):
                    _count_ident_uses(item, acc)


def _init_is_removable(e: Optional[A.Expr]) -> bool:
    """Whether dropping this initializer can change observable behaviour.

    Division and ``sqrt``/``log`` calls can raise for some input ranges at
    affine-evaluation time, so they must execute even if their result is
    never read.
    """
    if e is None:
        return True
    if isinstance(e, (A.IntLit, A.FloatLit, A.IntervalLit, A.Ident, A.Index)):
        return True
    if isinstance(e, A.BinOp):
        return e.op in ("+", "-", "*") and _init_is_removable(e.lhs) \
            and _init_is_removable(e.rhs)
    if isinstance(e, A.UnOp):
        return e.op in ("-", "+", "!", "~") and _init_is_removable(e.operand)
    if isinstance(e, A.Call):
        return e.name in _SAFE_CALLS and all(_init_is_removable(a)
                                             for a in e.args)
    if isinstance(e, A.Cast):
        return _init_is_removable(e.expr)
    return False


def _dead_decls(func: A.FuncDef) -> Dict[int, tuple]:
    """id() -> source loc of Decl statements provably dead this round."""
    uses: Dict[str, int] = {}
    _count_ident_uses(func, uses)
    dead: Dict[int, tuple] = {}

    def visit(node) -> None:
        for f in getattr(node, "__dataclass_fields__", {}):
            v = getattr(node, f)
            items = v if isinstance(v, list) else \
                [v] if isinstance(v, A.Node) else []
            for item in items:
                # Only statement-list members can be stripped; a Decl in a
                # single-statement position (e.g. an If arm) stays put.
                if isinstance(v, list) and isinstance(item, A.Decl) \
                        and isinstance(item.type, A.CType) \
                        and item.prioritize is None \
                        and uses.get(item.name, 0) == 0 \
                        and _init_is_removable(item.init):
                    dead[id(item)] = getattr(item, "loc", (0, 0))
                if isinstance(item, A.Node):
                    visit(item)

    visit(func)
    return dead


def _strip_decls(node, dead: Dict[int, tuple]) -> None:
    """Remove dead Decl statements from every statement list in place."""
    for f in getattr(node, "__dataclass_fields__", {}):
        v = getattr(node, f)
        if isinstance(v, list):
            kept = [item for item in v if id(item) not in dead]
            if len(kept) != len(v):
                v[:] = kept
            for item in kept:
                if isinstance(item, A.Node):
                    _strip_decls(item, dead)
        elif isinstance(v, A.Node):
            _strip_decls(v, dead)


@register_pass("dte")
class DeadTempPass(Pass):
    """Dead-temporary elimination: drop never-read, non-trapping decls."""

    def run(self, state: CompilationState) -> None:
        total = 0
        for f in state.unit.funcs:
            if f.body is None:
                continue
            while True:
                dead = _dead_decls(f)
                if not dead:
                    break
                _strip_decls(f.body, dead)
                state.origins_dropped.extend(
                    _loc_str(loc) for loc in dead.values())
                total += len(dead)
        if total:
            state.note(f"dte: removed {total} dead declaration(s)")

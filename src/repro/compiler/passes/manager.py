"""The pass manager: a declared pipeline of registered passes, run with
per-pass instrumentation.

Passes register under a short name (``@register_pass("tac")``); a pipeline
is a list of names (``CompilerConfig.passes`` / CLI ``--passes``) or pass
instances.  ``PassManager.run`` executes the pipeline over one
:class:`CompilationState`, timing each pass and measuring the unit before
and after, and returns the state with a :class:`PipelineReport` attached.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Type, Union

from ...errors import CompileError
from ...obs.trace import current_tracer
from .base import CompilationState, Pass, PassReport, PipelineReport, \
    unit_metrics

__all__ = [
    "PassManager",
    "available_passes",
    "default_pipeline",
    "register_pass",
    "resolve_pass",
]

_REGISTRY: Dict[str, Type[Pass]] = {}

#: The classic SafeGen stage order (paper Fig. 1 + Fig. 6).
FRONTEND = ("parse", "simd", "typecheck", "rename", "constfold", "tac",
            "retypecheck")
#: Sound TAC-level optimizations (on by default; dropped by ``--no-opt``).
OPTIMIZATIONS = ("cse", "dte")
BACKEND = ("analyze", "codegen-py", "codegen-c")


def register_pass(name: str):
    """Class decorator: make ``cls`` constructible by name in pipelines."""

    def deco(cls: Type[Pass]) -> Type[Pass]:
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def available_passes() -> List[str]:
    """All registered pass names (importing the package registers the
    builtin stages)."""
    from . import stages, optim  # noqa: F401  (import for side effect)

    return sorted(_REGISTRY)


def resolve_pass(spec: Union[str, Pass]) -> Pass:
    if isinstance(spec, Pass):
        return spec
    from . import stages, optim  # noqa: F401  (import for side effect)

    cls = _REGISTRY.get(spec)
    if cls is None:
        raise CompileError(
            f"unknown pass {spec!r} (available: {', '.join(sorted(_REGISTRY))})"
        )
    return cls()


def default_pipeline(config) -> List[str]:
    """The pipeline a config compiles with when it does not name one."""
    names = list(FRONTEND)
    if getattr(config, "opt", True):
        names.extend(OPTIMIZATIONS)
    names.extend(BACKEND)
    return names


class PassManager:
    """Runs a declared pipeline over a compilation, instrumented.

    ``passes`` may mix registered names and pass instances; ``None`` takes
    ``config.passes`` (when set) or the default pipeline for the config.
    ``emit_after`` names passes whose output should be dumped as plain C
    into ``state.dumps`` (the CLI's ``--emit-after``).
    """

    def __init__(self, config,
                 passes: Optional[Sequence[Union[str, Pass]]] = None,
                 emit_after: Optional[Iterable[str]] = None) -> None:
        self.config = config
        if passes is None:
            passes = getattr(config, "passes", None) or \
                default_pipeline(config)
        self.passes: List[Pass] = [resolve_pass(p) for p in passes]
        self.emit_after = set(emit_after or ())
        unknown = self.emit_after - {p.name for p in self.passes}
        if unknown:
            raise CompileError(
                f"--emit-after names passes not in the pipeline: "
                f"{', '.join(sorted(unknown))}")

    @classmethod
    def for_config(cls, config,
                   emit_after: Optional[Iterable[str]] = None
                   ) -> "PassManager":
        return cls(config, emit_after=emit_after)

    def run(self, source: str, entry: Optional[str] = None
            ) -> tuple[CompilationState, PipelineReport]:
        state = CompilationState(source=source, config=self.config,
                                 entry=entry)
        report = PipelineReport()
        tracer = current_tracer()
        for p in self.passes:
            nodes_before, fops_before = unit_metrics(state.unit)
            # The span measures the pass even when tracing is disabled
            # (DisabledSpan self-times), so the PipelineReport wall time
            # and the exported span are the same number by construction.
            with tracer.span(f"pass:{p.name}") as sp:
                p.run(state)
            nodes_after, fops_after = unit_metrics(state.unit)
            sp.set(nodes_before=nodes_before, nodes_after=nodes_after,
                   float_ops_before=fops_before, float_ops_after=fops_after)
            report.passes.append(PassReport(
                name=p.name, wall_s=sp.wall_s,
                nodes_before=nodes_before, nodes_after=nodes_after,
                float_ops_before=fops_before, float_ops_after=fops_after,
            ))
            if p.name in self.emit_after:
                state.dumps[p.name] = self._dump(state)
        report.origin_merges = list(state.origin_merges)
        report.origins_dropped = list(state.origins_dropped)
        return state, report

    @staticmethod
    def _dump(state: CompilationState) -> str:
        """Plain-C rendering of the unit as it stands (AST or TAC form)."""
        if state.unit is None:
            return state.source
        from ..codegen_c import generate_c

        return generate_c(state.unit, "plain")

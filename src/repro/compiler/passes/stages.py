"""The classic SafeGen stages, wrapped as registered passes.

Each pass delegates to the existing stage module (``cparser``, ``simd``,
``typecheck``, ``rename``, ``constfold``, ``tac``, ``repro.analysis``,
``codegen_py``/``codegen_c``); the pass layer adds only the shared state
plumbing and the instrumentation hooks of the manager.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ...errors import CompileError
from .. import cast as A
from ..codegen_c import generate_c
from ..codegen_py import generate_python
from ..constfold import fold_constants
from ..cparser import parse
from ..rename import alpha_rename
from ..simd import lower_simd
from ..tac import to_tac
from ..typecheck import typecheck
from .base import AnalysisReport, CompilationState, Pass
from .manager import register_pass

__all__ = [
    "AnalyzePass",
    "CodegenCPass",
    "CodegenPyPass",
    "ConstFoldPass",
    "ParsePass",
    "RenamePass",
    "RetypecheckPass",
    "SimdPass",
    "TacPass",
    "TypecheckPass",
    "c_flavor",
]


def c_flavor(config) -> str:
    """Which C dialect the C backend should emit for a config."""
    from ...aa import Precision

    if config.mode == "ia":
        return "ia-f64"
    if config.mode == "ia_dd":
        return "ia-dd"
    return "aa-dda" if config.precision is Precision.DD else "aa-f64a"


@register_pass("parse")
class ParsePass(Pass):
    """Lexer + parser; also resolves the entry function (default: the last
    function defined with a body)."""

    def run(self, state: CompilationState) -> None:
        unit = parse(state.source)
        with_bodies = [f for f in unit.funcs if f.body is not None]
        if not with_bodies:
            raise CompileError("no function with a body in the input")
        if state.entry is None:
            state.entry = with_bodies[-1].name
        else:
            unit.func(state.entry)  # raises KeyError for unknown names
        state.unit = unit


@register_pass("simd")
class SimdPass(Pass):
    """SIMD-to-C lowering of vector intrinsics."""

    def run(self, state: CompilationState) -> None:
        lower_simd(state.unit)


@register_pass("typecheck")
class TypecheckPass(Pass):
    """Semantic analysis: annotate every expression with its type."""

    def run(self, state: CompilationState) -> None:
        typecheck(state.unit)


@register_pass("rename")
class RenamePass(Pass):
    """C block scoping -> unique names (Python scoping)."""

    def run(self, state: CompilationState) -> None:
        alpha_rename(state.unit)


@register_pass("constfold")
class ConstFoldPass(Pass):
    """Sound constant folding over literal ranges (Section IV-B)."""

    def run(self, state: CompilationState) -> None:
        fold_constants(state.unit)


@register_pass("tac")
class TacPass(Pass):
    """Three-address-code transformation (Section VI-C)."""

    def run(self, state: CompilationState) -> None:
        to_tac(state.unit)


@register_pass("retypecheck")
class RetypecheckPass(Pass):
    """Re-annotate types on TAC-introduced nodes."""

    def run(self, state: CompilationState) -> None:
        typecheck(state.unit)


@register_pass("analyze")
class AnalyzePass(Pass):
    """The unroll -> DAG -> reuse candidates -> max-reuse ILP chain
    (Section VI), annotating prioritized operations.

    Self-skipping: runs only for affine configs with prioritization on
    (``force=True`` overrides, for ``SafeGen.annotate``)."""

    def __init__(self, force: bool = False) -> None:
        self.force = force

    def run(self, state: CompilationState) -> None:
        cfg = state.config
        if cfg.mode != "aa" or not (cfg.prioritize or self.force):
            return
        func = state.unit.func(state.entry)
        priority_map, report = self._analyze(cfg, func)
        state.priority_map = priority_map
        state.analysis_report = report

    @staticmethod
    def _analyze(cfg, func: A.FuncDef
                 ) -> Tuple[Dict[int, str], AnalysisReport]:
        from ... import analysis as ana  # local import: avoids an import cycle

        target = func
        if cfg.unroll:
            target = ana.unroll_for_analysis(
                func, budget=cfg.unroll_budget, int_params=cfg.int_params
            )
        dag = ana.build_dag(target)
        candidates = ana.find_reuse_candidates(dag)
        problem = ana.MaxReuseProblem(dag=dag, candidates=candidates, k=cfg.k)
        solver = cfg.solver
        if solver == "auto":
            # The exact ILP for big unrolled instances can explode; HiGHS
            # handles thousands of variables fine, beyond that go greedy.
            n_vars = len(candidates) + sum(len(c.connection)
                                           for c in candidates)
            solver = "ilp" if n_vars <= 200_000 and len(candidates) <= 4000 \
                else "greedy"
        if solver == "ilp":
            try:
                assignment = ana.solve_ilp(problem,
                                           time_limit=cfg.ilp_time_limit)
            except Exception:
                solver = "greedy"
                assignment = ana.solve_greedy(problem)
        else:
            assignment = ana.solve_greedy(problem)
        pragmas = ana.priority_pragmas(dag, assignment, cfg.vote_threshold)
        annotated = ana.apply_pragmas(func, pragmas)
        report = AnalysisReport(
            dag_nodes=dag.n_nodes,
            candidates=len(candidates),
            total_profit=assignment.total_profit,
            annotated_statements=annotated,
            solver=solver,
            feasible=not assignment.is_empty() and annotated > 0,
        )
        return pragmas, report


@register_pass("codegen-py")
class CodegenPyPass(Pass):
    """Python backend: the runnable output (our stand-in for linking the
    generated C against the affine library)."""

    def run(self, state: CompilationState) -> None:
        state.python_source = generate_python(
            state.unit, source_name=state.config.source_name)


@register_pass("codegen-c")
class CodegenCPass(Pass):
    """C backend: the paper-faithful textual output."""

    def run(self, state: CompilationState) -> None:
        state.c_source = generate_c(state.unit, c_flavor(state.config))

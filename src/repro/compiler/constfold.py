"""Sound constant folding (Section IV-B).

Constant float subexpressions are folded at compile time *as ranges*: the
fold is evaluated in interval arithmetic over the conservative enclosures of
the literals (inexact literals are one ulp wide, eq. in Section IV-B), and
the result becomes an :class:`repro.compiler.cast.IntervalLit` that the code
generators turn into a single affine constant — saving the runtime
operations without giving up the error accounting.

Integer constant expressions fold exactly.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ia import Interval
from . import cast as A

__all__ = ["fold_constants"]


def fold_constants(unit: A.TranslationUnit) -> A.TranslationUnit:
    for f in unit.funcs:
        if f.body is not None:
            _fold_stmt(f.body)
    return unit


def _fold_stmt(s: A.Stmt) -> None:
    for name in getattr(s, "__dataclass_fields__", {}):
        v = getattr(s, name)
        if isinstance(v, A.Expr):
            setattr(s, name, _fold_expr(v))
        elif isinstance(v, A.Stmt):
            _fold_stmt(v)
        elif isinstance(v, list):
            for i, item in enumerate(v):
                if isinstance(item, A.Expr):
                    v[i] = _fold_expr(item)
                elif isinstance(item, A.Stmt):
                    _fold_stmt(item)


def _literal_interval(e: A.Expr) -> Optional[Interval]:
    if isinstance(e, A.FloatLit):
        exact = _text_is_exact(e)
        return Interval.from_constant(e.value, exact=exact)
    if isinstance(e, A.IntervalLit):
        return Interval(e.lo, e.hi)
    if isinstance(e, A.IntLit):
        return Interval.point(float(e.value))
    return None


def _text_is_exact(e: A.FloatLit) -> bool:
    """A literal is exact when its decimal spelling round-trips exactly
    (e.g. 0.5, 2.0, 1.25) — a refinement of the paper's integers-are-exact
    rule that never weakens soundness."""
    if not math.isfinite(e.value):
        return False
    if e.value == int(e.value):
        return True
    try:
        from fractions import Fraction

        txt = e.text.rstrip("fFlL") if e.text else None
        if not txt:
            return False
        return Fraction(e.value) == Fraction(txt.replace("E", "e"))
    except (ValueError, ZeroDivisionError):
        return False


def _result_literal(iv: Interval, loc) -> A.Expr:
    if iv.is_point():
        lit = A.FloatLit(loc=loc, value=iv.lo, text=repr(iv.lo))
        lit.ty = A.CType("double")
        return lit
    out = A.IntervalLit(loc=loc, lo=iv.lo, hi=iv.hi)
    out.ty = A.CType("double")
    return out


def _fold_expr(e: A.Expr) -> A.Expr:
    # Fold children first.
    for name in getattr(e, "__dataclass_fields__", {}):
        v = getattr(e, name)
        if isinstance(v, A.Expr):
            setattr(e, name, _fold_expr(v))
        elif isinstance(v, list):
            for i, item in enumerate(v):
                if isinstance(item, A.Expr):
                    v[i] = _fold_expr(item)

    if isinstance(e, A.BinOp) and e.op in ("+", "-", "*", "/"):
        # Integer folding (exact).
        if isinstance(e.lhs, A.IntLit) and isinstance(e.rhs, A.IntLit) \
                and e.op != "/":
            val = {"+": e.lhs.value + e.rhs.value,
                   "-": e.lhs.value - e.rhs.value,
                   "*": e.lhs.value * e.rhs.value}[e.op]
            out = A.IntLit(loc=e.loc, value=val)
            out.ty = e.ty
            return out
        if isinstance(e.ty, A.CType) and e.ty.is_float():
            li = _literal_interval(e.lhs)
            ri = _literal_interval(e.rhs)
            if li is not None and ri is not None:
                if e.op == "+":
                    iv = li + ri
                elif e.op == "-":
                    iv = li - ri
                elif e.op == "*":
                    iv = li * ri
                else:
                    if ri.lo <= 0.0 <= ri.hi:
                        return e  # leave division by zero-range to runtime
                    iv = li / ri
                if iv.is_valid() and iv.is_finite():
                    return _result_literal(iv, e.loc)
    if isinstance(e, A.UnOp) and e.op == "-":
        if isinstance(e.operand, A.FloatLit):
            out = A.FloatLit(loc=e.loc, value=-e.operand.value,
                             text="-" + e.operand.text)
            out.ty = e.ty
            return out
        if isinstance(e.operand, A.IntLit):
            out = A.IntLit(loc=e.loc, value=-e.operand.value)
            out.ty = e.ty
            return out
        if isinstance(e.operand, A.IntervalLit):
            out = A.IntervalLit(loc=e.loc, lo=-e.operand.hi, hi=-e.operand.lo)
            out.ty = e.ty
            return out
    return e

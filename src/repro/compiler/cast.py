"""AST node definitions for the supported C subset.

The node set covers everything the paper's four benchmarks (and its worked
examples) need: function definitions, scalar/array/pointer declarations,
``for``/``while``/``do``/``if``/``return``, the full C expression grammar
over ``double``/``float``/``int``, calls to math-library functions, SIMD
intrinsics (lowered by :mod:`repro.compiler.simd`), and the custom
``#pragma safegen prioritize(var)`` annotation emitted by the static
analysis.

Every node carries a source location so later stages (TAC, the analysis
annotator) can map results back to the input program, exactly as the paper's
LLVM-debug-info plumbing does (Section VI-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

__all__ = [
    "Loc",
    "Node",
    "CType",
    "ArrayType",
    "PointerType",
    "VectorType",
    "TranslationUnit",
    "FuncDef",
    "Param",
    "Decl",
    "Compound",
    "ExprStmt",
    "If",
    "For",
    "While",
    "DoWhile",
    "Return",
    "Break",
    "Continue",
    "Pragma",
    "Expr",
    "IntLit",
    "FloatLit",
    "Ident",
    "BinOp",
    "UnOp",
    "Assign",
    "Call",
    "Index",
    "Cast",
    "Cond",
    "IntervalLit",
    "FLOAT_KINDS",
]

Loc = Tuple[int, int]  # (line, col), 1-based

FLOAT_KINDS = ("float", "double")


class Node:
    """Common base class for all AST nodes."""


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CType(Node):
    """A scalar base type: ``void``, ``int``, ``long``, ``float``,
    ``double``."""

    kind: str

    def is_float(self) -> bool:
        return self.kind in FLOAT_KINDS

    def is_integer(self) -> bool:
        return self.kind in ("int", "long", "char", "unsigned")

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class ArrayType(Node):
    """``elem[dim]``; ``dim`` may be None for unsized parameter arrays."""

    elem: Union["CType", "ArrayType", "PointerType"]
    dim: Optional[int]

    def is_float(self) -> bool:
        return False

    def is_integer(self) -> bool:
        return False

    def base_scalar(self):
        t = self.elem
        while isinstance(t, (ArrayType, PointerType)):
            t = t.elem if isinstance(t, ArrayType) else t.pointee
        return t

    def __str__(self) -> str:
        return f"{self.elem}[{self.dim if self.dim is not None else ''}]"


@dataclass(frozen=True)
class PointerType(Node):
    pointee: Union["CType", "ArrayType", "PointerType"]

    def is_float(self) -> bool:
        return False

    def is_integer(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class VectorType(Node):
    """SIMD vector type (``__m256d`` etc.): ``lanes`` lanes of ``elem``."""

    elem: CType
    lanes: int

    def is_float(self) -> bool:
        return False

    def is_integer(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"__m{self.lanes * 64}d"


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    loc: Loc = field(default=(0, 0), compare=False)
    ty: object = field(default=None, compare=False)  # filled by typecheck


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    text: str = ""  # original spelling (for exactness analysis / C output)


@dataclass
class IntervalLit(Expr):
    """A soundly folded constant range (produced by constfold)."""

    lo: float = 0.0
    hi: float = 0.0


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class BinOp(Expr):
    op: str = ""  # + - * / % << >> < <= > >= == != && || & | ^
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class UnOp(Expr):
    op: str = ""  # - ! ~ + & * ++ -- p++ p--
    operand: Expr = None


@dataclass
class Assign(Expr):
    op: str = "="  # = += -= *= /=
    target: Expr = None
    value: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Cast(Expr):
    to: object = None  # CType
    expr: Expr = None


@dataclass
class Cond(Expr):
    cond: Expr = None
    then: Expr = None
    els: Expr = None


# ---------------------------------------------------------------------------
# statements / declarations
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    loc: Loc = field(default=(0, 0), compare=False)


@dataclass
class Decl(Stmt):
    name: str = ""
    type: object = None
    init: Optional[Expr] = None
    # Unique statement id assigned by the TAC pass (analysis anchor).
    stmt_id: Optional[int] = field(default=None, compare=False)
    # Variable to prioritize for this operation (from pragma / analysis).
    prioritize: Optional[str] = field(default=None, compare=False)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None
    stmt_id: Optional[int] = field(default=None, compare=False)
    # Variable to prioritize for this operation (from pragma / analysis).
    prioritize: Optional[str] = field(default=None, compare=False)


@dataclass
class Compound(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None
    then: Stmt = None
    els: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # Decl or ExprStmt
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class While(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Pragma(Stmt):
    """``#pragma safegen prioritize(var)`` — applies to the next statement."""

    kind: str = "prioritize"
    arg: str = ""


# ---------------------------------------------------------------------------
# top level
# ---------------------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    type: object = None


@dataclass
class FuncDef(Node):
    name: str = ""
    return_type: object = None
    params: List[Param] = field(default_factory=list)
    body: Compound = None
    loc: Loc = (0, 0)


@dataclass
class TranslationUnit(Node):
    funcs: List[FuncDef] = field(default_factory=list)
    globals: List[Decl] = field(default_factory=list)

    def func(self, name: str) -> FuncDef:
        for f in self.funcs:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r}")

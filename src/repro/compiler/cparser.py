"""Recursive-descent parser for the supported C subset.

Produces the AST of :mod:`repro.compiler.cast`.  The subset is what the
paper's benchmarks and examples need: function definitions over scalars,
pointers and (multi-dimensional, constant-sized) arrays; full C expressions;
``for``/``while``/``do``/``if``/``return``; SIMD vector types (``__m256d``,
``__m128d``); and ``#pragma safegen`` annotations.

This replaces the paper's Clang LibTooling frontend (see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ParseError, UnsupportedFeatureError
from . import cast as A
from .clexer import Token, tokenize

__all__ = ["parse", "Parser"]

_TYPE_KEYWORDS = frozenset(["void", "int", "long", "char", "unsigned",
                            "float", "double", "const"])
_VECTOR_TYPES = {"__m256d": A.VectorType(A.CType("double"), 4),
                 "__m128d": A.VectorType(A.CType("double"), 2)}

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%="])


def parse(source: str) -> A.TranslationUnit:
    """Parse C source into a :class:`repro.compiler.cast.TranslationUnit`."""
    return Parser(tokenize(source)).translation_unit()


class Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}",
                             tok.line, tok.col)
        return self.next()

    def _loc(self) -> A.Loc:
        tok = self.peek()
        return (tok.line, tok.col)

    # -- types -----------------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.peek()
        if tok.kind == "keyword" and tok.text in _TYPE_KEYWORDS:
            return True
        return tok.kind == "ident" and tok.text in _VECTOR_TYPES

    def base_type(self):
        """Parse type specifiers (const/static/inline qualifiers ignored)."""
        while self.accept("keyword", "const") or self.accept("keyword", "static") \
                or self.accept("keyword", "inline") or self.accept("keyword", "restrict"):
            pass
        tok = self.peek()
        if tok.kind == "ident" and tok.text in _VECTOR_TYPES:
            self.next()
            return _VECTOR_TYPES[tok.text]
        if tok.kind != "keyword" or tok.text not in _TYPE_KEYWORDS:
            raise ParseError(f"expected a type, found {tok.text!r}",
                             tok.line, tok.col)
        self.next()
        kind = tok.text
        if kind == "unsigned" and self.at("keyword", "int"):
            self.next()
        if kind == "long" and self.at("keyword", "long"):
            self.next()
        while self.accept("keyword", "const"):
            pass
        return A.CType("int" if kind in ("unsigned", "char") else kind)

    def _declarator_suffix(self, base):
        """Array dimensions after a declarator name."""
        dims: List[Optional[int]] = []
        while self.accept("op", "["):
            if self.at("op", "]"):
                dims.append(None)
            else:
                tok = self.expect("int")
                dims.append(int(tok.text, 0))
            self.expect("op", "]")
        ty = base
        for dim in reversed(dims):
            ty = A.ArrayType(ty, dim)
        return ty

    # -- top level ---------------------------------------------------------------

    def translation_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit()
        while not self.at("eof"):
            if self.at("pragma"):
                # Stray pragma at top level: skip.
                self.next()
                continue
            loc = self._loc()
            base = self.base_type()
            stars = 0
            while self.accept("op", "*"):
                stars += 1
            name = self.expect("ident").text
            if self.at("op", "("):
                unit.funcs.append(self._func_def(base, stars, name, loc))
            else:
                ty = base
                for _ in range(stars):
                    ty = A.PointerType(ty)
                ty = self._declarator_suffix(ty)
                init = None
                if self.accept("op", "="):
                    init = self.assignment()
                self.expect("op", ";")
                unit.globals.append(A.Decl(loc=loc, name=name, type=ty, init=init))
        return unit

    def _func_def(self, base, stars, name, loc) -> A.FuncDef:
        ret = base
        for _ in range(stars):
            ret = A.PointerType(ret)
        self.expect("op", "(")
        params: List[A.Param] = []
        if not self.at("op", ")"):
            if self.at("keyword", "void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    pbase = self.base_type()
                    pstars = 0
                    while self.accept("op", "*"):
                        pstars += 1
                    pname = self.expect("ident").text
                    pty = pbase
                    for _ in range(pstars):
                        pty = A.PointerType(pty)
                    pty = self._declarator_suffix(pty)
                    params.append(A.Param(name=pname, type=pty))
                    if not self.accept("op", ","):
                        break
        self.expect("op", ")")
        if self.accept("op", ";"):  # prototype: record as bodyless function
            return A.FuncDef(name=name, return_type=ret, params=params,
                             body=None, loc=loc)
        body = self.compound()
        return A.FuncDef(name=name, return_type=ret, params=params,
                         body=body, loc=loc)

    # -- statements -----------------------------------------------------------------

    def compound(self) -> A.Compound:
        loc = self._loc()
        self.expect("op", "{")
        stmts: List[A.Stmt] = []
        while not self.at("op", "}"):
            stmts.append(self.statement())
        self.expect("op", "}")
        return A.Compound(loc=loc, stmts=stmts)

    def statement(self) -> A.Stmt:
        loc = self._loc()
        if self.at("pragma"):
            tok = self.next()
            kind, arg = tok.payload
            return A.Pragma(loc=loc, kind=kind, arg=arg)
        if self.at("op", "{"):
            return self.compound()
        if self.at("op", ";"):
            self.next()
            return A.Compound(loc=loc, stmts=[])
        if self.at("keyword", "if"):
            return self._if_stmt()
        if self.at("keyword", "for"):
            return self._for_stmt()
        if self.at("keyword", "while"):
            return self._while_stmt()
        if self.at("keyword", "do"):
            return self._do_stmt()
        if self.at("keyword", "return"):
            self.next()
            value = None if self.at("op", ";") else self.expression()
            self.expect("op", ";")
            return A.Return(loc=loc, value=value)
        if self.at("keyword", "break"):
            self.next()
            self.expect("op", ";")
            return A.Break(loc=loc)
        if self.at("keyword", "continue"):
            self.next()
            self.expect("op", ";")
            return A.Continue(loc=loc)
        if self.at_type():
            return self._decl_stmt()
        expr = self.expression()
        self.expect("op", ";")
        return A.ExprStmt(loc=loc, expr=expr)

    def _decl_stmt(self) -> A.Stmt:
        loc = self._loc()
        base = self.base_type()
        decls: List[A.Decl] = []
        while True:
            dloc = self._loc()
            stars = 0
            while self.accept("op", "*"):
                stars += 1
            name = self.expect("ident").text
            ty = base
            for _ in range(stars):
                ty = A.PointerType(ty)
            ty = self._declarator_suffix(ty)
            init = None
            if self.accept("op", "="):
                if self.at("op", "{"):
                    raise UnsupportedFeatureError(
                        "brace initializers are not supported"
                    )
                init = self.assignment()
            decls.append(A.Decl(loc=dloc, name=name, type=ty, init=init))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return A.Compound(loc=loc, stmts=decls)

    def _if_stmt(self) -> A.If:
        loc = self._loc()
        self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then = self.statement()
        els = None
        if self.accept("keyword", "else"):
            els = self.statement()
        return A.If(loc=loc, cond=cond, then=then, els=els)

    def _for_stmt(self) -> A.For:
        loc = self._loc()
        self.expect("keyword", "for")
        self.expect("op", "(")
        init: Optional[A.Stmt] = None
        if not self.at("op", ";"):
            if self.at_type():
                init = self._decl_stmt()  # consumes the ';'
            else:
                expr = self.expression()
                self.expect("op", ";")
                init = A.ExprStmt(loc=loc, expr=expr)
        else:
            self.next()
        cond = None if self.at("op", ";") else self.expression()
        self.expect("op", ";")
        step = None if self.at("op", ")") else self.expression()
        self.expect("op", ")")
        body = self.statement()
        return A.For(loc=loc, init=init, cond=cond, step=step, body=body)

    def _while_stmt(self) -> A.While:
        loc = self._loc()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        body = self.statement()
        return A.While(loc=loc, cond=cond, body=body)

    def _do_stmt(self) -> A.DoWhile:
        loc = self._loc()
        self.expect("keyword", "do")
        body = self.statement()
        self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return A.DoWhile(loc=loc, body=body, cond=cond)

    # -- expressions --------------------------------------------------------------

    def expression(self) -> A.Expr:
        # The comma operator is not supported (rare in numeric kernels);
        # `expression` is therefore assignment-expression.
        return self.assignment()

    def assignment(self) -> A.Expr:
        loc = self._loc()
        lhs = self.conditional()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.next()
            rhs = self.assignment()
            return A.Assign(loc=loc, op=tok.text, target=lhs, value=rhs)
        return lhs

    def conditional(self) -> A.Expr:
        loc = self._loc()
        cond = self.logical_or()
        if self.accept("op", "?"):
            then = self.expression()
            self.expect("op", ":")
            els = self.conditional()
            return A.Cond(loc=loc, cond=cond, then=then, els=els)
        return cond

    def _binary_level(self, ops, next_level):
        loc = self._loc()
        lhs = next_level()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ops:
                self.next()
                rhs = next_level()
                lhs = A.BinOp(loc=loc, op=tok.text, lhs=lhs, rhs=rhs)
            else:
                return lhs

    def logical_or(self):
        return self._binary_level(("||",), self.logical_and)

    def logical_and(self):
        return self._binary_level(("&&",), self.bit_or)

    def bit_or(self):
        return self._binary_level(("|",), self.bit_xor)

    def bit_xor(self):
        return self._binary_level(("^",), self.bit_and)

    def bit_and(self):
        return self._binary_level(("&",), self.equality)

    def equality(self):
        return self._binary_level(("==", "!="), self.relational)

    def relational(self):
        return self._binary_level(("<", "<=", ">", ">="), self.shift)

    def shift(self):
        return self._binary_level(("<<", ">>"), self.additive)

    def additive(self):
        return self._binary_level(("+", "-"), self.multiplicative)

    def multiplicative(self):
        return self._binary_level(("*", "/", "%"), self.unary)

    def unary(self) -> A.Expr:
        loc = self._loc()
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "+", "!", "~", "*", "&"):
            self.next()
            operand = self.unary()
            if tok.text == "+":
                return operand
            return A.UnOp(loc=loc, op=tok.text, operand=operand)
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            return A.UnOp(loc=loc, op=tok.text, operand=self.unary())
        # cast: '(' type ')' unary
        if tok.text == "(" and self._is_cast_ahead():
            self.next()
            ty = self.base_type()
            while self.accept("op", "*"):
                ty = A.PointerType(ty)
            self.expect("op", ")")
            return A.Cast(loc=loc, to=ty, expr=self.unary())
        return self.postfix()

    def _is_cast_ahead(self) -> bool:
        nxt = self.peek(1)
        if nxt.kind == "keyword" and nxt.text in _TYPE_KEYWORDS:
            return True
        return nxt.kind == "ident" and nxt.text in _VECTOR_TYPES

    def postfix(self) -> A.Expr:
        loc = self._loc()
        expr = self.primary()
        while True:
            if self.at("op", "("):
                if not isinstance(expr, A.Ident):
                    raise UnsupportedFeatureError(
                        "only direct function calls are supported"
                    )
                self.next()
                args: List[A.Expr] = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self.assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = A.Call(loc=loc, name=expr.name, args=args)
            elif self.at("op", "["):
                self.next()
                idx = self.expression()
                self.expect("op", "]")
                expr = A.Index(loc=loc, base=expr, index=idx)
            elif self.at("op", "++") or self.at("op", "--"):
                tok = self.next()
                expr = A.UnOp(loc=loc, op="p" + tok.text, operand=expr)
            else:
                return expr

    def primary(self) -> A.Expr:
        tok = self.peek()
        loc = (tok.line, tok.col)
        if tok.kind == "int":
            self.next()
            return A.IntLit(loc=loc, value=int(tok.text.rstrip("uUlL"), 0))
        if tok.kind == "float":
            self.next()
            return A.FloatLit(loc=loc,
                              value=float.fromhex(tok.text.rstrip("fFlL"))
                              if tok.text.lower().startswith("0x")
                              else float(tok.text.rstrip("fFlL")),
                              text=tok.text)
        if tok.kind == "ident":
            self.next()
            return A.Ident(loc=loc, name=tok.text)
        if tok.text == "(":
            self.next()
            expr = self.expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.col)

"""The SafeGen source-to-source compiler (Sections III, IV, VI-C).

Public entry points:

* :func:`compile_c` — one call: C source in, sound runnable program out.
* :class:`SafeGen` / :class:`CompilerConfig` — the configured pipeline.
* :class:`Runtime` — the execution context generated code runs against.
"""

from .cast import TranslationUnit
from .clexer import tokenize
from .codegen_c import generate_c
from .codegen_py import generate_python
from .config import CompilerConfig
from .constfold import fold_constants
from .cparser import parse
from .driver import (
    BatchCompiler,
    CompiledProgram,
    ProgramResult,
    SafeGen,
    compile_c,
)
from .passes import (
    AnalysisReport,
    PassManager,
    PipelineReport,
    available_passes,
    default_pipeline,
    register_pass,
)
from .runtime import Runtime
from .simd import lower_simd
from .tac import to_tac
from .typecheck import typecheck

__all__ = [
    "AnalysisReport",
    "BatchCompiler",
    "CompiledProgram",
    "CompilerConfig",
    "PassManager",
    "PipelineReport",
    "ProgramResult",
    "Runtime",
    "SafeGen",
    "TranslationUnit",
    "available_passes",
    "compile_c",
    "default_pipeline",
    "register_pass",
    "fold_constants",
    "generate_c",
    "generate_python",
    "lower_simd",
    "parse",
    "to_tac",
    "tokenize",
    "typecheck",
]

"""Compiler configuration, including the paper's notation strings.

Section VII-A uses strings like ``f64a-dspv``: precision, then one letter
each for placement (s/d), fusion (s/m/o/r), prioritization (p/n), and
vectorization (v/n).  ``CompilerConfig.from_string`` parses exactly that,
plus the interval modes ``ia-f64`` / ``ia-dd`` used for the IGen baseline
comparison of Fig. 9.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..aa import AffineContext, FusionPolicy, PlacementPolicy, Precision
from ..common import DecisionPolicy

__all__ = ["CompilerConfig"]

_PLACEMENT = {"s": PlacementPolicy.SORTED, "d": PlacementPolicy.DIRECT_MAPPED}
_FUSION = {
    "s": FusionPolicy.SMALLEST,
    "m": FusionPolicy.MEAN,
    "o": FusionPolicy.OLDEST,
    "r": FusionPolicy.RANDOM,
}
_PRECISION = {"f64a": Precision.F64, "dda": Precision.DD, "f32a": Precision.F32}


@dataclass(frozen=True)
class CompilerConfig:
    """Full configuration of a SafeGen compilation.

    ``mode`` selects the numeric family: ``aa`` (affine — the paper's
    SafeGen output), ``ia`` (double intervals, IGen-f64) or ``ia_dd``
    (double-double intervals, IGen-dd).
    """

    mode: str = "aa"
    # Affine implementation within aa mode: 'auto' (the paper's bounded
    # forms) or a library baseline: 'full' (yalaa-aff0), 'fixed'
    # (yalaa-aff1), 'ceres' (ceres-affine).
    impl: str = "auto"
    k: int = 16
    precision: Precision = Precision.F64
    placement: PlacementPolicy = PlacementPolicy.DIRECT_MAPPED
    fusion: FusionPolicy = FusionPolicy.SMALLEST
    prioritize: bool = False
    vectorize: bool = False
    decision_policy: DecisionPolicy = DecisionPolicy.CENTRAL
    seed: int = 0x5AFE
    # analysis knobs
    unroll: bool = True
    unroll_budget: int = 4000
    solver: str = "auto"  # 'ilp' | 'greedy' | 'auto'
    ilp_time_limit: float = 30.0
    # Minimum winner-vote share for a statement to receive a prioritize
    # pragma (see repro.analysis.annotate.priority_pragmas).
    vote_threshold: float = 0.2
    # concrete values for integer params, so analysis can unroll their loops
    int_params: dict = field(default_factory=dict, hash=False, compare=False)
    # pipeline selection: run the sound TAC optimization passes (cse/dte)?
    opt: bool = True
    # Explicit pass pipeline (tuple of registered pass names); None means
    # the default pipeline for this config.  Part of the cache key.
    passes: Optional[Tuple[str, ...]] = None
    # Display name of the source file, embedded in the generated code's
    # origin strings ("<source_name>:<line>:<col> <op>") for the width
    # diagnostics.  Part of the cache key: the generated program text
    # differs per name.  None keeps the neutral "<src>" placeholder.
    source_name: Optional[str] = None

    def __post_init__(self):
        if self.passes is not None and not isinstance(self.passes, tuple):
            object.__setattr__(self, "passes", tuple(self.passes))
        if self.mode not in ("aa", "ia", "ia_dd", "float"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.impl not in ("auto", "full", "fixed", "ceres"):
            raise ValueError(f"unknown impl {self.impl!r}")
        if self.solver not in ("ilp", "greedy", "auto"):
            raise ValueError(f"unknown solver {self.solver!r}")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.vectorize and self.placement is not PlacementPolicy.DIRECT_MAPPED:
            raise ValueError("vectorized output requires direct-mapped placement")
        if self.vectorize and self.precision is not Precision.F64:
            raise ValueError("vectorized output supports f64a only")

    # -- paper notation ----------------------------------------------------------

    @classmethod
    def from_string(cls, name: str, k: int = 16, **overrides) -> "CompilerConfig":
        """Parse a paper-style configuration string.

        Examples: ``f64a-dspv`` (direct-mapped, smallest, prioritized,
        vectorized), ``dda-dsnn``, ``f64a-srnn``, ``ia-f64``, ``ia-dd``.
        """
        name = name.strip().lower()
        if name in ("ia-f64", "igen-f64"):
            return cls(mode="ia", k=k, **overrides)
        if name in ("ia-dd", "igen-dd"):
            return cls(mode="ia_dd", k=k, **overrides)
        if name in ("float", "unsound", "original"):
            return cls(mode="float", k=k, **overrides)
        if name == "yalaa-aff0":
            return cls(mode="aa", impl="full", k=k, **overrides)
        if name == "yalaa-aff1":
            return cls(mode="aa", impl="fixed", k=k, **overrides)
        if name in ("ceres", "ceres-affine"):
            return cls(mode="aa", impl="ceres", k=k, **overrides)
        try:
            precision_s, flags = name.split("-")
            precision = _PRECISION[precision_s]
            placement = _PLACEMENT[flags[0]]
            fusion = _FUSION[flags[1]]
            prioritize = {"p": True, "n": False}[flags[2]]
            vectorize = {"v": True, "n": False}[flags[3]]
            if len(flags) != 4:
                raise KeyError(flags)
        except (ValueError, KeyError, IndexError):
            raise ValueError(
                f"cannot parse configuration string {name!r} "
                "(expected e.g. 'f64a-dspv', 'dda-dsnn', 'ia-f64')"
            ) from None
        return cls(
            mode="aa", k=k, precision=precision, placement=placement,
            fusion=fusion, prioritize=prioritize, vectorize=vectorize,
            **overrides,
        )

    @property
    def name(self) -> str:
        """The paper-style configuration string."""
        if self.mode == "ia":
            return "ia-f64"
        if self.mode == "ia_dd":
            return "ia-dd"
        if self.mode == "float":
            return "float"
        if self.impl == "full":
            return "yalaa-aff0"
        if self.impl == "fixed":
            return "yalaa-aff1"
        if self.impl == "ceres":
            return f"ceres-affine-k{self.k}"
        return (
            f"{self.precision.value}-{self.placement.code}{self.fusion.code}"
            f"{'p' if self.prioritize else 'n'}{'v' if self.vectorize else 'n'}"
        )

    def with_k(self, k: int) -> "CompilerConfig":
        return replace(self, k=k)

    # -- serialization / hashing -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe dict of every field (enums become their string values).

        Round-trips through :meth:`from_dict`; the canonical encoding of this
        dict is what :meth:`cache_key` hashes, so adding a field here changes
        every cache key (as it must).
        """
        return {
            "mode": self.mode,
            "impl": self.impl,
            "k": self.k,
            "precision": self.precision.value,
            "placement": self.placement.value,
            "fusion": self.fusion.value,
            "prioritize": self.prioritize,
            "vectorize": self.vectorize,
            "decision_policy": self.decision_policy.value,
            "seed": self.seed,
            "unroll": self.unroll,
            "unroll_budget": self.unroll_budget,
            "solver": self.solver,
            "ilp_time_limit": self.ilp_time_limit,
            "vote_threshold": self.vote_threshold,
            "int_params": {str(k): int(v)
                           for k, v in sorted(self.int_params.items())},
            "opt": self.opt,
            "passes": list(self.passes) if self.passes is not None else None,
            "source_name": self.source_name,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CompilerConfig":
        """Inverse of :meth:`to_dict`; missing keys take the field defaults."""
        data = dict(data)
        enums = {
            "precision": Precision,
            "placement": PlacementPolicy,
            "fusion": FusionPolicy,
            "decision_policy": DecisionPolicy,
        }
        kwargs: Dict[str, Any] = {}
        for name, value in data.items():
            if name in enums and not isinstance(value, enums[name]):
                value = enums[name](value)
            if name == "passes" and isinstance(value, list):
                value = tuple(value)
            kwargs[name] = value
        unknown = set(kwargs) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ValueError(f"unknown CompilerConfig fields: {sorted(unknown)}")
        return cls(**kwargs)

    def cache_key(self, source: str = "", entry: Optional[str] = None,
                  version: Optional[str] = None) -> str:
        """Stable content-addressed key for a compilation of ``source``.

        SHA-256 over the canonical JSON of (source, every config field —
        including ``k`` and ``int_params`` — entry name, and the package
        version), so any input that can change the generated program changes
        the key.  With the default ``source=""`` it hashes the configuration
        alone, which is handy for experiment manifests.
        """
        if version is None:
            from .. import __version__ as version
        payload = {
            "source": source,
            "config": self.to_dict(),
            "entry": entry,
            "version": version,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @staticmethod
    def source_key(source: str, entry: Optional[str] = None,
                   version: Optional[str] = None) -> str:
        """Config-independent key for a *program*: SHA-256 over the canonical
        JSON of (source, entry, version) only.

        This is what the autotuner's :class:`repro.tune.TunedConfigStore`
        indexes by — a tuned winner applies to the program regardless of
        which configuration a client happens to request, so the key must
        not involve the config.  The version stays in: a new release may
        change codegen enough to invalidate old tuning decisions.
        """
        if version is None:
            from .. import __version__ as version
        payload = {"source": source, "entry": entry, "version": version}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # -- runtime construction --------------------------------------------------------

    def runtime_mode(self) -> str:
        return self.mode

    def make_context(self, track_provenance: bool = False
                     ) -> Optional[AffineContext]:
        """Build the affine context for one run.  ``track_provenance`` is a
        per-run diagnostic toggle (width attribution) — deliberately NOT a
        config field, so it never perturbs cache keys or generated code."""
        if self.mode != "aa":
            return None
        return AffineContext(
            k=self.k,
            placement=self.placement,
            fusion=self.fusion,
            precision=self.precision,
            vectorized=self.vectorize,
            decision_policy=self.decision_policy,
            seed=self.seed,
            track_provenance=track_provenance,
            impl=self.impl,
        )

"""Runtime support for SafeGen-generated Python code.

The Python backend (:mod:`repro.compiler.codegen_py`) emits functions whose
first parameter is a :class:`Runtime` — the equivalent of linking the
generated C against the paper's affine library.  The runtime carries the
:class:`repro.aa.AffineContext` (or interval mode) and provides constant
construction, array allocation, comparison helpers, and the per-operation
priority plumbing.

It supports four numeric modes, selected by the compiler configuration:

* ``aa``  — affine arithmetic (scalar or vectorized, f64a or dda, or one of
  the library baselines via the context's ``impl`` field),
* ``ia``  — double intervals (the IGen-f64 baseline),
* ``ia_dd`` — double-double intervals (IGen-dd),
* ``float`` — plain unsound doubles (the original program; used as the
  runtime baseline that slowdown factors are measured against).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Union

from ..aa import AffineContext
from ..common import DecisionPolicy, ValueRange, decide_comparison
from ..errors import CompileError
from ..fp import ulp
from ..ia import Interval, IntervalDD

__all__ = ["Runtime"]


class Runtime:
    """Execution context handed to generated code.

    ``mode`` is ``"aa"``, ``"ia"`` or ``"ia_dd"``.  In AA mode ``ctx`` is the
    affine context; in the interval modes a minimal stats object is kept so
    comparison bookkeeping still works.
    """

    def __init__(self, mode: str = "aa",
                 ctx: Optional[AffineContext] = None,
                 decision_policy: Optional[DecisionPolicy] = None) -> None:
        if mode not in ("aa", "ia", "ia_dd", "float"):
            raise ValueError(f"unknown runtime mode {mode!r}")
        self.mode = mode
        if mode == "aa":
            self.ctx = ctx if ctx is not None else AffineContext()
            self.decision_policy = self.ctx.decision_policy
            self.stats = self.ctx.stats
        else:
            self.ctx = ctx  # unused in interval modes
            self.decision_policy = decision_policy or DecisionPolicy.CENTRAL
            from ..aa.context import AAStats

            self.stats = AAStats()

    # -- value construction ---------------------------------------------------

    def const(self, value: float, exact: Optional[bool] = None,
              origin: Optional[str] = None):
        """A source constant; inexact constants get a one-ulp enclosure.

        ``origin`` is the generated code's structured provenance string
        (``file:line:col const``); it only matters when the affine context
        tracks provenance and is ignored in the interval/float modes.
        """
        if self.mode == "float":
            return value
        if self.mode == "aa":
            return self.ctx.constant(value, exact=exact, provenance=origin)
        if exact is None:
            exact = bool(math.isfinite(value) and value == int(value))
        if self.mode == "ia":
            return Interval.from_constant(value, exact=exact)
        return IntervalDD.from_constant(value, exact=exact)

    def interval_const(self, lo: float, hi: float,
                       origin: Optional[str] = None):
        """A folded constant range (from sound constant folding)."""
        if self.mode == "float":
            return lo + (hi - lo) / 2.0
        if self.mode == "aa":
            return self.ctx.from_interval(lo, hi, provenance=origin)
        if self.mode == "ia":
            return Interval(lo, hi)
        return IntervalDD.from_interval(lo, hi)

    def exact(self, value: float):
        """An exact scalar (e.g. an integer promoted to double)."""
        if self.mode == "float":
            return float(value)
        if self.mode == "aa":
            return self.ctx.exact(float(value))
        if self.mode == "ia":
            return Interval.point(float(value))
        return IntervalDD.point(float(value))

    def input(self, value: float, uncertainty_ulps: float = 1.0,
              origin: Optional[str] = None):
        """An input value carrying one symbol of ``uncertainty_ulps`` ulps
        (the paper's experimental setup)."""
        if self.mode == "float":
            return float(value)
        if self.mode == "aa":
            return self.ctx.input(value, uncertainty_ulps, provenance=origin)
        rad = uncertainty_ulps * ulp(value)
        if self.mode == "ia":
            return Interval.with_radius(value, rad)
        base = IntervalDD.point(value)
        return base + IntervalDD.from_interval(-rad, rad)

    def input_range(self, vr: ValueRange, origin: Optional[str] = None):
        """A range-valued input covering all of ``[vr.lo, vr.hi]``.

        In AA mode this is one fresh symbol spanning the half-width (named
        after the range so ``aa.explain`` can attribute error back to it);
        in interval modes the plain interval; in float mode the midpoint.
        """
        if self.mode == "float":
            return vr.midpoint()
        if self.mode == "aa":
            return self.ctx.from_interval(vr.lo, vr.hi, name=vr.name,
                                          provenance=origin)
        if self.mode == "ia":
            return Interval(vr.lo, vr.hi)
        return IntervalDD.from_interval(vr.lo, vr.hi)

    def coerce_input(self, value, uncertainty_ulps: float = 1.0,
                     origin: Optional[str] = None):
        """Turn a plain float / nested list of floats into sound inputs;
        pass already-sound values through."""
        if isinstance(value, (int, float)):
            return self.input(float(value), uncertainty_ulps, origin=origin)
        if isinstance(value, ValueRange):
            return self.input_range(value, origin=origin)
        if self.mode == "float" and hasattr(value, "central_float"):
            return value.central_float()
        if isinstance(value, (list, tuple)):
            return [self.coerce_input(v, uncertainty_ulps, origin=origin)
                    for v in value]
        try:  # numpy arrays
            import numpy as np

            if isinstance(value, np.ndarray):
                return self.coerce_input(value.tolist(), uncertainty_ulps,
                                         origin=origin)
        except ImportError:  # pragma: no cover
            pass
        return value

    def alloc_array(self, dims: Sequence[int]):
        """A C local array: nested Python lists initialized to exact zero."""
        if len(dims) == 1:
            if self.mode == "float":
                return [0.0] * dims[0]
            return [self.exact(0.0) for _ in range(dims[0])]
        return [self.alloc_array(dims[1:]) for _ in range(dims[0])]

    def alloc_int_array(self, dims: Sequence[int]):
        if len(dims) == 1:
            return [0] * dims[0]
        return [self.alloc_int_array(dims[1:]) for _ in range(dims[0])]

    # -- priorities -------------------------------------------------------------

    def protect(self, *forms) -> frozenset:
        """Symbol ids of the given affine variables (pragma support).

        In interval modes there is nothing to protect.
        """
        if self.mode != "aa":
            return frozenset()
        # Affine forms are immutable once built: cache the gathered set on
        # the form (prioritization pragmas fire on every loop iteration,
        # often on a variable that did not change since the last gather).
        if len(forms) == 1 and not isinstance(forms[0], (list, tuple)):
            cached = getattr(forms[0], "_pcache", None)
            if cached is not None:
                return cached
        else:
            # Gathering from an array walks every element; consecutive ops
            # frequently protect the same (unmodified) array, so memoize on
            # the identity tuple of the flattened elements.  Strong refs in
            # the key keep ids stable; the memo is tiny (LRU of 4).
            key = self._protect_key(forms)
            memo = self._protect_memo
            if key in memo:
                return memo[key]
        import numpy as np

        best: dict = {}

        def fragment(v) -> dict:
            """Per-form {symbol id: |coeff|}, cached on the immutable form."""
            frag = getattr(v, "_gcache", None)
            if frag is not None:
                return frag
            ids = getattr(v, "ids", None)
            if isinstance(ids, np.ndarray):
                mask = ids != 0
                frag = dict(zip(ids[mask].tolist(),
                                np.abs(v.coeffs[mask]).tolist()))
            elif hasattr(v, "coefficients"):
                frag = {sid: abs(c) for sid, c in v.coefficients().items()}
            elif hasattr(v, "symbol_ids"):
                frag = {sid: 0.0 for sid in v.symbol_ids()}
            else:
                return {}
            try:
                object.__setattr__(v, "_gcache", frag)
            except (AttributeError, TypeError):
                pass
            return frag

        def gather(v) -> None:
            if isinstance(v, (list, tuple)):
                for item in v:
                    gather(item)
                return
            for sid, mag in fragment(v).items():
                if mag > best.get(sid, -1.0):
                    best[sid] = mag

        for f in forms:
            gather(f)
        # A node may prioritize at most k-1 symbols (eq. (9)); when a
        # variable holds more, keep the largest coefficients — they carry
        # the cancellation potential the analysis is after.
        cap = max(1, self.ctx.k - 1)
        if len(best) > cap:
            out = frozenset(sorted(best, key=lambda s: -best[s])[:cap])
        else:
            out = frozenset(best)
        if len(forms) == 1 and not isinstance(forms[0], (list, tuple)):
            try:
                object.__setattr__(forms[0], "_pcache", out)
            except (AttributeError, TypeError):
                pass
        else:
            memo = self._protect_memo
            memo[key] = out
            while len(memo) > 4:
                memo.pop(next(iter(memo)))
        return out

    @property
    def _protect_memo(self) -> dict:
        memo = getattr(self, "_protect_memo_store", None)
        if memo is None:
            memo = {}
            self._protect_memo_store = memo
        return memo

    @staticmethod
    def _protect_key(forms) -> tuple:
        flat = []

        def rec(v):
            if isinstance(v, (list, tuple)):
                for item in v:
                    rec(item)
            else:
                flat.append(v)

        for f in forms:
            rec(f)
        return tuple(flat)

    # -- arithmetic dispatch (interval modes lack the method/protect API) --------

    def add(self, a, b, protect=frozenset(), origin=None):
        if self.mode == "aa":
            return a.add(b, protect=protect, provenance=origin)
        return a + b

    def sub(self, a, b, protect=frozenset(), origin=None):
        if self.mode == "aa":
            return a.sub(b, protect=protect, provenance=origin)
        return a - b

    def mul(self, a, b, protect=frozenset(), origin=None):
        if self.mode == "aa":
            return a.mul(b, protect=protect, provenance=origin)
        return a * b

    def div(self, a, b, protect=frozenset(), origin=None):
        if self.mode == "aa":
            return a.div(b, protect=protect, provenance=origin)
        return a / b

    def neg(self, a):
        return -a if self.mode != "aa" else a.neg()

    def sqrt(self, a, protect=frozenset(), origin=None):
        if self.mode == "aa":
            return a.sqrt(protect=protect, provenance=origin)
        if self.mode == "float":
            return math.sqrt(a)
        return a.sqrt()

    def fabs(self, a):
        if self.mode == "aa":
            return a.abs_()
        return abs(a)

    def exp(self, a, protect=frozenset(), origin=None):
        if self.mode == "aa":
            return a.exp(protect=protect, provenance=origin)
        if self.mode == "float":
            return math.exp(a)
        if self.mode == "ia":
            from ..ia import iexp

            return iexp(a)
        raise CompileError("exp is not supported in double-double intervals")

    def log(self, a, protect=frozenset(), origin=None):
        if self.mode == "aa":
            return a.log(protect=protect, provenance=origin)
        if self.mode == "float":
            return math.log(a)
        if self.mode == "ia":
            from ..ia import ilog

            return ilog(a)
        raise CompileError("log is not supported in double-double intervals")

    def fmin(self, a, b):
        if self.mode == "float":
            return self._float_minmax(a, b, min)
        a, b = self._as_range(a), self._as_range(b)
        return a.min_with(b)

    def fmax(self, a, b):
        if self.mode == "float":
            return self._float_minmax(a, b, max)
        a, b = self._as_range(a), self._as_range(b)
        return a.max_with(b)

    @staticmethod
    def _float_minmax(a, b, pick):
        # C99 fmin/fmax: a NaN operand is treated as missing data — the
        # other operand is returned (Python's min/max would propagate or
        # drop the NaN depending on argument order).
        if isinstance(a, float) and math.isnan(a):
            return b
        if isinstance(b, float) and math.isnan(b):
            return a
        return pick(a, b)

    # -- comparisons ---------------------------------------------------------------

    def _as_range(self, x):
        if isinstance(x, (int, float)) and self.mode != "float":
            return self.exact(float(x))
        return x

    def lt(self, a, b) -> bool:
        if self.mode == "float":
            return a < b
        a, b = self._as_range(a), self._as_range(b)
        if self.mode == "aa":
            return a.compare_lt(b)
        return a.compare_lt(b, policy=self.decision_policy, stats=self.stats)

    def le(self, a, b) -> bool:
        if self.mode == "float":
            return a <= b
        a, b = self._as_range(a), self._as_range(b)
        if self.mode == "aa":
            return a.compare_le(b)
        if hasattr(a, "compare_le"):
            return a.compare_le(b, policy=self.decision_policy, stats=self.stats)
        return not self.lt(b, a)

    def gt(self, a, b) -> bool:
        return self.lt(b, a)

    def ge(self, a, b) -> bool:
        return self.le(b, a)

    def eq(self, a, b) -> bool:
        """Range equality: definite only for identical point ranges or
        disjoint ranges; otherwise decided per policy on central values.

        Invalid (NaN-absorbing) operands take IEEE 754 semantics: ``==``
        is definitely False (``!=`` definitely True), not an ambiguous
        branch — the central-value fallback would compare NaN midpoints
        and call identical arguments unequal while charging the
        certificate, and STRICT would raise where IEEE gives an answer.
        """
        if self.mode == "float":
            return a == b
        a, b = self._as_range(a), self._as_range(b)
        ia = a.interval() if hasattr(a, "interval") else a
        ib = b.interval() if hasattr(b, "interval") else b
        definite: Optional[bool]
        if not (ia.is_valid() and ib.is_valid()):
            definite = False
        elif ia.is_point() and ib.is_point():
            definite = ia.lo == ib.lo
        elif ia.hi < ib.lo or ib.hi < ia.lo:
            definite = False
        else:
            definite = None
        return decide_comparison(definite, ia.midpoint() == ib.midpoint(),
                                 self.decision_policy, "==", self.stats)

    def ne(self, a, b) -> bool:
        return not self.eq(a, b)

"""Semantic analysis: scoped symbol tables, type inference/annotation, and
subset validation.

Annotates every expression node's ``ty`` field (used by the TAC pass and the
code generators to decide which operations become affine calls) and rejects
programs outside the supported subset with precise locations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import TypeCheckError, UnsupportedFeatureError
from . import cast as A
from .simd import INTRINSIC_SIGNATURES

__all__ = ["typecheck", "MATH_FUNCS", "Scope"]

# name -> arity of supported math-library calls (all double -> double).
MATH_FUNCS: Dict[str, int] = {
    "sqrt": 1,
    "fabs": 1,
    "exp": 1,
    "log": 1,
    "fmin": 2,
    "fmax": 2,
}

_INT = A.CType("int")
_DOUBLE = A.CType("double")


class Scope:
    """A lexical scope mapping names to declared types."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, object] = {}

    def declare(self, name: str, ty, loc) -> None:
        if name in self.names:
            raise TypeCheckError(
                f"line {loc[0]}: redeclaration of {name!r} in the same scope"
            )
        self.names[name] = ty

    def lookup(self, name: str):
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def typecheck(unit: A.TranslationUnit) -> None:
    """Annotate ``ty`` on every expression and validate the program."""
    functions = {f.name: f for f in unit.funcs}
    global_scope = Scope()
    for g in unit.globals:
        global_scope.declare(g.name, g.type, g.loc)
        if g.init is not None:
            _Checker(functions, global_scope).expr(g.init)
    for f in unit.funcs:
        if f.body is None:
            continue
        checker = _Checker(functions, global_scope)
        checker.check_function(f)


class _Checker:
    def __init__(self, functions: Dict[str, A.FuncDef], global_scope: Scope):
        self.functions = functions
        self.scope = Scope(global_scope)
        self.current_return: object = None
        self.loop_depth = 0

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _err(loc, msg) -> TypeCheckError:
        return TypeCheckError(f"line {loc[0]}, col {loc[1]}: {msg}")

    @staticmethod
    def _is_arith(ty) -> bool:
        return isinstance(ty, A.CType) and (ty.is_float() or ty.is_integer())

    @staticmethod
    def _unify_arith(lt, rt):
        """Usual arithmetic conversions within the subset: any float
        operand promotes the result to double."""
        if isinstance(lt, A.CType) and isinstance(rt, A.CType):
            if lt.is_float() or rt.is_float():
                return _DOUBLE
            return _INT
        return None

    # -- entry -------------------------------------------------------------------

    def check_function(self, f: A.FuncDef) -> None:
        self.current_return = f.return_type
        seen = set()
        for p in f.params:
            if p.name in seen:
                raise self._err(f.loc, f"duplicate parameter {p.name!r}")
            seen.add(p.name)
            self.scope.declare(p.name, p.type, f.loc)
        self.stmt(f.body)

    # -- statements ----------------------------------------------------------------

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Compound):
            outer = self.scope
            self.scope = Scope(outer)
            for sub in s.stmts:
                self.stmt(sub)
            self.scope = outer
        elif isinstance(s, A.Decl):
            if s.init is not None:
                ity = self.expr(s.init)
                self._check_assignable(s.type, ity, s.loc)
            self.scope.declare(s.name, s.type, s.loc)
        elif isinstance(s, A.ExprStmt):
            self.expr(s.expr)
        elif isinstance(s, A.If):
            self._condition(s.cond)
            self.stmt(s.then)
            if s.els is not None:
                self.stmt(s.els)
        elif isinstance(s, A.For):
            outer = self.scope
            self.scope = Scope(outer)
            if s.init is not None:
                self.stmt(s.init)
            if s.cond is not None:
                self._condition(s.cond)
            if s.step is not None:
                self.expr(s.step)
            self.loop_depth += 1
            self.stmt(s.body)
            self.loop_depth -= 1
            self.scope = outer
        elif isinstance(s, A.While):
            self._condition(s.cond)
            self.loop_depth += 1
            self.stmt(s.body)
            self.loop_depth -= 1
        elif isinstance(s, A.DoWhile):
            self.loop_depth += 1
            self.stmt(s.body)
            self.loop_depth -= 1
            self._condition(s.cond)
        elif isinstance(s, A.Return):
            if s.value is not None:
                vt = self.expr(s.value)
                if isinstance(self.current_return, A.CType) and \
                        self.current_return.kind == "void":
                    raise self._err(s.loc, "returning a value from void function")
            elif isinstance(self.current_return, A.CType) and \
                    self.current_return.kind != "void":
                raise self._err(s.loc, "missing return value")
        elif isinstance(s, (A.Break, A.Continue)):
            if self.loop_depth == 0:
                raise self._err(s.loc, "break/continue outside of a loop")
        elif isinstance(s, A.Pragma):
            if s.kind != "prioritize":
                raise self._err(s.loc, f"unknown safegen pragma {s.kind!r}")
        else:
            raise UnsupportedFeatureError(f"unsupported statement {type(s).__name__}")

    def _condition(self, e: A.Expr) -> None:
        ty = self.expr(e)
        if isinstance(ty, (A.ArrayType, A.PointerType, A.VectorType)):
            raise self._err(e.loc, "condition must be scalar")

    def _check_assignable(self, target_ty, value_ty, loc) -> None:
        if isinstance(target_ty, A.VectorType):
            if not isinstance(value_ty, A.VectorType):
                raise self._err(loc, "vector variables need vector initializers")
            return
        if isinstance(target_ty, (A.ArrayType, A.PointerType)):
            if not isinstance(value_ty, (A.ArrayType, A.PointerType)):
                raise self._err(loc, "cannot assign scalar to pointer/array")
            return
        if not self._is_arith(value_ty):
            raise self._err(loc, "cannot assign non-arithmetic value")

    # -- expressions ------------------------------------------------------------------

    def expr(self, e: A.Expr):
        ty = self._expr(e)
        e.ty = ty
        return ty

    def _expr(self, e: A.Expr):
        if isinstance(e, A.IntLit):
            return _INT
        if isinstance(e, A.FloatLit):
            return _DOUBLE
        if isinstance(e, A.IntervalLit):
            return _DOUBLE
        if isinstance(e, A.Ident):
            ty = self.scope.lookup(e.name)
            if ty is None:
                raise self._err(e.loc, f"use of undeclared identifier {e.name!r}")
            return ty
        if isinstance(e, A.BinOp):
            return self._binop(e)
        if isinstance(e, A.UnOp):
            return self._unop(e)
        if isinstance(e, A.Assign):
            return self._assign(e)
        if isinstance(e, A.Call):
            return self._call(e)
        if isinstance(e, A.Index):
            base_ty = self.expr(e.base)
            idx_ty = self.expr(e.index)
            if not (isinstance(idx_ty, A.CType) and idx_ty.is_integer()):
                raise self._err(e.loc, "array index must be an integer")
            if isinstance(base_ty, A.ArrayType):
                return base_ty.elem
            if isinstance(base_ty, A.PointerType):
                return base_ty.pointee
            raise self._err(e.loc, "indexing a non-array value")
        if isinstance(e, A.Cast):
            self.expr(e.expr)
            return e.to
        if isinstance(e, A.Cond):
            self._condition(e.cond)
            tt = self.expr(e.then)
            et = self.expr(e.els)
            u = self._unify_arith(tt, et)
            if u is None:
                raise self._err(e.loc, "incompatible branches in ?:")
            return u
        raise UnsupportedFeatureError(f"unsupported expression {type(e).__name__}")

    def _binop(self, e: A.BinOp):
        lt = self.expr(e.lhs)
        rt = self.expr(e.rhs)
        op = e.op
        if isinstance(lt, A.VectorType) or isinstance(rt, A.VectorType):
            if op in ("+", "-", "*", "/") and lt == rt:
                return lt
            raise self._err(e.loc, f"unsupported vector operation {op!r}")
        if op in ("&&", "||", "==", "!=", "<", "<=", ">", ">="):
            if not (self._is_arith(lt) and self._is_arith(rt)):
                raise self._err(e.loc, f"operands of {op!r} must be arithmetic")
            return _INT
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if not (isinstance(lt, A.CType) and lt.is_integer()
                    and isinstance(rt, A.CType) and rt.is_integer()):
                raise self._err(e.loc, f"operands of {op!r} must be integers")
            return _INT
        if op in ("+", "-", "*", "/"):
            # pointer arithmetic: ptr + int
            if isinstance(lt, (A.PointerType, A.ArrayType)) and op in ("+", "-"):
                if isinstance(rt, A.CType) and rt.is_integer():
                    return lt if isinstance(lt, A.PointerType) else \
                        A.PointerType(lt.elem)
                raise self._err(e.loc, "invalid pointer arithmetic")
            u = self._unify_arith(lt, rt)
            if u is None:
                raise self._err(e.loc, f"invalid operands to {op!r}")
            return u
        raise UnsupportedFeatureError(f"unsupported operator {op!r}")

    def _unop(self, e: A.UnOp):
        ot = self.expr(e.operand)
        op = e.op
        if op in ("-",):
            if isinstance(ot, A.VectorType):
                return ot
            if not self._is_arith(ot):
                raise self._err(e.loc, "negating a non-arithmetic value")
            return ot
        if op in ("!",):
            return _INT
        if op in ("~",):
            if not (isinstance(ot, A.CType) and ot.is_integer()):
                raise self._err(e.loc, "~ needs an integer operand")
            return _INT
        if op in ("++", "--", "p++", "p--"):
            if not (isinstance(ot, A.CType) and ot.is_integer()):
                raise self._err(
                    e.loc, "increment/decrement supported on integers only"
                )
            if not self._is_lvalue(e.operand):
                raise self._err(e.loc, "increment target must be an lvalue")
            return ot
        if op == "&":
            # address-of: only for passing arrays/scalars to intrinsics
            return A.PointerType(ot)
        if op == "*":
            if isinstance(ot, A.PointerType):
                return ot.pointee
            if isinstance(ot, A.ArrayType):
                return ot.elem
            raise self._err(e.loc, "dereferencing a non-pointer")
        raise UnsupportedFeatureError(f"unsupported unary operator {op!r}")

    @staticmethod
    def _is_lvalue(e: A.Expr) -> bool:
        return isinstance(e, (A.Ident, A.Index)) or (
            isinstance(e, A.UnOp) and e.op == "*"
        )

    def _assign(self, e: A.Assign):
        if not self._is_lvalue(e.target):
            raise self._err(e.loc, "assignment target must be an lvalue")
        tt = self.expr(e.target)
        vt = self.expr(e.value)
        if e.op != "=" and not (self._is_arith(tt) or isinstance(tt, A.VectorType)):
            raise self._err(e.loc, "compound assignment needs arithmetic target")
        self._check_assignable(tt, vt, e.loc)
        return tt

    def _call(self, e: A.Call):
        if e.name in MATH_FUNCS:
            if len(e.args) != MATH_FUNCS[e.name]:
                raise self._err(
                    e.loc, f"{e.name} expects {MATH_FUNCS[e.name]} argument(s)"
                )
            for a in e.args:
                at = self.expr(a)
                if not self._is_arith(at):
                    raise self._err(e.loc, f"{e.name} needs arithmetic arguments")
            return _DOUBLE
        if e.name in INTRINSIC_SIGNATURES:
            sig = INTRINSIC_SIGNATURES[e.name]
            if len(e.args) != len(sig.params):
                raise self._err(
                    e.loc, f"{e.name} expects {len(sig.params)} argument(s)"
                )
            for a in e.args:
                self.expr(a)
            return sig.result
        if e.name in self.functions:
            f = self.functions[e.name]
            if len(e.args) != len(f.params):
                raise self._err(
                    e.loc,
                    f"{e.name} expects {len(f.params)} argument(s), "
                    f"got {len(e.args)}",
                )
            for a in e.args:
                self.expr(a)
            return f.return_type
        raise self._err(e.loc, f"call to unknown function {e.name!r}")

"""Tokenizer for the supported C subset.

Handles identifiers/keywords, integer and floating literals (decimal and
hex), all operators and punctuation used by C expressions, ``//`` and
``/* */`` comments, and preprocessor lines.  Preprocessor lines are skipped
except ``#pragma safegen ...``, which is surfaced as a PRAGMA token so the
parser can attach it to the following statement (Section VI-C).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    """void int long char unsigned float double const if else for while do
    return break continue static inline restrict""".split()
)

# Longest-match operator table (order matters: longest first).
_OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ",", ";", "(", ")", "[", "]", "{", "}", ".",
]

_FLOAT_RE = re.compile(
    r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fFlL]?"
)
_HEXFLOAT_RE = re.compile(r"0[xX][0-9a-fA-F]*\.?[0-9a-fA-F]*[pP][+-]?\d+[fFlL]?")
_INT_RE = re.compile(r"(?:0[xX][0-9a-fA-F]+|\d+)[uUlL]*")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_PRAGMA_RE = re.compile(r"#\s*pragma\s+safegen\s+(\w+)\s*\(\s*([A-Za-z0-9_\[\].]+)\s*\)")


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'op' | 'pragma' | 'eof'
    text: str
    line: int
    col: int
    # Parsed payload for pragma tokens: (pragma_kind, argument).
    payload: object = None

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize C source; raises :class:`repro.errors.ParseError` on
    unrecognized input."""
    tokens: List[Token] = []
    line = 1
    i = 0
    line_start = 0
    n = len(source)

    def col() -> int:
        return i - line_start + 1

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        # comments
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise ParseError("unterminated block comment", line, col())
            line += source.count("\n", i, j)
            if "\n" in source[i:j]:
                line_start = i + source[i:j].rfind("\n") + 1
            i = j + 2
            continue
        # preprocessor / pragma
        if ch == "#":
            j = source.find("\n", i)
            if j < 0:
                j = n
            text = source[i:j]
            m = _PRAGMA_RE.match(text)
            if m:
                tokens.append(Token("pragma", text.strip(), line, col(),
                                    payload=(m.group(1), m.group(2))))
            # other preprocessor lines (includes, defines) are skipped
            i = j
            continue
        # numeric literals (floats before ints: "1.5" must not lex as "1")
        m = _HEXFLOAT_RE.match(source, i) or _FLOAT_RE.match(source, i)
        if m:
            tokens.append(Token("float", m.group(0), line, col()))
            i = m.end()
            continue
        m = _INT_RE.match(source, i)
        if m:
            tokens.append(Token("int", m.group(0), line, col()))
            i = m.end()
            continue
        # identifiers / keywords
        m = _IDENT_RE.match(source, i)
        if m:
            word = m.group(0)
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col()))
            i = m.end()
            continue
        # operators / punctuation
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col()))
                i += len(op)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col())
    tokens.append(Token("eof", "", line, col()))
    return tokens

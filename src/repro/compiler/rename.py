"""Alpha renaming: make every declared name unique within a function.

C has block scoping; the generated Python has function scoping, so an inner
``double y`` must not clobber an outer ``y``.  This pass walks the scopes
and renames shadowing declarations (``y`` -> ``y__2``), rewriting all uses.
It runs after typechecking (names are known-valid) and before TAC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from . import cast as A

__all__ = ["alpha_rename"]


def alpha_rename(unit: A.TranslationUnit) -> A.TranslationUnit:
    global_names = {g.name for g in unit.globals}
    for f in unit.funcs:
        if f.body is None:
            continue
        _Renamer(f, global_names).run()
    return unit


class _Scope:
    def __init__(self, parent: Optional["_Scope"]) -> None:
        self.parent = parent
        self.map: Dict[str, str] = {}

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.map:
                return scope.map[name]
            scope = scope.parent
        return None


class _Renamer:
    def __init__(self, func: A.FuncDef, global_names: Set[str]) -> None:
        self.func = func
        self.used: Set[str] = set(global_names)
        self.used.update(p.name for p in func.params)

    def run(self) -> None:
        root = _Scope(None)
        for p in self.func.params:
            root.map[p.name] = p.name
        self.stmt(self.func.body, _Scope(root))

    def _fresh(self, name: str) -> str:
        if name not in self.used:
            self.used.add(name)
            return name
        i = 2
        while f"{name}__{i}" in self.used:
            i += 1
        fresh = f"{name}__{i}"
        self.used.add(fresh)
        return fresh

    # -- statements ---------------------------------------------------------

    def stmt(self, s: A.Stmt, scope: _Scope) -> None:
        if isinstance(s, A.Compound):
            inner = _Scope(scope)
            for sub in s.stmts:
                self.stmt(sub, inner)
        elif isinstance(s, A.Decl):
            if s.init is not None:
                self.expr(s.init, scope)  # initializer sees the outer name
            s.name = self._declare(s.name, scope)
        elif isinstance(s, A.ExprStmt):
            self.expr(s.expr, scope)
        elif isinstance(s, A.If):
            self.expr(s.cond, scope)
            self.stmt(s.then, _Scope(scope))
            if s.els is not None:
                self.stmt(s.els, _Scope(scope))
        elif isinstance(s, A.For):
            header = _Scope(scope)
            if s.init is not None:
                self.stmt(s.init, header)
            if s.cond is not None:
                self.expr(s.cond, header)
            if s.step is not None:
                self.expr(s.step, header)
            self.stmt(s.body, _Scope(header))
        elif isinstance(s, A.While):
            self.expr(s.cond, scope)
            self.stmt(s.body, _Scope(scope))
        elif isinstance(s, A.DoWhile):
            self.stmt(s.body, _Scope(scope))
            self.expr(s.cond, scope)
        elif isinstance(s, A.Return):
            if s.value is not None:
                self.expr(s.value, scope)
        elif isinstance(s, A.Pragma):
            renamed = scope.lookup(s.arg)
            if renamed is not None:
                s.arg = renamed
        # Break / Continue: nothing to do.

    def _declare(self, name: str, scope: _Scope) -> str:
        fresh = self._fresh(name)
        scope.map[name] = fresh
        return fresh

    # -- expressions ----------------------------------------------------------

    def expr(self, e: Optional[A.Expr], scope: _Scope) -> None:
        if e is None:
            return
        if isinstance(e, A.Ident):
            renamed = scope.lookup(e.name)
            if renamed is not None:
                e.name = renamed
            return
        for field in getattr(e, "__dataclass_fields__", {}):
            v = getattr(e, field)
            if isinstance(v, A.Expr):
                self.expr(v, scope)
            elif isinstance(v, list):
                for item in v:
                    if isinstance(item, A.Expr):
                        self.expr(item, scope)

"""Three-address-code transformation (Section VI-C).

Rewrites every floating-point expression so that each floating-point
operation appears in a statement of its own, introducing ``__tN`` temporaries
for intermediate results.  This gives the static analysis a one-op-per-node
anchor (the ``stmt_id``) and lets a ``prioritize`` pragma target an
individual operation.

Also attaches ``#pragma safegen prioritize(v)`` annotations to the statement
that follows them (the ``prioritize`` field of :class:`ExprStmt`).

Requires a typechecked AST (expression ``ty`` fields must be filled).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..errors import CompileError, UnsupportedFeatureError
from . import cast as A
from .typecheck import MATH_FUNCS

__all__ = ["to_tac", "collect_names"]

_DOUBLE = A.CType("double")


def collect_names(node, acc: Optional[Set[str]] = None) -> Set[str]:
    """All identifier names appearing anywhere in the AST."""
    if acc is None:
        acc = set()
    if isinstance(node, A.Ident):
        acc.add(node.name)
    if isinstance(node, (A.Decl,)):
        acc.add(node.name)
    if isinstance(node, A.FuncDef):
        acc.add(node.name)
        for p in node.params:
            acc.add(p.name)
    for f in getattr(node, "__dataclass_fields__", {}):
        v = getattr(node, f)
        if isinstance(v, A.Node):
            collect_names(v, acc)
        elif isinstance(v, list):
            for item in v:
                if isinstance(item, A.Node):
                    collect_names(item, acc)
    return acc


def _is_float(e: A.Expr) -> bool:
    return isinstance(e.ty, A.CType) and e.ty.is_float()


def _is_float_op(e: A.Expr) -> bool:
    """Whether ``e`` is a floating-point *operation* (creates a value and, in
    the affine world, an error symbol)."""
    if isinstance(e, A.BinOp) and _is_float(e) and e.op in ("+", "-", "*", "/"):
        return True
    if isinstance(e, A.UnOp) and e.op == "-" and _is_float(e):
        return True
    if isinstance(e, A.Call) and e.name in MATH_FUNCS:
        return True
    return False


def to_tac(unit: A.TranslationUnit) -> A.TranslationUnit:
    """Transform all function bodies to TAC form in place; returns the unit."""
    for f in unit.funcs:
        if f.body is None:
            continue
        used = collect_names(f)
        xf = _TAC(used)
        f.body = A.Compound(loc=f.body.loc, stmts=xf.block(f.body.stmts))
    return unit


class _TAC:
    def __init__(self, used_names: Set[str]) -> None:
        self.used = used_names
        self.counter = 0
        self.stmt_counter = 0
        self.pending_prioritize: Optional[str] = None

    def _temp(self) -> str:
        while True:
            name = f"__t{self.counter}"
            self.counter += 1
            if name not in self.used:
                self.used.add(name)
                return name

    def _next_stmt_id(self) -> int:
        self.stmt_counter += 1
        return self.stmt_counter

    # -- blocks / statements -----------------------------------------------------

    def block(self, stmts: List[A.Stmt]) -> List[A.Stmt]:
        out: List[A.Stmt] = []
        for s in stmts:
            if isinstance(s, A.Pragma):
                if s.kind == "prioritize":
                    self.pending_prioritize = s.arg
                continue
            out.extend(self.stmt(s))
        return out

    def stmt(self, s: A.Stmt) -> List[A.Stmt]:
        prio = self.pending_prioritize
        self.pending_prioritize = None

        if isinstance(s, A.Compound):
            return [A.Compound(loc=s.loc, stmts=self.block(s.stmts))]

        if isinstance(s, A.Decl):
            if isinstance(s.init, A.Cond) and isinstance(s.type, A.CType) \
                    and s.type.is_float():
                # double m = c ? a : b  ->  double m; if (c) m=a; else m=b;
                cond_expr = s.init
                s.init = None
                s.stmt_id = None
                ident = A.Ident(loc=s.loc, name=s.name)
                ident.ty = s.type
                assign = A.Assign(loc=s.loc, op="=", target=ident,
                                  value=cond_expr)
                assign.ty = s.type
                follow = A.ExprStmt(loc=s.loc, expr=assign)
                return [s] + self._assign(follow, assign, prio)
            if s.init is None or (not _is_float(s.init)
                                  and not _contains_float_op(s.init)):
                s.stmt_id = None
                return [s]
            pre: List[A.Stmt] = []
            value = self._flatten_operands(s.init, pre, prio)
            s.init = value
            if _is_float_op(value):
                s.stmt_id = self._next_stmt_id()
                if prio is not None:
                    s.prioritize = prio
            else:
                s.stmt_id = None
            return pre + [s]

        if isinstance(s, A.ExprStmt):
            return self._expr_stmt(s, prio)

        if isinstance(s, A.Return):
            if s.value is None or not _contains_float_op(s.value):
                return [s]
            pre = []
            s.value, _ = self._flatten_into(s.value, pre, prio)
            return pre + [s]

        if isinstance(s, A.If):
            pre = []
            s.cond = self.flatten_cond(s.cond, pre, prio)
            s.then = self._single(self.stmt_in_new_block(s.then))
            if s.els is not None:
                s.els = self._single(self.stmt_in_new_block(s.els))
            return pre + [s]

        if isinstance(s, A.For):
            float_free_header = not (
                _contains_float_op(s.cond)
                or _contains_float_op(s.step)
                or (isinstance(s.init, A.Decl) and _contains_float_op(s.init.init))
                or (isinstance(s.init, A.ExprStmt) and _contains_float_op(s.init.expr))
            )
            if float_free_header:
                # Common case (integer loop header): keep the For structure
                # so the backends can recognize canonical counting loops.
                s.body = self._single(self.stmt_in_new_block(s.body))
                return [s]
            init_stmts: List[A.Stmt] = []
            if s.init is not None:
                init_stmts = self.stmt(s.init)
            body = self.stmt_in_new_block(s.body)
            step_stmts = self.stmt(A.ExprStmt(loc=s.loc, expr=s.step)) \
                if s.step is not None else []
            # Float-dependent condition: re-evaluate inside the loop.
            cond_pre: List[A.Stmt] = []
            cond = self.flatten_cond(s.cond, cond_pre, None) \
                if s.cond is not None else A.IntLit(loc=s.loc, value=1)
            inner = cond_pre + [
                A.If(loc=s.loc, cond=A.UnOp(loc=s.loc, op="!", operand=cond),
                     then=A.Break(loc=s.loc))
            ] + body + step_stmts
            loop = A.While(loc=s.loc, cond=A.IntLit(loc=s.loc, value=1),
                           body=A.Compound(loc=s.loc, stmts=inner))
            return init_stmts + [loop]

        if isinstance(s, A.While):
            if _contains_float_op(s.cond):
                cond_pre = []
                cond = self.flatten_cond(s.cond, cond_pre, prio)
                inner = cond_pre + [
                    A.If(loc=s.loc, cond=A.UnOp(loc=s.loc, op="!", operand=cond),
                         then=A.Break(loc=s.loc))
                ] + self.stmt_in_new_block(s.body)
                return [A.While(loc=s.loc, cond=A.IntLit(loc=s.loc, value=1),
                                body=A.Compound(loc=s.loc, stmts=inner))]
            s.body = self._single(self.stmt_in_new_block(s.body))
            return [s]

        if isinstance(s, A.DoWhile):
            if _contains_float_op(s.cond):
                body = self.stmt_in_new_block(s.body)
                cond_pre = []
                cond = self.flatten_cond(s.cond, cond_pre, prio)
                inner = body + cond_pre + [
                    A.If(loc=s.loc, cond=A.UnOp(loc=s.loc, op="!", operand=cond),
                         then=A.Break(loc=s.loc))
                ]
                return [A.While(loc=s.loc, cond=A.IntLit(loc=s.loc, value=1),
                                body=A.Compound(loc=s.loc, stmts=inner))]
            s.body = self._single(self.stmt_in_new_block(s.body))
            return [s]

        return [s]

    def stmt_in_new_block(self, s: A.Stmt) -> List[A.Stmt]:
        if isinstance(s, A.Compound):
            return self.block(s.stmts)
        return self.block([s])

    @staticmethod
    def _single(stmts: List[A.Stmt]) -> A.Stmt:
        if len(stmts) == 1:
            return stmts[0]
        return A.Compound(stmts=stmts)

    # -- expression statements ------------------------------------------------------

    def _expr_stmt(self, s: A.ExprStmt, prio: Optional[str]) -> List[A.Stmt]:
        e = s.expr
        if isinstance(e, A.Assign):
            return self._assign(s, e, prio)
        if not _contains_float_op(e):
            return [s]
        pre: List[A.Stmt] = []
        s.expr, s.stmt_id = self._flatten_into(e, pre, prio)
        return pre + [s]

    def _assign(self, s: A.ExprStmt, e: A.Assign, prio: Optional[str]) -> List[A.Stmt]:
        # Desugar compound assignment first: x op= v  ->  x = x op v.
        if e.op != "=":
            binop = A.BinOp(loc=e.loc, op=e.op[:-1], lhs=_clone_lvalue(e.target),
                            rhs=e.value)
            binop.ty = e.target.ty
            e = A.Assign(loc=e.loc, op="=", target=e.target, value=binop)
            e.ty = e.target.ty
            s = A.ExprStmt(loc=s.loc, expr=e)

        target_float = _is_float(e.target) if e.target.ty is not None else False
        if not target_float or (not _contains_float_op(e.value)
                                and not isinstance(e.value, A.Cond)):
            # Flatten float ops hiding in integer contexts (rare) and move on.
            if _contains_float_op(e.value):
                pre: List[A.Stmt] = []
                e.value, _ = self._flatten_into(e.value, pre, prio)
                return pre + [s]
            return [s]

        # Ternary on floats: desugar to if/else around two TAC assignments.
        if isinstance(e.value, A.Cond):
            cond_pre: List[A.Stmt] = []
            cond = self.flatten_cond(e.value.cond, cond_pre, None)
            then_assign = A.ExprStmt(loc=s.loc, expr=A.Assign(
                loc=s.loc, op="=", target=e.target, value=e.value.then))
            then_assign.expr.ty = e.target.ty
            els_assign = A.ExprStmt(loc=s.loc, expr=A.Assign(
                loc=s.loc, op="=", target=_clone_lvalue(e.target),
                value=e.value.els))
            els_assign.expr.ty = e.target.ty
            branch = A.If(loc=s.loc, cond=cond,
                          then=self._single(self._assign(then_assign,
                                                         then_assign.expr, prio)),
                          els=self._single(self._assign(els_assign,
                                                        els_assign.expr, prio)))
            return cond_pre + [branch]

        pre = []
        if isinstance(e.target, A.Index):
            # Array stores go through a scalar temp (true three-address
            # form); the temp, not the array, is then the op's variable —
            # which keeps priority gathering cheap at runtime.
            e.value, _ = self._flatten_into(e.value, pre, prio)
            s.stmt_id = None
            return pre + [s]
        value = self._flatten_operands(e.value, pre, prio)
        e.value = value
        s.stmt_id = self._next_stmt_id() if _is_float_op(value) else None
        s.prioritize = prio if s.stmt_id is not None else None
        return pre + [s]

    # -- expression flattening --------------------------------------------------------

    def _flatten_into(self, e: A.Expr, pre: List[A.Stmt],
                      prio: Optional[str]):
        """Fully flatten ``e``; returns (simple expr, stmt_id of last op)."""
        simple = self._flatten_operands(e, pre, prio)
        if _is_float_op(simple):
            return self._emit_temp(simple, pre, prio)
        return simple, None

    def _flatten_operands(self, e: A.Expr, pre: List[A.Stmt],
                          prio: Optional[str]) -> A.Expr:
        """Flatten all float-op *sub*-expressions of ``e`` into temps; ``e``
        itself stays an op (becoming the statement's single operation)."""
        if isinstance(e, A.BinOp):
            e.lhs = self._simple(e.lhs, pre, prio)
            e.rhs = self._simple(e.rhs, pre, prio)
            return e
        if isinstance(e, A.UnOp):
            e.operand = self._simple(e.operand, pre, prio)
            return e
        if isinstance(e, A.Call):
            e.args = [self._simple(a, pre, prio) for a in e.args]
            return e
        if isinstance(e, A.Index):
            e.index = self._flatten_int(e.index, pre)
            return e
        if isinstance(e, A.Cast):
            e.expr = self._simple(e.expr, pre, prio)
            return e
        return e

    def _simple(self, e: A.Expr, pre: List[A.Stmt],
                prio: Optional[str]) -> A.Expr:
        """Reduce ``e`` to a 'simple' expression (no float ops)."""
        if isinstance(e, (A.IntLit, A.FloatLit, A.IntervalLit, A.Ident)):
            return e
        if isinstance(e, A.Index):
            e.index = self._flatten_int(e.index, pre)
            if _contains_float_op(e.base):
                raise UnsupportedFeatureError("float ops in array base")
            return e
        if isinstance(e, A.Cast):
            e.expr = self._simple(e.expr, pre, prio)
            return e
        if _is_float_op(e):
            e = self._flatten_operands(e, pre, prio)
            ident, _ = self._emit_temp(e, pre, prio)
            return ident
        if isinstance(e, A.BinOp):  # integer expression
            e.lhs = self._simple(e.lhs, pre, prio)
            e.rhs = self._simple(e.rhs, pre, prio)
            return e
        if isinstance(e, A.UnOp):
            e.operand = self._simple(e.operand, pre, prio)
            return e
        if isinstance(e, A.Cond):
            raise UnsupportedFeatureError(
                "ternary expressions are only supported as direct "
                "assignment values"
            )
        return e

    def _flatten_int(self, e: A.Expr, pre: List[A.Stmt]) -> A.Expr:
        if _contains_float_op(e):
            raise UnsupportedFeatureError(
                "floating-point operations in array subscripts"
            )
        return e

    def _emit_temp(self, op_expr: A.Expr, pre: List[A.Stmt],
                   prio: Optional[str]):
        name = self._temp()
        decl = A.Decl(loc=op_expr.loc, name=name, type=_DOUBLE, init=op_expr)
        decl.stmt_id = self._next_stmt_id()
        # A pragma priority applies to every op of the annotated source stmt.
        if prio is not None:
            setattr(decl, "prioritize", prio)
        pre.append(decl)
        ident = A.Ident(loc=op_expr.loc, name=name)
        ident.ty = _DOUBLE
        return ident, decl.stmt_id

    def flatten_cond(self, e: A.Expr, pre: List[A.Stmt],
                     prio: Optional[str]) -> A.Expr:
        """Flatten float operations inside a branch condition."""
        if isinstance(e, A.BinOp) and e.op in ("&&", "||", "==", "!=",
                                               "<", "<=", ">", ">="):
            e.lhs = self.flatten_cond(e.lhs, pre, prio) \
                if e.op in ("&&", "||") else self._simple(e.lhs, pre, prio)
            e.rhs = self.flatten_cond(e.rhs, pre, prio) \
                if e.op in ("&&", "||") else self._simple(e.rhs, pre, prio)
            return e
        if isinstance(e, A.UnOp) and e.op == "!":
            e.operand = self.flatten_cond(e.operand, pre, prio)
            return e
        return self._simple(e, pre, prio)


def _contains_float_op(e: Optional[A.Expr]) -> bool:
    if e is None:
        return False
    if _is_float_op(e):
        return True
    for f in getattr(e, "__dataclass_fields__", {}):
        v = getattr(e, f)
        if isinstance(v, A.Expr) and _contains_float_op(v):
            return True
        if isinstance(v, list):
            for item in v:
                if isinstance(item, A.Expr) and _contains_float_op(item):
                    return True
    return False


def _clone_lvalue(e: A.Expr) -> A.Expr:
    """Deep-copy an lvalue expression (for compound-assignment desugaring)."""
    if isinstance(e, A.Ident):
        out = A.Ident(loc=e.loc, name=e.name)
    elif isinstance(e, A.Index):
        out = A.Index(loc=e.loc, base=_clone_lvalue(e.base),
                      index=_clone_expr(e.index))
    elif isinstance(e, A.UnOp) and e.op == "*":
        out = A.UnOp(loc=e.loc, op="*", operand=_clone_lvalue(e.operand))
    else:
        raise CompileError(f"cannot clone lvalue {type(e).__name__}")
    out.ty = e.ty
    return out


def _clone_expr(e: A.Expr) -> A.Expr:
    import copy

    return copy.deepcopy(e)

"""Command-line interface: ``python -m repro``.

Mirrors how the original SafeGen binary is used — C in, sound C out — plus
conveniences this reproduction can offer because the output is runnable:

    python -m repro compile prog.c --config f64a-dspv -k 16
    python -m repro run prog.c --config f64a-dsnn -k 8 -- 0.3 0.4 100
    python -m repro analyze prog.c -k 8
    python -m repro diag prog.c 0.3 0.4 100 --min-located 0.9
    python -m repro bench henon --config f64a-dspv -k 16

Service-layer additions: every subcommand accepts ``--cache-dir DIR`` to
reuse compilations across invocations (content-addressed on-disk cache);
``compile`` takes several files at once with ``--jobs N``; ``bench`` sweeps
``--k-sweep 8,16,32`` in parallel with ``--jobs N``; and

    python -m repro batch jobs.json --jobs 4 --stats stats.json

executes a JSON manifest of compile/run jobs through the batch engine.

Server mode keeps the cache and worker pool warm across requests:

    python -m repro serve --port 8437 --cache-dir .repro-cache --workers 4
    python -m repro request run prog.c 0.3 0.4 100 --port 8437
    python -m repro request stats --port 8437
    python -m repro request drain --port 8437

(run arguments follow the file directly; options come after.)
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import List, Optional

from . import __version__
from .compiler import CompilerConfig, SafeGen
from .errors import ReproError, format_cli_error

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeGen (reproduction): compile C floating-point "
                    "programs into sound programs using affine arithmetic.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--config", default="f64a-dsnn",
                       help="configuration string (paper notation), e.g. "
                            "f64a-dspv, dda-dsnn, ia-f64, yalaa-aff0")
        p.add_argument("-k", type=int, default=16,
                       help="max error symbols per affine variable")
        p.add_argument("--entry", default=None,
                       help="entry function (default: last defined)")
        p.add_argument("--int-param", action="append", default=[],
                       metavar="NAME=VALUE",
                       help="concrete value for an integer parameter "
                            "(lets the analysis unroll its loops)")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed compile cache directory "
                            "(reused across invocations)")
        p.add_argument("--passes", default=None, metavar="P1,P2,...",
                       help="explicit compiler pass pipeline (see "
                            "repro.compiler.available_passes())")
        p.add_argument("--no-opt", action="store_true",
                       help="skip the sound TAC optimization passes "
                            "(cse, dte)")
        p.add_argument("--timings", action="store_true",
                       help="report per-pass wall time on stderr")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="append a JSONL span trace of this invocation "
                            "(render it with 'repro trace show FILE')")

    p_compile = sub.add_parser("compile",
                               help="print the transformed (sound) C")
    common(p_compile)
    p_compile.add_argument("files", nargs="+", metavar="file",
                           help="input C file(s) ('-' for stdin)")
    p_compile.add_argument("--emit", choices=["c", "python", "both"],
                           default="c")
    p_compile.add_argument("--emit-after", action="append", default=[],
                           metavar="PASS",
                           help="also dump the intermediate program after "
                                "the named pass (repeatable)")
    p_compile.add_argument("--jobs", type=int, default=1,
                           help="compile files in parallel on N processes")

    p_run = sub.add_parser("run", help="compile and execute on inputs")
    common(p_run)
    p_run.add_argument("file")
    p_run.add_argument("args", nargs="*",
                       help="arguments: numbers, or @file.json for arrays")
    p_run.add_argument("--uncertainty-ulps", type=float, default=1.0)
    p_run.add_argument("--batch", default=None, metavar="FILE.jsonl",
                       help="run one compiled program over many input "
                            "boxes: each line of FILE.jsonl is a JSON "
                            "array of positional arguments ('-' reads "
                            "stdin); positional args must be omitted")
    p_run.add_argument("--json", action="store_true",
                       help="machine-readable output")

    p_analyze = sub.add_parser(
        "analyze",
        help="max-reuse analysis (default) or a domain query (--query)")
    common(p_analyze)
    p_analyze.add_argument("file")
    p_analyze.add_argument("--query", default=None,
                           choices=["max-error", "safe-box",
                                    "unsafe-regions"],
                           help="domain analysis over an input box instead "
                                "of the max-reuse report")
    p_analyze.add_argument("--box", action="append", default=[],
                           metavar="NAME=LO:HI",
                           help="ranged input parameter (repeatable); "
                                "every double parameter needs a --box or "
                                "a --fix")
    p_analyze.add_argument("--fix", action="append", default=[],
                           metavar="NAME=VALUE",
                           help="concrete value for a non-ranged parameter")
    p_analyze.add_argument("--eps", type=float, default=None,
                           help="error threshold for safe-box / "
                                "unsafe-regions")
    p_analyze.add_argument("--budget", type=int, default=512,
                           metavar="N", help="max subbox evaluations")
    p_analyze.add_argument("--deadline", type=float, default=None,
                           metavar="S", help="wall-clock refinement limit")
    p_analyze.add_argument("--gap", type=float, default=None,
                           help="stop max-error once ub - lb <= GAP")
    p_analyze.add_argument("--wave", type=int, default=32,
                           help="subboxes per refinement wave")
    p_analyze.add_argument("--seed-point", action="append", default=[],
                           metavar="NAME=VALUE",
                           help="safe-box growth seed (default: box "
                                "midpoint)")
    p_analyze.add_argument("--pad-ulps", type=float, default=1.0,
                           help="outward box padding in ulps before each "
                                "evaluation")
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable output")

    p_diag = sub.add_parser(
        "diag", help="width-provenance diagnosis: compile, run with "
                     "attribution tracking, report error origins")
    common(p_diag)
    p_diag.add_argument("file")
    p_diag.add_argument("args", nargs="*",
                        help="arguments: numbers, or @file.json for arrays")
    p_diag.add_argument("--uncertainty-ulps", type=float, default=1.0)
    p_diag.add_argument("--runs", type=int, default=1,
                        help="sampled executions to aggregate")
    p_diag.add_argument("--top", type=int, default=10,
                        help="origins shown in the report")
    p_diag.add_argument("--min-located", type=float, default=None,
                        metavar="FRAC",
                        help="exit nonzero unless at least FRAC of the "
                             "attributed radius maps to concrete source "
                             "positions (CI gate)")
    p_diag.add_argument("--assert-top-origin", default=None, metavar="SUBSTR",
                        help="exit nonzero unless the heaviest origin "
                             "contains SUBSTR (CI gate)")
    p_diag.add_argument("--json", action="store_true",
                        help="machine-readable output")

    p_tune = sub.add_parser(
        "tune", help="autotune: sweep a seeded configuration space, score "
                     "by (width, float ops, wall), report diagnostics and "
                     "persist the winner into --cache-dir")
    common(p_tune)
    p_tune.add_argument("file")
    p_tune.add_argument("args", nargs="*",
                        help="arguments: numbers, or @file.json for arrays")
    p_tune.add_argument("--uncertainty-ulps", type=float, default=1.0)
    p_tune.add_argument("--candidates", type=int, default=24,
                        help="max candidate configurations to enumerate")
    p_tune.add_argument("--seconds", type=float, default=None, metavar="S",
                        help="soft wall-clock sweep budget (checked "
                             "between waves; the baseline always runs)")
    p_tune.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per candidate")
    p_tune.add_argument("--seed", type=int, default=0,
                        help="sweep seed: same seed, same candidates, "
                             "same winner")
    p_tune.add_argument("--jobs", type=int, default=1,
                        help="measure candidates in parallel on N processes")
    p_tune.add_argument("--top", type=int, default=10,
                        help="rows shown per report section")
    p_tune.add_argument("--json", action="store_true",
                        help="machine-readable output")

    p_bench = sub.add_parser("bench", help="run a paper benchmark")
    common(p_bench)
    p_bench.add_argument("name", choices=["henon", "sor", "luf", "fgm"])
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.add_argument("--k-sweep", default=None, metavar="K1,K2,...",
                         help="measure a comma-separated list of k values "
                              "instead of a single -k point")
    p_bench.add_argument("--jobs", type=int, default=1,
                         help="run sweep points in parallel on N processes")

    p_batch = sub.add_parser(
        "batch", help="execute a JSON manifest of compile/run jobs")
    p_batch.add_argument("manifest",
                         help="jobs file: a list of job entries, or "
                              "{'defaults': {...}, 'jobs': [...]}")
    p_batch.add_argument("--jobs", type=int, default=1,
                         help="process-pool width (1 = serial)")
    p_batch.add_argument("--cache-dir", default=None, metavar="DIR")
    p_batch.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="per-job wall-clock timeout (pool mode only)")
    p_batch.add_argument("--retries", type=int, default=0,
                         help="extra attempts for failed/timed-out jobs")
    p_batch.add_argument("--stats", default=None, metavar="FILE",
                         help="write ServiceStats JSON here")
    p_batch.add_argument("--trace", default=None, metavar="FILE",
                         help="append a JSONL span trace of the batch "
                              "(worker spans included)")
    p_batch.add_argument("-o", "--output", default=None, metavar="FILE",
                         help="write job results JSON here (default stdout)")

    p_fuzz = sub.add_parser(
        "fuzz", help="differential soundness fuzzing campaign")
    p_fuzz.add_argument("--seconds", type=float, default=None, metavar="S",
                        help="time budget (default: 100 iterations if "
                             "neither --seconds nor --iterations is given)")
    p_fuzz.add_argument("--iterations", type=int, default=None, metavar="N",
                        help="exact number of seeds to run (fixed seed set; "
                             "composable with --seconds, first limit wins)")
    p_fuzz.add_argument("--jobs", type=int, default=1,
                        help="fan seeds out over N worker processes")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="first seed; the campaign runs seed, seed+1, "
                             "... (reproducible)")
    p_fuzz.add_argument("--timeout", type=float, default=60.0, metavar="S",
                        help="per-seed wall-clock timeout (pool mode); a "
                             "hung compile cannot stall the campaign")
    p_fuzz.add_argument("-k", type=int, default=8,
                        help="bounded-form size for the aa matrix points")
    p_fuzz.add_argument("--n-stmts", type=int, default=10,
                        help="statements per generated program")
    p_fuzz.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="compile cache shared by the fuzz workers")
    p_fuzz.add_argument("--corpus-dir", default=None, metavar="DIR",
                        help="write shrunken reproducers here "
                             "(default: tests/fuzz/corpus when it exists)")
    p_fuzz.add_argument("--no-save", action="store_true",
                        help="do not persist reproducers")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="report raw counterexamples without "
                             "delta-debugging them")
    p_fuzz.add_argument("--stats", default=None, metavar="FILE",
                        help="write ServiceStats JSON here")
    p_fuzz.add_argument("--artifact", default=None, metavar="FILE",
                        help="on failure, write the full failure bundle "
                             "(programs + inputs + configs JSON) here — "
                             "CI uploads it")
    p_fuzz.add_argument("--json", action="store_true",
                        help="machine-readable campaign report on stdout")

    p_serve = sub.add_parser(
        "serve", help="run the sound-computation server (asyncio daemon)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8437,
                         help="TCP port (0 = ephemeral; see --port-file)")
    p_serve.add_argument("--port-file", default=None, metavar="FILE",
                         help="write the actually-bound port here once "
                              "listening (for scripts using --port 0)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="compile cache shared with the pool workers")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker processes for cold compiles")
    p_serve.add_argument("--max-queue", type=int, default=64,
                         help="admitted-request bound; beyond it requests "
                              "get 'overloaded' replies")
    p_serve.add_argument("--pool-limit", type=int, default=None,
                         help="concurrent pool requests (default: workers)")
    p_serve.add_argument("--inline-limit", type=int, default=1,
                         help="concurrent cache-hit requests on the loop")
    p_serve.add_argument("--deadline", type=float, default=None, metavar="S",
                         help="default per-request deadline")
    p_serve.add_argument("--maxsize", type=int, default=256,
                         help="in-memory cache entries")
    p_serve.add_argument("--trace-log", default=None, metavar="FILE",
                         help="append every traced request's spans to this "
                              "JSONL file (traces all requests)")
    p_serve.add_argument("--trace-log-max-bytes", type=int, default=None,
                         metavar="N",
                         help="rotate the trace log past N bytes (old file "
                              "moves to FILE.1; default: never)")
    p_serve.add_argument("--diag-sample", type=int, default=16, metavar="N",
                         help="execute every N-th run request with width-"
                              "provenance tracking (the 'diag' op serves "
                              "the profile; 0 disables sampling)")
    p_serve.add_argument("--trace-buffer", type=int, default=4096,
                         help="in-memory span ring capacity (the 'trace' "
                              "op serves it)")
    p_serve.add_argument("--fleet", type=int, default=0, metavar="N",
                         help="serve a fleet instead: spawn N shard "
                              "daemons and run the consistent-hash "
                              "router in front of them")
    p_serve.add_argument("--shard", action="append", default=[],
                         metavar="HOST:PORT", dest="shards",
                         help="route to this already-running shard "
                              "(repeatable; implies fleet mode, no "
                              "spawning)")
    p_serve.add_argument("--forward-retries", type=int, default=2,
                         help="ring successors tried when a shard fails "
                              "mid-forward (fleet mode)")
    p_serve.add_argument("--health-interval", type=float, default=0.5,
                         metavar="S",
                         help="seconds between shard health sweeps "
                              "(fleet mode)")

    p_request = sub.add_parser(
        "request", help="send one request to a running server")
    p_request.add_argument("op",
                           choices=["compile", "run", "tune", "stats",
                                    "health", "drain", "trace", "metrics",
                                    "diag"])
    p_request.add_argument("file", nargs="?", default=None,
                           help="C file for compile/run ('-' for stdin)")
    p_request.add_argument("args", nargs="*",
                           help="run arguments (directly after the file): "
                                "numbers, or @file.json for arrays")
    p_request.add_argument("--host", default="127.0.0.1")
    p_request.add_argument("--port", type=int, default=8437)
    p_request.add_argument("--config", default="f64a-dsnn")
    p_request.add_argument("-k", type=int, default=16)
    p_request.add_argument("--entry", default=None)
    p_request.add_argument("--deadline", type=float, default=None,
                           metavar="S")
    p_request.add_argument("--uncertainty-ulps", type=float, default=1.0)
    p_request.add_argument("--repeats", type=int, default=1)
    p_request.add_argument("--candidates", type=int, default=24,
                           help="tune: max candidate configurations")
    p_request.add_argument("--seconds", type=float, default=None,
                           metavar="S", help="tune: soft sweep budget")
    p_request.add_argument("--seed", type=int, default=0,
                           help="tune: sweep seed")
    p_request.add_argument("--trace", default=None, metavar="FILE",
                           help="trace this compile/run on the server and "
                                "append its spans to this JSONL file")

    p_stats = sub.add_parser(
        "stats", help="fetch stats from a running server")
    p_stats.add_argument("--host", default="127.0.0.1")
    p_stats.add_argument("--port", type=int, default=8437)
    p_stats.add_argument("--prom", action="store_true",
                         help="Prometheus text exposition instead of JSON")

    p_trace = sub.add_parser(
        "trace", help="inspect a JSONL span trace file")
    p_trace.add_argument("action", choices=["show", "check"],
                         help="show = waterfall; check = well-formedness")
    p_trace.add_argument("file", help="JSONL trace file")
    p_trace.add_argument("--width", type=int, default=30,
                         help="waterfall bar width in characters")
    return parser


@contextmanager
def _trace_to(path: Optional[str], root_name: str):
    """Run the body under a fresh ambient tracer when ``path`` is set and
    append the recorded spans (JSONL) afterwards; no-op otherwise."""
    if not path:
        yield
        return
    from .obs import TraceLog, Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span(root_name):
            yield
    spans = tracer.to_dicts()
    with TraceLog(path) as log:
        log.write(spans)
    print(f"// trace {tracer.trace_id}: {len(spans)} spans -> {path}",
          file=sys.stderr)


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as fh:
        return fh.read()


def _int_params(pairs: List[str]) -> dict:
    out = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise SystemExit(f"--int-param expects NAME=VALUE, got {pair!r}")
        out[name] = int(value)
    return out


def _config(ns) -> CompilerConfig:
    overrides = {}
    if getattr(ns, "no_opt", False):
        overrides["opt"] = False
    passes = getattr(ns, "passes", None)
    if passes:
        overrides["passes"] = tuple(p for p in passes.split(",") if p)
    return CompilerConfig.from_string(ns.config, k=ns.k,
                                      int_params=_int_params(ns.int_param),
                                      **overrides)


def _parse_arg(text: str):
    if text.startswith("@"):
        with open(text[1:]) as fh:
            return json.load(fh)
    try:
        return int(text)
    except ValueError:
        return float(text)


def _compile_one(ns, source: str, path: str = "<source>"):
    """Compile through the service layer when a cache dir is configured,
    else directly.  Compiler errors exit with a ``file:line:col: message``
    diagnostic instead of a traceback."""
    cfg = _config(ns)
    emit_after = tuple(getattr(ns, "emit_after", ()) or ())
    try:
        if getattr(ns, "cache_dir", None):
            from .service import CompileService

            prog = CompileService(cache_dir=ns.cache_dir).compile(
                source, cfg, entry=ns.entry, emit_after=emit_after)
        else:
            prog = SafeGen(cfg).compile(source, entry=ns.entry,
                                        emit_after=emit_after)
    except ReproError as exc:
        raise SystemExit(format_cli_error(exc, path))
    if getattr(ns, "timings", False) and prog.pipeline_report is not None:
        print(prog.pipeline_report, file=sys.stderr)
    return prog


def cmd_compile(ns) -> int:
    sources = [_read_source(f) for f in ns.files]
    with _trace_to(ns.trace, "cli:compile"):
        if len(sources) == 1 and ns.jobs <= 1:
            programs = [_compile_one(ns, sources[0], path=ns.files[0])]
        else:
            from .compiler import BatchCompiler
            from .service import CompileJob

            batch = BatchCompiler(jobs=ns.jobs, cache_dir=ns.cache_dir)
            try:
                programs = batch.compile_many([
                    CompileJob(source=src, config=_config(ns), k=ns.k,
                               entry=ns.entry)
                    for src in sources
                ])
            except ReproError as exc:
                raise SystemExit(str(exc))
    for path, prog in zip(ns.files, programs):
        if len(programs) > 1:
            print(f"// ==== {path} ====")
        for pass_name in ns.emit_after:
            dump = prog.dumps.get(pass_name)
            if dump is not None:
                print(f"// ---- after pass '{pass_name}' ----")
                print(dump)
        if ns.emit in ("c", "both"):
            print(prog.c_source)
        if ns.emit in ("python", "both"):
            print(prog.python_source)
        if prog.analysis_report is not None:
            print(f"// {prog.analysis_report}", file=sys.stderr)
    return 0


def _read_batch_rows(path: str) -> List[list]:
    """Input boxes from a JSONL file: one JSON array of positional
    arguments per line (blank lines skipped); ``-`` reads stdin."""
    fh = sys.stdin if path == "-" else open(path)
    rows: List[list] = []
    try:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SystemExit(f"{path}:{lineno}: not valid JSON: {exc}")
            if not isinstance(row, list):
                raise SystemExit(
                    f"{path}:{lineno}: each line must be a JSON array of "
                    f"positional arguments, got {type(row).__name__}")
            rows.append(row)
    finally:
        if fh is not sys.stdin:
            fh.close()
    if not rows:
        raise SystemExit(f"{path}: no input boxes")
    return rows


def _cmd_run_batch(ns) -> int:
    with _trace_to(ns.trace, "cli:run-batch"):
        prog = _compile_one(ns, _read_source(ns.file), path=ns.file)
        rows = _read_batch_rows(ns.batch)
        try:
            res = prog.run_batch(rows, uncertainty_ulps=ns.uncertainty_ulps)
        except ReproError as exc:
            raise SystemExit(format_cli_error(exc, ns.file))
    if ns.json:
        payload = {"config": prog.config.name, "entry": prog.entry,
                   **res.to_dict()}
        print(json.dumps(payload))
        return 0
    st = res.stats
    print(f"entry      : {prog.entry} [{prog.config.name}]")
    print(f"rows       : {st.rows} in {st.cohorts} cohort(s), "
          f"{st.cohort_splits} split(s), "
          f"{st.scalar_fallbacks} scalar fallback(s)")
    for row in res.rows:
        tag = " (scalar)" if row.fallback else ""
        if not row.ok:
            print(f"  [{row.index}] error: {row.error}{tag}")
        elif row.interval is not None:
            print(f"  [{row.index}] [{row.interval[0]!r}, "
                  f"{row.interval[1]!r}]{tag}")
        else:
            print(f"  [{row.index}] value: {row.value!r}{tag}")
    print(f"runtime    : {st.elapsed_s * 1e3:.3f} ms")
    return 0


def cmd_run(ns) -> int:
    if ns.batch is not None:
        if ns.args:
            raise SystemExit(
                "run --batch reads arguments from the JSONL file; "
                "positional args must be omitted")
        return _cmd_run_batch(ns)
    with _trace_to(ns.trace, "cli:run"):
        prog = _compile_one(ns, _read_source(ns.file), path=ns.file)
        args = [_parse_arg(a) for a in ns.args]
        result = prog(*args, uncertainty_ulps=ns.uncertainty_ulps)
    if ns.json:
        payload = {"config": prog.config.name, "entry": prog.entry}
        if result.value is not None and hasattr(result.value, "interval"):
            iv = result.value.interval()
            payload["interval"] = [iv.lo, iv.hi]
            payload["acc_bits"] = result.acc_bits()
        elif result.value is not None:
            payload["value"] = result.value
        payload["elapsed_s"] = result.elapsed_s
        print(json.dumps(payload))
        return 0
    print(f"entry      : {prog.entry} [{prog.config.name}]")
    if result.value is not None and hasattr(result.value, "interval"):
        iv = result.value.interval()
        print(f"enclosure  : [{iv.lo!r}, {iv.hi!r}]")
        print(f"certified  : {result.acc_bits():.2f} bits of 53")
    elif result.value is not None:
        print(f"value      : {result.value!r}")
    for name, value in result.params.items():
        if isinstance(value, list):
            print(f"output {name!r}: {_summary(value)}")
    print(f"runtime    : {result.elapsed_s * 1e3:.3f} ms")
    return 0


def _summary(arr) -> str:
    flat = []

    def rec(v):
        if isinstance(v, list):
            for item in v:
                rec(item)
        elif hasattr(v, "interval"):
            flat.append(v)

    rec(arr)
    if not flat:
        return "(ints)"
    from .aa import acc_bits

    worst = min(max(0.0, acc_bits(v)) for v in flat)
    return f"{len(flat)} sound values, worst certificate {worst:.1f} bits"


def _parse_kv(items, what, parse=float):
    out = {}
    for item in items:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise SystemExit(f"{what} expects NAME=VALUE, got {item!r}")
        try:
            out[name] = parse(value)
        except ValueError:
            raise SystemExit(f"invalid {what} value {item!r}")
    return out


def _parse_box(items):
    def rng(text):
        lo, sep, hi = text.partition(":")
        if not sep:
            raise ValueError(text)
        return [float(lo), float(hi)]

    box = _parse_kv(items, "--box", parse=rng)
    if not box:
        raise SystemExit("--query needs at least one --box NAME=LO:HI")
    return box


def _cmd_analyze_query(ns, source: str) -> int:
    from .domain import (BnBDriver, RefinementBudget, analysis_config,
                         box_for_program)

    cfg = _config(ns)
    box = _parse_box(ns.box)
    fixed = _parse_kv(ns.fix, "--fix")
    fixed.update(_int_params(ns.int_param) or {})
    seed = _parse_kv(ns.seed_point, "--seed-point") or None
    query = ns.query.replace("-", "_")
    if query in ("safe_box", "unsafe_regions") and ns.eps is None:
        raise SystemExit(f"--query {ns.query} requires --eps")
    try:
        acfg = analysis_config(cfg)
        with _trace_to(ns.trace, "cli:analyze"):
            if ns.cache_dir:
                from .service import CompileService

                prog = CompileService(cache_dir=ns.cache_dir).compile(
                    source, acfg, entry=ns.entry)
            else:
                prog = SafeGen(acfg).compile(source, entry=ns.entry)
            driver = BnBDriver(
                prog, box_for_program(prog, box), fixed=fixed,
                budget=RefinementBudget(max_boxes=ns.budget,
                                        deadline_s=ns.deadline,
                                        target_gap=ns.gap,
                                        wave_size=ns.wave),
                pad_ulps=ns.pad_ulps)
            if query == "max_error":
                result = driver.max_error()
            elif query == "safe_box":
                result = driver.safe_box(ns.eps, seed=seed)
            else:
                result = driver.unsafe_regions(ns.eps)
    except ReproError as exc:
        raise SystemExit(format_cli_error(exc, ns.file))
    if ns.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    _print_analyze_result(result)
    return 0


def _fmt_box(box) -> str:
    return "  ".join(f"{name} in [{lo:.17g}, {hi:.17g}]"
                     for name, lo, hi in box.dims)


def _print_analyze_result(result) -> None:
    st = result.stats
    d = result.to_dict()
    if d["query"] == "max_error":
        print(f"max error (sound upper bound) : {d['upper_bound']}")
        print(f"sampled lower bound           : {d['lower_bound']}")
        print(f"gap                           : {d['gap']}"
              + ("" if result.complete else "  (budget exhausted)"))
    elif d["query"] == "safe_box":
        if result.found:
            print(f"verified safe box (error < {result.eps:g}):")
            print(f"  {_fmt_box(result.box)}")
            print(f"  certified width {result.width:.6g}, "
                  f"scale {result.scale:.6g} of the requested box")
        else:
            print(f"no safe box found with error < {result.eps:g}")
    else:
        print(f"regions with bound >= {result.eps:g}: {result.n_unsafe} "
              f"(verified safe: {result.n_safe}, "
              f"undecided: {result.n_undecided})")
        print(f"verified-safe volume fraction : {result.safe_fraction:.4f}")
        for box, width in result.unsafe[:10]:
            print(f"  width {width:.6g}  {_fmt_box(box)}")
    if getattr(result, "undecided", 0):
        print(f"undecided subboxes            : {result.undecided} "
              "(ambiguous control flow; never counted safe)")
    print(f"[{st.boxes} subboxes, {st.waves} waves, {st.samples} samples, "
          f"{st.elapsed_s * 1e3:.1f} ms]")


def cmd_analyze(ns) -> int:
    source = _read_source(ns.file)
    if ns.query:
        return _cmd_analyze_query(ns, source)
    cfg = _config(ns)
    if cfg.mode != "aa":
        raise SystemExit("analyze requires an affine configuration")
    from dataclasses import replace

    compiler = SafeGen(replace(cfg, prioritize=True))
    try:
        with _trace_to(ns.trace, "cli:analyze"):
            prog = compiler.compile(source, entry=ns.entry)
    except ReproError as exc:
        raise SystemExit(format_cli_error(exc, ns.file))
    print(prog.analysis_report)
    if prog.priority_map:
        print("prioritized operations (stmt -> variable):")
        for stmt_id, var in sorted(prog.priority_map.items()):
            print(f"  op {stmt_id}: prioritize({var})")
        print()
        print("annotated program (paper Fig. 7):")
        print(compiler.annotate(source, entry=ns.entry))
    return 0


def cmd_diag(ns) -> int:
    import os
    from dataclasses import replace

    from .obs.diag import WidthProfile, render_diag_report

    source = _read_source(ns.file)
    cfg = _config(ns)
    if ns.file != "-":
        # The basename becomes the <file> half of every origin string the
        # generated code embeds (it is part of the cache key).
        cfg = replace(cfg, source_name=os.path.basename(ns.file))
    profile = WidthProfile()
    stats = None
    try:
        with _trace_to(ns.trace, "cli:diag"):
            if ns.cache_dir:
                from .service import CompileService

                service = CompileService(cache_dir=ns.cache_dir)
                prog = service.compile(source, cfg, entry=ns.entry)
                stats = service.stats.to_dict()
            else:
                prog = SafeGen(cfg).compile(source, entry=ns.entry)
            args = [_parse_arg(a) for a in ns.args]
            for _ in range(max(ns.runs, 1)):
                res = prog(*args, uncertainty_ulps=ns.uncertainty_ulps,
                           track_provenance=True)
                value = res.value
                if value is not None and (hasattr(value, "coefficients")
                                          or hasattr(value, "terms")):
                    from .aa.explain import explain

                    profile.record_explanation(explain(value))
                else:
                    profile.skip()
                factory = getattr(getattr(res.runtime, "ctx", None),
                                  "symbols", None)
                if factory is not None and factory.n_absorptions:
                    profile.record_absorbed(factory.absorbed,
                                            factory.absorbed_at,
                                            factory.n_absorptions)
    except ReproError as exc:
        raise SystemExit(format_cli_error(exc, ns.file))
    pipeline = prog.pipeline_report.to_dict() \
        if prog.pipeline_report is not None else None
    if ns.json:
        print(json.dumps({"entry": prog.entry, "config": prog.config.name,
                          "width": profile.to_dict(), "pipeline": pipeline},
                         indent=2, default=str))
    else:
        print(f"entry      : {prog.entry} [{prog.config.name}]")
        print(render_diag_report(profile.to_dict(), pipeline=pipeline,
                                 stats=stats, n=ns.top))
    failures = []
    located = profile.located_fraction()
    if ns.min_located is not None and located < ns.min_located:
        failures.append(f"located fraction {located:.3f} is below the "
                        f"required {ns.min_located}")
    if ns.assert_top_origin:
        top = profile.top(1)
        top_origin = top[0][0] if top else ""
        if ns.assert_top_origin not in top_origin:
            failures.append(f"top origin {top_origin!r} does not contain "
                            f"{ns.assert_top_origin!r}")
    for failure in failures:
        print(f"// diag gate FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_tune(ns) -> int:
    import os
    from dataclasses import replace

    from .service import CompileService
    from .tune import TuneBudget, Tuner, render_tune_report

    source = _read_source(ns.file)
    cfg = _config(ns)
    if ns.file != "-":
        # Part of the cache key, and of every origin string in the report.
        cfg = replace(cfg, source_name=os.path.basename(ns.file))
    service = CompileService(cache_dir=ns.cache_dir)
    budget = TuneBudget(max_candidates=ns.candidates, seconds=ns.seconds,
                        repeats=ns.repeats, jobs=ns.jobs)
    try:
        with _trace_to(ns.trace, "cli:tune"):
            result = Tuner(service).tune(
                source, cfg, entry=ns.entry,
                args=[_parse_arg(a) for a in ns.args],
                uncertainty_ulps=ns.uncertainty_ulps,
                budget=budget, seed=ns.seed)
    except ReproError as exc:
        raise SystemExit(format_cli_error(exc, ns.file))
    if ns.json:
        print(json.dumps(result.to_dict(), indent=2, default=str))
    else:
        print(render_tune_report(result.to_dict(), n=ns.top,
                                 stats=service.stats.to_dict()))
    if not ns.cache_dir:
        print("// note: no --cache-dir given — the winner was not "
              "persisted; later compiles will not see it", file=sys.stderr)
    return 0


def cmd_bench(ns) -> int:
    from .bench import (
        float_baseline_time,
        format_table,
        make_workload,
        run_config,
        run_sweep,
    )

    w = make_workload(ns.name, seed=ns.seed)
    base = float_baseline_time(w)
    if ns.k_sweep:
        try:
            ks = [int(k) for k in ns.k_sweep.split(",") if k]
        except ValueError:
            raise SystemExit(
                f"--k-sweep expects comma-separated integers, "
                f"got {ns.k_sweep!r}")
        if not ks:
            raise SystemExit("--k-sweep expects at least one k value")
        with _trace_to(ns.trace, f"bench:{ns.name}"):
            results = run_sweep(w, [ns.config], ks, repeats=ns.repeats,
                                baseline_s=base, jobs=ns.jobs,
                                cache_dir=ns.cache_dir)
        print(format_table(
            [r.row(timings=ns.timings) for r in results],
            title=f"{ns.name}: {ns.config} over k={ks} "
                  f"(baseline {base * 1e3:.3f} ms, jobs={ns.jobs})"))
        return 0
    with _trace_to(ns.trace, f"bench:{ns.name}"):
        r = run_config(w, ns.config, k=ns.k, repeats=ns.repeats,
                       baseline_s=base, opt=not ns.no_opt)
    print(f"{r.benchmark} [{r.config} k={r.k}]")
    print(f"  certified bits : {r.acc_bits:.2f}")
    print(f"  runtime        : {r.runtime_s * 1e3:.3f} ms "
          f"({r.slowdown:.1f}x the unsound program)")
    if r.analysis:
        print(f"  {r.analysis}")
    if ns.timings and r.pass_timings:
        for name, seconds in r.pass_timings.items():
            print(f"  pass {name:<12} {seconds * 1e3:9.3f} ms")
    return 0


def cmd_batch(ns) -> int:
    from .service import BatchEngine, jobs_from_json

    try:
        batch = jobs_from_json(ns.manifest)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load jobs manifest {ns.manifest!r}: {exc}")
    engine = BatchEngine(jobs=ns.jobs, timeout_s=ns.timeout,
                         retries=ns.retries, cache_dir=ns.cache_dir)
    with _trace_to(ns.trace, "cli:batch"):
        results = engine.run(batch)
    payload = json.dumps([r.to_row() for r in results], indent=2,
                         default=str)
    if ns.output:
        with open(ns.output, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    if ns.stats:
        engine.stats.dump_json(ns.stats)
    print(f"// {engine.stats}", file=sys.stderr)
    latency = engine.stats.latency_summary()
    if latency:
        for line in latency.splitlines():
            print(f"// {line}", file=sys.stderr)
    failed = sum(1 for r in results if not r.ok)
    return 1 if failed else 0


def cmd_fuzz(ns) -> int:
    import dataclasses
    import os

    from .fuzz import GeneratorOptions, default_matrix, run_campaign
    from .fuzz.corpus import default_corpus_dir
    from .service import ServiceStats

    corpus_dir = None
    if not ns.no_save:
        corpus_dir = ns.corpus_dir or default_corpus_dir()
        os.makedirs(corpus_dir, exist_ok=True)
    options = dataclasses.replace(GeneratorOptions(), n_stmts=ns.n_stmts)
    matrix = default_matrix(k=ns.k)
    stats = ServiceStats()
    log = (lambda msg: print(f"// {msg}", file=sys.stderr))
    report = run_campaign(
        seconds=ns.seconds, iterations=ns.iterations, jobs=ns.jobs,
        seed=ns.seed, options=options, matrix=matrix, timeout_s=ns.timeout,
        cache_dir=ns.cache_dir, corpus_dir=corpus_dir,
        shrink=not ns.no_shrink, stats=stats, log=log)
    if ns.stats:
        stats.dump_json(ns.stats)
    if ns.json:
        print(json.dumps(report.to_dict(), indent=2, default=str))
    else:
        verdict = "OK" if report.ok else "FAIL"
        print(f"fuzz: {verdict} — {report.seeds_run} seeds in "
              f"{report.elapsed_s:.1f}s, {len(report.violations)} "
              f"violation(s), {len(report.timed_out_seeds)} timeout(s)")
        for v in report.violations:
            print(f"  {v.kind} [{v.config_name}]: {v.detail}")
            if v.source:
                print("    " + "\n    ".join(v.source.splitlines()))
        if report.reproducers:
            print("reproducers:")
            for path in report.reproducers:
                print(f"  {path}")
    if not report.ok and ns.artifact:
        with open(ns.artifact, "w") as fh:
            json.dump({"report": report.to_dict(),
                       "matrix": [p.to_dict() for p in matrix],
                       "options": options.to_dict(),
                       "seed": ns.seed}, fh, indent=2, default=str)
            fh.write("\n")
        print(f"// failure artifact -> {ns.artifact}", file=sys.stderr)
    return 0 if report.ok else 1


def cmd_serve(ns) -> int:
    import asyncio

    from .server import ServerConfig, SoundServer

    if ns.fleet or ns.shards:
        return _serve_fleet(ns)
    config = ServerConfig(
        host=ns.host, port=ns.port, cache_dir=ns.cache_dir,
        cache_maxsize=ns.maxsize, pool_workers=ns.workers,
        max_queue=ns.max_queue, inline_limit=ns.inline_limit,
        pool_limit=ns.pool_limit, default_deadline_s=ns.deadline,
        trace_log=ns.trace_log,
        trace_log_max_bytes=ns.trace_log_max_bytes,
        diag_sample_every=ns.diag_sample,
        trace_buffer=ns.trace_buffer)

    async def _main() -> None:
        server = SoundServer(config)
        await server.start()
        print(f"// serving on {config.host}:{server.port} "
              f"(workers={config.pool_workers}, "
              f"max_queue={config.max_queue})", file=sys.stderr)
        if ns.port_file:
            with open(ns.port_file, "w") as fh:
                fh.write(f"{server.port}\n")
        try:
            await server.serve_forever()
        finally:
            await server.stop()
            print(f"// drained; {server.stats}", file=sys.stderr)
            latency = server.stats.latency_summary()
            if latency:
                for line in latency.splitlines():
                    print(f"// {line}", file=sys.stderr)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("// interrupted", file=sys.stderr)
    return 0


def _serve_fleet(ns) -> int:
    """``repro serve --fleet N`` / ``--shard host:port``: the router."""
    import asyncio

    from .router import RouterConfig, RouterServer

    config = RouterConfig(
        host=ns.host, port=ns.port, shards=ns.shards,
        n_shards=ns.fleet or 2, forward_retries=ns.forward_retries,
        health_interval_s=ns.health_interval,
        default_deadline_s=ns.deadline, cache_dir=ns.cache_dir,
        shard_workers=ns.workers, shard_max_queue=ns.max_queue,
        shard_inline_limit=ns.inline_limit,
        shard_cache_maxsize=ns.maxsize,
        shard_diag_sample_every=ns.diag_sample,
        trace_log=ns.trace_log, trace_buffer=ns.trace_buffer)

    async def _main() -> None:
        router = RouterServer(config)
        await router.start()
        mode = (f"{len(config.shards)} attached shard(s)" if config.shards
                else f"{config.n_shards} spawned shard(s)")
        print(f"// routing on {config.host}:{router.port} over {mode}",
              file=sys.stderr)
        if ns.port_file:
            with open(ns.port_file, "w") as fh:
                fh.write(f"{router.port}\n")
        try:
            await router.serve_forever()
        finally:
            await router.stop()
            print(f"// fleet down; router served "
                  f"{router.counters['forwards_ok']} forward(s)",
                  file=sys.stderr)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("// interrupted", file=sys.stderr)
    return 0


def cmd_request(ns) -> int:
    from .server import ServerClient, ServerError

    trace_id = None
    if ns.trace and ns.op in ("compile", "run", "tune"):
        from .obs import new_trace_id

        trace_id = new_trace_id()
    client = ServerClient(host=ns.host, port=ns.port)
    try:
        with client:
            if ns.op in ("compile", "run", "tune"):
                if ns.file is None:
                    raise SystemExit(f"request {ns.op} needs a C file")
                source = _read_source(ns.file)
                config = ns.config
                if ns.file != "-":
                    # Ship the basename in the config so the origins the
                    # server embeds (and its diag profile reports) name
                    # the real file instead of "<src>".
                    import os

                    config = {**CompilerConfig.from_string(
                                  ns.config, k=ns.k).to_dict(),
                              "source_name": os.path.basename(ns.file)}
                if ns.op == "compile":
                    result = client.compile(
                        source, config=config, k=ns.k, entry=ns.entry,
                        deadline_s=ns.deadline, trace_id=trace_id)
                elif ns.op == "tune":
                    result = client.tune(
                        source, args=[_parse_arg(a) for a in ns.args],
                        budget={"max_candidates": ns.candidates,
                                "seconds": ns.seconds,
                                "repeats": ns.repeats},
                        seed=ns.seed, config=config, k=ns.k,
                        entry=ns.entry,
                        uncertainty_ulps=ns.uncertainty_ulps,
                        deadline_s=ns.deadline, trace_id=trace_id)
                else:
                    result = client.run(
                        source, args=[_parse_arg(a) for a in ns.args],
                        config=config, k=ns.k, entry=ns.entry,
                        uncertainty_ulps=ns.uncertainty_ulps,
                        repeats=ns.repeats, deadline_s=ns.deadline,
                        trace_id=trace_id)
            else:
                result = client.request(ns.op)
            if trace_id is not None:
                from .obs import TraceLog

                spans = client.trace(trace_id=trace_id)["spans"]
                with TraceLog(ns.trace) as log:
                    log.write(spans)
                print(f"// trace {trace_id}: {len(spans)} spans -> "
                      f"{ns.trace}", file=sys.stderr)
    except ServerError as exc:
        raise SystemExit(f"server error [{exc.code}]: {exc.message}")
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"cannot reach server at {ns.host}:{ns.port}: "
                         f"{exc}")
    if ns.op == "metrics":
        sys.stdout.write(result["text"])
        return 0
    print(json.dumps(result, indent=2, default=str))
    return 0


def cmd_stats(ns) -> int:
    from .server import ServerClient, ServerError

    try:
        with ServerClient(host=ns.host, port=ns.port) as client:
            if ns.prom:
                sys.stdout.write(client.metrics())
            else:
                print(json.dumps(client.stats(), indent=2, default=str))
    except ServerError as exc:
        raise SystemExit(f"server error [{exc.code}]: {exc.message}")
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"cannot reach server at {ns.host}:{ns.port}: "
                         f"{exc}")
    return 0


def cmd_trace(ns) -> int:
    from .obs import check_spans, load_trace, render_waterfall

    try:
        spans = load_trace(ns.file)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {ns.file!r}: {exc}")
    except ValueError as exc:
        raise SystemExit(str(exc))
    problems = check_spans(spans)
    if ns.action == "check":
        for problem in problems:
            print(problem)
        print(f"// {len(spans)} spans, {len(problems)} problems",
              file=sys.stderr)
        return 1 if problems else 0
    try:
        print(render_waterfall(spans, width=ns.width))
    except BrokenPipeError:  # waterfalls get piped into head/less
        sys.stderr.close()   # suppress the interpreter's flush complaint
        return 0
    if problems:
        print(f"// WARNING: {len(problems)} well-formedness problems "
              f"(see 'repro trace check {ns.file}')", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    ns = _build_parser().parse_args(argv)
    handler = {
        "compile": cmd_compile,
        "run": cmd_run,
        "analyze": cmd_analyze,
        "diag": cmd_diag,
        "tune": cmd_tune,
        "bench": cmd_bench,
        "batch": cmd_batch,
        "fuzz": cmd_fuzz,
        "serve": cmd_serve,
        "request": cmd_request,
        "stats": cmd_stats,
        "trace": cmd_trace,
    }[ns.command]
    return handler(ns)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line interface: ``python -m repro``.

Mirrors how the original SafeGen binary is used — C in, sound C out — plus
conveniences this reproduction can offer because the output is runnable:

    python -m repro compile prog.c --config f64a-dspv -k 16
    python -m repro run prog.c --config f64a-dsnn -k 8 -- 0.3 0.4 100
    python -m repro analyze prog.c -k 8
    python -m repro bench henon --config f64a-dspv -k 16
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .compiler import CompilerConfig, SafeGen

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SafeGen (reproduction): compile C floating-point "
                    "programs into sound programs using affine arithmetic.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--config", default="f64a-dsnn",
                       help="configuration string (paper notation), e.g. "
                            "f64a-dspv, dda-dsnn, ia-f64, yalaa-aff0")
        p.add_argument("-k", type=int, default=16,
                       help="max error symbols per affine variable")
        p.add_argument("--entry", default=None,
                       help="entry function (default: last defined)")
        p.add_argument("--int-param", action="append", default=[],
                       metavar="NAME=VALUE",
                       help="concrete value for an integer parameter "
                            "(lets the analysis unroll its loops)")

    p_compile = sub.add_parser("compile",
                               help="print the transformed (sound) C")
    common(p_compile)
    p_compile.add_argument("file", help="input C file ('-' for stdin)")
    p_compile.add_argument("--emit", choices=["c", "python", "both"],
                           default="c")

    p_run = sub.add_parser("run", help="compile and execute on inputs")
    common(p_run)
    p_run.add_argument("file")
    p_run.add_argument("args", nargs="*",
                       help="arguments: numbers, or @file.json for arrays")
    p_run.add_argument("--uncertainty-ulps", type=float, default=1.0)
    p_run.add_argument("--json", action="store_true",
                       help="machine-readable output")

    p_analyze = sub.add_parser(
        "analyze", help="run the max-reuse analysis and show the pragmas")
    common(p_analyze)
    p_analyze.add_argument("file")

    p_bench = sub.add_parser("bench", help="run a paper benchmark")
    common(p_bench)
    p_bench.add_argument("name", choices=["henon", "sor", "luf", "fgm"])
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--repeats", type=int, default=3)
    return parser


def _read_source(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path) as fh:
        return fh.read()


def _int_params(pairs: List[str]) -> dict:
    out = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not value:
            raise SystemExit(f"--int-param expects NAME=VALUE, got {pair!r}")
        out[name] = int(value)
    return out


def _config(ns) -> CompilerConfig:
    return CompilerConfig.from_string(ns.config, k=ns.k,
                                      int_params=_int_params(ns.int_param))


def _parse_arg(text: str):
    if text.startswith("@"):
        with open(text[1:]) as fh:
            return json.load(fh)
    try:
        return int(text)
    except ValueError:
        return float(text)


def cmd_compile(ns) -> int:
    prog = SafeGen(_config(ns)).compile(_read_source(ns.file), entry=ns.entry)
    if ns.emit in ("c", "both"):
        print(prog.c_source)
    if ns.emit in ("python", "both"):
        print(prog.python_source)
    if prog.analysis_report is not None:
        print(f"// {prog.analysis_report}", file=sys.stderr)
    return 0


def cmd_run(ns) -> int:
    prog = SafeGen(_config(ns)).compile(_read_source(ns.file), entry=ns.entry)
    args = [_parse_arg(a) for a in ns.args]
    result = prog(*args, uncertainty_ulps=ns.uncertainty_ulps)
    if ns.json:
        payload = {"config": prog.config.name, "entry": prog.entry}
        if result.value is not None and hasattr(result.value, "interval"):
            iv = result.value.interval()
            payload["interval"] = [iv.lo, iv.hi]
            payload["acc_bits"] = result.acc_bits()
        elif result.value is not None:
            payload["value"] = result.value
        payload["elapsed_s"] = result.elapsed_s
        print(json.dumps(payload))
        return 0
    print(f"entry      : {prog.entry} [{prog.config.name}]")
    if result.value is not None and hasattr(result.value, "interval"):
        iv = result.value.interval()
        print(f"enclosure  : [{iv.lo!r}, {iv.hi!r}]")
        print(f"certified  : {result.acc_bits():.2f} bits of 53")
    elif result.value is not None:
        print(f"value      : {result.value!r}")
    for name, value in result.params.items():
        if isinstance(value, list):
            print(f"output {name!r}: {_summary(value)}")
    print(f"runtime    : {result.elapsed_s * 1e3:.3f} ms")
    return 0


def _summary(arr) -> str:
    flat = []

    def rec(v):
        if isinstance(v, list):
            for item in v:
                rec(item)
        elif hasattr(v, "interval"):
            flat.append(v)

    rec(arr)
    if not flat:
        return "(ints)"
    from .aa import acc_bits

    worst = min(max(0.0, acc_bits(v)) for v in flat)
    return f"{len(flat)} sound values, worst certificate {worst:.1f} bits"


def cmd_analyze(ns) -> int:
    cfg = _config(ns)
    if cfg.mode != "aa":
        raise SystemExit("analyze requires an affine configuration")
    from dataclasses import replace

    compiler = SafeGen(replace(cfg, prioritize=True))
    source = _read_source(ns.file)
    prog = compiler.compile(source, entry=ns.entry)
    print(prog.analysis_report)
    if prog.priority_map:
        print("prioritized operations (stmt -> variable):")
        for stmt_id, var in sorted(prog.priority_map.items()):
            print(f"  op {stmt_id}: prioritize({var})")
        print()
        print("annotated program (paper Fig. 7):")
        print(compiler.annotate(source, entry=ns.entry))
    return 0


def cmd_bench(ns) -> int:
    from .bench import float_baseline_time, make_workload, run_config

    w = make_workload(ns.name, seed=ns.seed)
    base = float_baseline_time(w)
    r = run_config(w, ns.config, k=ns.k, repeats=ns.repeats, baseline_s=base)
    print(f"{r.benchmark} [{r.config} k={r.k}]")
    print(f"  certified bits : {r.acc_bits:.2f}")
    print(f"  runtime        : {r.runtime_s * 1e3:.3f} ms "
          f"({r.slowdown:.1f}x the unsound program)")
    if r.analysis:
        print(f"  {r.analysis}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    ns = _build_parser().parse_args(argv)
    handler = {
        "compile": cmd_compile,
        "run": cmd_run,
        "analyze": cmd_analyze,
        "bench": cmd_bench,
    }[ns.command]
    return handler(ns)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
